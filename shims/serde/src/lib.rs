//! Offline stand-in for `serde`.
//!
//! crates.io is unreachable in this build environment, so this crate
//! provides the minimal surface the workspace uses: a [`Serialize`]
//! trait producing a JSON-like [`Value`] tree (rendered by the sibling
//! `serde_json` shim), a marker [`Deserialize`] trait, and re-exports of
//! the shim derive macros. The `Value` encoding follows serde_json's
//! conventions (newtype structs transparent, unit enum variants as
//! strings, externally-tagged data variants) so regenerated result files
//! keep their existing shape.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value tree — the target of [`Serialize::to_value`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so u64 > i64::MAX round-trips).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, preserving insertion order like serde_json's
    /// `preserve_order` feature (field declaration order here).
    Map(Vec<(String, Value)>),
}

/// Types that can turn themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_value(&self) -> Value;
}

/// Marker trait: the workspace derives `Deserialize` on its types for
/// API parity with real serde but never deserializes, so no methods are
/// required.
pub trait Deserialize {}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($($idx:tt $t:ident),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}
ser_tuple!(0 A);
ser_tuple!(0 A, 1 B);
ser_tuple!(0 A, 1 B, 2 C);
ser_tuple!(0 A, 1 B, 2 C, 3 D);

/// JSON object keys must be strings; serializable keys are rendered via
/// their `Value` form (matching serde_json, which stringifies numeric
/// map keys).
fn key_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::UInt(u) => u.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Float(f) => f.to_string(),
        other => format!("{other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // sort for deterministic output (HashMap order is unstable)
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
