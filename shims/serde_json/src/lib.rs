//! Offline stand-in for `serde_json`: renders the shim `serde`'s
//! [`Value`](serde::Value) tree as JSON text. Only serialization is
//! provided — nothing in the workspace deserializes.

use serde::{Serialize, Value};
use std::fmt::Write as _;

/// Serialization error. The shim's rendering is infallible, so this only
/// exists for signature parity with real serde_json.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Renders compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders pretty JSON (2-space indent, like real serde_json).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // serde_json renders integral floats with a ".0" suffix
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            render_block(items.iter().map(Item::Bare), '[', ']', indent, depth, out)
        }
        Value::Map(entries) => render_block(
            entries.iter().map(|(k, v)| Item::Keyed(k, v)),
            '{',
            '}',
            indent,
            depth,
            out,
        ),
    }
}

enum Item<'a> {
    Bare(&'a Value),
    Keyed(&'a str, &'a Value),
}

fn render_block<'a>(
    items: impl Iterator<Item = Item<'a>>,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) {
    let items: Vec<Item<'a>> = items.collect();
    if items.is_empty() {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        match item {
            Item::Bare(v) => render(v, indent, depth + 1, out),
            Item::Keyed(k, v) => {
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(v, indent, depth + 1, out);
            }
        }
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_like_serde_json() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Float(1.5)),
            ("d".into(), Value::Float(2.0)),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":[true,null],"c":1.5,"d":2.0}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1,"));
    }

    #[test]
    fn escapes_strings() {
        let v = Value::Str("a\"b\\c\n".into());
        assert_eq!(to_string(&v).unwrap(), r#""a\"b\\c\n""#);
    }
}
