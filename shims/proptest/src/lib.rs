//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest API this workspace uses:
//!
//! * `proptest! { #[test] fn name(x in strategy, ...) { body } }`
//! * `any::<T>()` for the integer primitives and `bool`
//! * integer and float range strategies (`0u8..32`, `1u8..=32`, `0.0f64..1e6`)
//! * tuples of strategies
//! * `proptest::collection::vec(strategy, len_range)`
//! * `prop_assert!` / `prop_assert_eq!` (with optional format messages)
//! * `impl Strategy<Value = T>` in helper functions
//!
//! Each property runs [`NUM_CASES`] deterministic cases from a stream
//! seeded by the test's name (plus a boundary-biased first few cases:
//! range strategies emit their endpoints before sampling uniformly).
//! There is no shrinking — a failing case panics with the generated
//! inputs so it can be reproduced directly.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Cases per property. Matches real proptest's default.
pub const NUM_CASES: u32 = 256;

/// Deterministic RNG + failure plumbing for generated tests.
pub mod test_runner {
    /// The per-test deterministic generator (SplitMix64).
    pub struct TestRng {
        state: u64,
        /// Index of the case currently generating; strategies use it to
        /// bias early cases toward range boundaries.
        pub case: u32,
    }

    impl TestRng {
        /// Seeds from the test name so distinct properties explore
        /// distinct streams, reproducibly.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h, case: 0 }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

use test_runner::TestRng;

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // bias the first cases toward the boundary values
                match rng.case {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Builds the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                match rng.case {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => self.start.wrapping_add((rng.next_u64() as u128 % span) as $t),
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                match rng.case {
                    0 => start,
                    1 => end,
                    _ => start.wrapping_add((rng.next_u64() as u128 % span) as $t),
                }
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + unit as $t * (self.end - self.start)
            }
        }
    )*};
}
range_strategy_float!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` strategy: `len` elements drawn from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Builds a vector strategy with lengths in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = self.len.end - self.len.start;
            let n = match rng.case {
                // boundary lengths first: shortest, then longest
                0 => self.len.start,
                1 => self.len.end - 1,
                _ => self.len.start + (rng.next_u64() as usize % span),
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// `use proptest::prelude::*;` — the names call sites expect.
pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Strategy,
    };
}

/// Declares property tests. Each function body runs [`NUM_CASES`] times
/// with fresh strategy draws; `prop_assert*` failures panic with the
/// case number and the generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::NUM_CASES {
                    __rng.case = __case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}: {}\n  inputs: {}",
                            stringify!($name), __case, e, __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) on falsehood.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u8..=7, y in 10u32..20) {
            prop_assert!((3..=7).contains(&x));
            prop_assert!((10..20).contains(&y));
        }

        #[test]
        fn vecs_respect_length(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuples_compose(pair in (0u32..64, 0u8..3)) {
            prop_assert!(pair.0 < 64 && pair.1 < 3);
        }
    }

    #[test]
    fn boundary_cases_come_first() {
        let strat = 5u8..=9;
        let mut rng = crate::test_runner::TestRng::deterministic("b");
        rng.case = 0;
        assert_eq!(Strategy::generate(&strat, &mut rng), 5);
        rng.case = 1;
        assert_eq!(Strategy::generate(&strat, &mut rng), 9);
    }
}
