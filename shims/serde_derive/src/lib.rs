//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the real serde
//! proc-macro stack (`syn`/`quote`/`proc-macro2`) is unavailable. This
//! crate re-implements `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! against the sibling shim `serde` crate using only the compiler's
//! built-in `proc_macro` API: it walks the raw token stream of the type
//! definition (no generics are supported — none of this workspace's
//! types need them) and emits a `to_value` implementation producing the
//! shim's JSON `Value` tree, matching serde_json's externally-tagged
//! conventions (unit variants as strings, newtype fields transparent,
//! tuple payloads as arrays).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    Unit,
    /// Named-field struct: field identifiers in declaration order.
    Named(Vec<String>),
    /// Tuple struct: field count.
    Tuple(usize),
    /// Enum: (variant name, variant shape) pairs.
    Enum(Vec<(String, Shape)>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Skips outer attributes (`#[...]`, including doc comments) and
/// visibility qualifiers at the current position.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // '#' then bracket group
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // pub(crate) / pub(super) etc.
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Splits the tokens of a field list / variant list on top-level commas
/// (commas outside any `<...>` nesting; bracketed groups are single
/// tokens so only angle brackets need tracking).
fn split_top_level_commas(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i32 = 0;
    for t in toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parses `{ a: T, b: U }` into field names.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    split_top_level_commas(body)
        .iter()
        .filter_map(|field| {
            let i = skip_attrs_and_vis(field, 0);
            match field.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

/// Parses `( T, U )` into a field count.
fn parse_tuple_fields(body: &[TokenTree]) -> usize {
    split_top_level_commas(body)
        .iter()
        .filter(|seg| skip_attrs_and_vis(seg, 0) < seg.len())
        .count()
}

fn parse_enum_variants(body: &[TokenTree]) -> Vec<(String, Shape)> {
    let mut out = Vec::new();
    for var in split_top_level_commas(body) {
        let mut i = skip_attrs_and_vis(&var, 0);
        let name = match var.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => continue,
        };
        i += 1;
        // payload group, discriminant (`= expr`), or bare unit
        let shape = match var.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Named(
                parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>()),
            ),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Shape::Tuple(
                parse_tuple_fields(&g.stream().into_iter().collect::<Vec<_>>()),
            ),
            _ => Shape::Unit,
        };
        out.push((name, shape));
    }
    out
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (type {name})");
    }
    let shape = match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Named(
                parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>()),
            ),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Shape::Tuple(
                parse_tuple_fields(&g.stream().into_iter().collect::<Vec<_>>()),
            ),
            _ => Shape::Unit,
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum(
                parse_enum_variants(&g.stream().into_iter().collect::<Vec<_>>()),
            ),
            _ => panic!("serde_derive shim: enum {name} has no body"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    };
    Input { name, shape }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Named(fields) => named_fields_expr(fields, &|f| format!("self.{f}")),
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    Shape::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"
                    ),
                    Shape::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Map(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(vec![(\"{v}\".to_string(), ::serde::Value::Seq(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let inner = named_fields_expr(fields, &|f| f.to_string());
                        format!(
                            "{name}::{v} {{ {} }} => ::serde::Value::Map(vec![(\"{v}\".to_string(), {inner})]),",
                            fields.join(", ")
                        )
                    }
                    Shape::Enum(_) => unreachable!("variants cannot be enums"),
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated impl must parse")
}

fn named_fields_expr(fields: &[String], accessor: &dyn Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(\"{f}\".to_string(), ::serde::Serialize::to_value(&{}))",
                accessor(f)
            )
        })
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde_derive shim: generated impl must parse")
}
