//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset the workspace uses: `StdRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}` over integer and float ranges. The
//! generator is xoshiro256** seeded through SplitMix64 — deterministic
//! per seed, which is all the simulations and benchmarks rely on (they
//! never persist streams across versions).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of randomness. Blanket-provides the `gen_*` helpers over
/// [`RngCore::next_u64`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }

    /// A uniform sample of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types uniformly sampleable with `rng.gen()`.
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Maps 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value of `T` can be uniformly drawn from.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** (not rand's ChaCha12 — the
    /// workspace only needs determinism per seed, not stream
    /// compatibility with upstream rand).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
