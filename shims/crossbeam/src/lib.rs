//! Offline stand-in for `crossbeam`.
//!
//! Provides the `channel` module surface the workspace uses: MPMC
//! bounded/unbounded channels with cloneable senders *and* receivers
//! (std's mpsc receivers are not cloneable, so this is a from-scratch
//! implementation over `Mutex` + `Condvar`). Semantics match crossbeam
//! where the workspace relies on them: `send` on a bounded channel
//! blocks while full, `recv` blocks while empty, and both fail once the
//! other side is fully disconnected.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// `None` = unbounded.
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half; cloneable across threads.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; cloneable across threads (MPMC).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// `send` failed because all receivers disconnected; returns the
    /// unsent message.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // like real crossbeam: Debug without requiring T: Debug
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// `recv` failed because the channel is empty and all senders
    /// disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// `try_recv` failure modes.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    /// `recv_timeout` failure modes.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline.
        Timeout,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    /// `send_timeout` failure modes; both return the unsent message.
    #[derive(PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// Bounded channel stayed full past the deadline.
        Timeout(T),
        /// All receivers gone.
        Disconnected(T),
    }

    impl<T> std::fmt::Debug for SendTimeoutError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => write!(f, "Timeout(..)"),
                SendTimeoutError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }

    /// `try_send` failure modes.
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Bounded channel at capacity; returns the unsent message.
        Full(T),
        /// All receivers gone; returns the unsent message.
        Disconnected(T),
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    /// Creates a bounded channel. Capacity 0 (crossbeam's rendezvous
    /// channel) is approximated with capacity 1 — nothing in this
    /// workspace uses rendezvous semantics.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Sends, blocking while a bounded channel is full. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.chan.cap {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.chan.not_full.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.queue.push_back(msg);
            drop(state);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Sends, blocking at most `timeout` while a bounded channel is
        /// full. Fails with `Timeout` if no slot freed in time, or
        /// `Disconnected` once every receiver has been dropped.
        pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(msg));
                }
                match self.chan.cap {
                    Some(cap) if state.queue.len() >= cap => {
                        let left = deadline.saturating_duration_since(Instant::now());
                        if left.is_zero() {
                            return Err(SendTimeoutError::Timeout(msg));
                        }
                        let (guard, res) = self.chan.not_full.wait_timeout(state, left).unwrap();
                        state = guard;
                        if res.timed_out()
                            && self.chan.cap.is_some_and(|c| state.queue.len() >= c)
                            && state.receivers > 0
                        {
                            return Err(SendTimeoutError::Timeout(msg));
                        }
                    }
                    _ => break,
                }
            }
            state.queue.push_back(msg);
            drop(state);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Non-blocking send.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut state = self.chan.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.chan.cap {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            state.queue.push_back(msg);
            drop(state);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking while empty. Fails only when the channel is
        /// empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.chan.not_empty.wait(state).unwrap();
            }
        }

        /// Receives, blocking at most `timeout` while empty. Fails with
        /// `Timeout` if nothing arrived in time, or `Disconnected` when
        /// the channel is empty and every sender has been dropped.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.chan.not_empty.wait_timeout(state, left).unwrap();
                state = guard;
                if res.timed_out() && state.queue.is_empty() && state.senders > 0 {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.state.lock().unwrap();
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // wake receivers so they observe the disconnect
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                // wake senders blocked on a full queue
                self.chan.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{
        bounded, unbounded, RecvError, RecvTimeoutError, SendTimeoutError, TryRecvError,
        TrySendError,
    };
    use std::time::Duration;

    #[test]
    fn unbounded_round_trip_multi_consumer() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..5 {
            got.push(rx.recv().unwrap());
            got.push(rx2.recv().unwrap());
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_is_observed() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        // a blocked send completes once a slot frees up
        let t = {
            let tx = tx.clone();
            std::thread::spawn(move || tx.send(3).unwrap())
        };
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_timeout_times_out_when_full() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        assert!(matches!(
            tx.send_timeout(2, Duration::from_millis(10)),
            Err(SendTimeoutError::Timeout(2))
        ));
        assert_eq!(rx.recv(), Ok(1));
        tx.send_timeout(2, Duration::from_millis(10)).unwrap();
        drop(rx);
        assert!(matches!(
            tx.send_timeout(3, Duration::from_millis(10)),
            Err(SendTimeoutError::Disconnected(3))
        ));
    }
}
