//! Offline stand-in for `criterion`.
//!
//! Implements the `bench_function` / `Bencher::iter` surface with a
//! simple measurement loop: warm up for `warm_up_time`, then collect
//! `sample_size` samples within `measurement_time` and report the median
//! ns/iteration to stdout. No statistical analysis, plots, or baselines —
//! enough to compare hot paths run-over-run in this offline environment.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Passed to the closure given to [`Criterion::bench_function`]; its
/// [`iter`](Bencher::iter) method performs the measurement.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures the closure: warm-up, then `sample_size` timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm up and estimate per-iteration cost
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // size batches so all samples fit the measurement budget
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / batch as f64;
            self.samples_ns.push(ns);
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<40} (no samples — closure never called iter)");
            return;
        }
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = s[s.len() / 2];
        let lo = s[(s.len() as f64 * 0.05) as usize];
        let hi = s[((s.len() as f64 * 0.95) as usize).min(s.len() - 1)];
        println!(
            "{name:<40} time: [{} {} {}]",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }
}
