//! Offline stand-in for `parking_lot`: wraps std's `Mutex`/`RwLock` with
//! parking_lot's non-poisoning, non-`Result` API. A panicked holder does
//! not poison the lock — subsequent acquisitions recover the inner
//! guard, which is exactly parking_lot's observable behavior.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock returning guards directly (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock returning guards directly (no poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(10);
        assert_eq!(*rw.read(), 10);
        *rw.write() = 11;
        assert_eq!(*rw.read(), 11);
    }
}
