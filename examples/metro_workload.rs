//! Metro workload replay: a synthetic trace drives a k=4 cellular core.
//!
//! Generates a per-UE event stream (attaches, flows, handoffs, detaches
//! — the §6.1 workload shape at laptop scale), replays it against a
//! full SoftCell deployment on the three-layer k=4 topology (160 base
//! stations), and reports what the control plane actually did: cache
//! hit ratios at the local agents (the Table-2 quantity), policy paths
//! and tags installed, switch table occupancy, and the mobility
//! machinery's activity.
//!
//! Run with: `cargo run --release --example metro_workload`

use softcell::packet::Protocol;
use softcell::policy::{ServicePolicy, SubscriberAttributes};
use softcell::sim::SimWorld;
use softcell::topology::CellularParams;
use softcell::types::UeImsi;
use softcell::workload::{EventKind, EventStream, EventStreamConfig};
use std::collections::HashMap;
use std::net::Ipv4Addr;

fn main() {
    // the network: k=4 → 160 base stations, 33 fabric switches
    let topo = CellularParams::paper(4).build().expect("topology");
    let mut world = SimWorld::new(&topo, ServicePolicy::example_carrier_a(1));

    // the workload: 300 UEs over 10 simulated minutes
    let cfg = EventStreamConfig::busy(topo.base_stations().len() as u32, 300, 99);
    let trace = EventStream::generate(&cfg);
    println!(
        "trace: {} events over {}s ({} attaches, {} flows, {} handoffs, {} detaches)",
        trace.len(),
        cfg.duration.as_secs_f64(),
        trace.count(|k| matches!(k, EventKind::Attach { .. })),
        trace.count(|k| matches!(k, EventKind::NewFlow { .. })),
        trace.count(|k| matches!(k, EventKind::Handoff { .. })),
        trace.count(|k| matches!(k, EventKind::Detach { .. })),
    );

    for i in 0..300 {
        world.provision(SubscriberAttributes::default_home(UeImsi(i)));
    }

    let server = Ipv4Addr::new(203, 0, 113, 9);
    let mut conns: HashMap<UeImsi, Vec<softcell::sim::world::ConnId>> = HashMap::new();
    let mut counts = (0u64, 0u64, 0u64, 0u64, 0u64); // ok flows, denied, handoffs, attaches, detaches
    let mut last_time = softcell::types::SimTime::ZERO;

    for ev in trace.events() {
        world.advance(ev.time - last_time);
        last_time = ev.time;
        match ev.kind {
            EventKind::Attach { bs } => {
                world.attach(ev.imsi, bs).expect("attach");
                counts.3 += 1;
            }
            EventKind::NewFlow { dst_port, udp, .. } => {
                let proto = if udp { Protocol::Udp } else { Protocol::Tcp };
                let conn = world
                    .start_connection(ev.imsi, server, dst_port, proto)
                    .expect("conn");
                match world.round_trip(conn) {
                    Ok(()) => {
                        counts.0 += 1;
                        conns.entry(ev.imsi).or_default().push(conn);
                    }
                    Err(_) => counts.1 += 1, // denied or dropped
                }
            }
            EventKind::Handoff { to, .. } => {
                world.handoff(ev.imsi, to).expect("handoff");
                counts.2 += 1;
                // traffic continues on every live connection of this UE
                if let Some(list) = conns.get(&ev.imsi) {
                    for &c in list.iter().rev().take(2) {
                        world.round_trip(c).expect("post-handoff traffic");
                    }
                }
            }
            EventKind::Detach { .. } => {
                world.detach(ev.imsi).expect("detach");
                conns.remove(&ev.imsi);
                counts.4 += 1;
            }
        }
    }

    world
        .assert_policy_consistency()
        .expect("every connection stayed on its middlebox chain");

    println!("\nreplay complete:");
    println!(
        "  {} flows carried end-to-end, {} denied/dropped, {} handoffs, {} attaches, {} detaches",
        counts.0, counts.1, counts.2, counts.3, counts.4
    );

    // local-agent control-plane load (the Table-2 quantity)
    let (mut hits, mut misses) = (0u64, 0u64);
    for bs in topo.base_stations() {
        let s = world.agent(bs.id).stats();
        hits += s.cache_hits;
        misses += s.cache_misses;
    }
    println!(
        "  agent tag caches: {hits} hits / {misses} misses ({:.1}% hit ratio)",
        100.0 * hits as f64 / (hits + misses).max(1) as f64
    );

    println!(
        "  controller: {} policy paths installed, {} tags in use, {} tunnels, {} transitions",
        world.controller.installer().paths_installed(),
        world.controller.installer().tags_in_use(),
        world.controller.mobility().tunnel_count(),
        world.controller.mobility().transitions_active(),
    );
    println!("  fabric rules installed: {}", world.net.total_rules());
    println!(
        "  middlebox packets observed: {}",
        world.net.middleboxes.total_packets()
    );

    // the §3.2 offline pass: recompute all live paths in chain-grouped
    // order and migrate if it wins
    let outcome = world.apply_reoptimization().expect("reoptimize");
    println!(
        "  offline recompute: {} -> {} rules ({} paths replayed, tags {} -> {})",
        outcome.rules_before,
        outcome.rules_after,
        outcome.paths_replayed,
        outcome.tags_before,
        outcome.tags_after
    );

    // traffic still flows after the migration (fresh classification;
    // pick any UE that is still attached)
    let someone = world
        .controller
        .state()
        .attached()
        .next()
        .expect("someone is attached")
        .imsi;
    let c = world
        .start_connection(someone, server, 443, Protocol::Tcp)
        .expect("post-reopt conn");
    world.round_trip(c).expect("post-reopt round trip");
    println!("  post-recompute traffic: OK");
}
