//! Policy zoo: one clause per subscriber flavour (paper Table 1).
//!
//! Attaches five very different subscribers — a home silver-plan phone,
//! a roaming partner-B customer, an unknown foreign device, an M2M
//! fleet tracker and a VoIP caller — and shows how the *same* network
//! treats each one: which clause fires, which middlebox chain the
//! traffic takes, and who is dropped at the access edge before a single
//! fabric switch sees a packet.
//!
//! Run with: `cargo run --example policy_zoo`

use softcell::packet::Protocol;
use softcell::policy::{BillingPlan, DeviceType, Provider, ServicePolicy, SubscriberAttributes};
use softcell::sim::{SimWorld, WalkOutcome};
use softcell::topology::small_topology;
use softcell::types::{BaseStationId, UeImsi};
use std::net::Ipv4Addr;

fn main() {
    let topo = small_topology();
    let mut world = SimWorld::new(&topo, ServicePolicy::example_carrier_a(1));
    let server = Ipv4Addr::new(198, 51, 100, 10);

    // five subscribers, five stories
    let mut home = SubscriberAttributes::default_home(UeImsi(1));
    home.plan = BillingPlan::Silver;

    let mut partner = SubscriberAttributes::default_home(UeImsi(2));
    partner.provider = Provider::Partner(1);
    partner.roaming = true;

    let mut foreign = SubscriberAttributes::default_home(UeImsi(3));
    foreign.provider = Provider::Foreign(44);

    let mut tracker = SubscriberAttributes::default_home(UeImsi(4));
    tracker.device = DeviceType::M2mFleetTracker;
    tracker.plan = BillingPlan::M2m;

    let voip = SubscriberAttributes::default_home(UeImsi(5));

    for attrs in [home, partner, foreign, tracker, voip] {
        world.provision(attrs);
    }
    for (i, imsi) in [1u64, 2, 3, 4, 5].iter().enumerate() {
        world
            .attach(UeImsi(*imsi), BaseStationId((i % 4) as u32))
            .expect("attach");
    }

    let scenarios: [(&str, u64, u16, Protocol); 5] = [
        ("home silver, video (rtsp 554)", 1, 554, Protocol::Tcp),
        ("partner-B roamer, video (rtsp 554)", 2, 554, Protocol::Tcp),
        ("foreign device, web (443)", 3, 443, Protocol::Tcp),
        ("fleet tracker, mqtt (8883)", 4, 8883, Protocol::Tcp),
        ("home caller, voip (sip 5060)", 5, 5060, Protocol::Udp),
    ];

    let name = |mb: &softcell::types::MiddleboxId| topo.middlebox(*mb).kind.to_string();
    println!("{:38}  outcome", "subscriber / flow");
    println!("{}", "-".repeat(78));

    for (label, imsi, port, proto) in scenarios {
        let conn = world
            .start_connection(UeImsi(imsi), server, port, proto)
            .expect("conn");
        let out = world.send_uplink(conn, b"hello").expect("uplink");
        match out {
            WalkOutcome::ExitedGateway { .. } => {
                world.deliver_downlink(conn, b"reply").expect("downlink");
                let key = world.connection(conn).key.expect("active");
                let chain: Vec<String> = world
                    .net
                    .middleboxes
                    .chain_of(&key, true)
                    .iter()
                    .map(&name)
                    .collect();
                println!("{label:38}  allowed via [{}]", chain.join(" > "));
            }
            WalkOutcome::Dropped { switch } => {
                println!("{label:38}  DENIED at the access edge ({switch})");
            }
            other => println!("{label:38}  unexpected: {other:?}"),
        }
    }

    world.assert_policy_consistency().expect("consistency");

    // classification never leaks into the fabric: count classifier state
    let gw = world.net.switch(topo.default_gateway().switch);
    println!(
        "\nfabric summary: {} total rules, gateway holds {} (no per-flow state)",
        world.net.total_rules(),
        gw.table.len()
    );
    let denied: u64 = (0..4)
        .map(|b| world.agent(BaseStationId(b)).stats().denied)
        .sum();
    println!("flows denied at access switches: {denied}");
}
