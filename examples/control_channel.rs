//! The southbound control channel over a real TCP socket.
//!
//! A controller thread listens on loopback; a base-station agent
//! connects, negotiates versions, attaches a UE, requests a policy
//! path, asks for channel stats, and detaches — every exchange framed
//! by the `softcell-ctlchan` binary codec.
//!
//! ```bash
//! cargo run --example control_channel
//! ```

use std::net::TcpListener;

use softcell_controller::agent::ControllerApi;
use softcell_controller::server::ControllerServer;
use softcell_controller::wire::ChannelController;
use softcell_ctlchan::TcpTransport;
use softcell_policy::clause::ClauseId;
use softcell_policy::{ServicePolicy, SubscriberAttributes};
use softcell_types::{BaseStationId, SimTime, UeId, UeImsi};

fn main() {
    // controller side: worker pool + a TCP accept loop for one agent
    let subscribers: Vec<SubscriberAttributes> = (0..4)
        .map(|i| SubscriberAttributes::default_home(UeImsi(i)))
        .collect();
    let server = ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers, 2)
        .expect("server");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    println!("controller listening on {addr}");
    let accept_thread = std::thread::spawn(move || listener.accept().expect("accept"));
    let agent_transport = TcpTransport::connect(addr).expect("connect");
    let (stream, peer) = accept_thread.join().expect("accept thread");
    println!("controller accepted agent from {peer}");
    let serving = server.serve(TcpTransport::from_stream(stream));

    // agent side: hello, then the §4.2 escalation sequence
    let mut ctl =
        ChannelController::connect(agent_transport, BaseStationId(3)).expect("hello exchange");
    println!("hello exchanged (version negotiated)");

    let grant = ctl
        .attach_ue(UeImsi(1), BaseStationId(3), UeId(9), SimTime::ZERO)
        .expect("attach");
    println!(
        "attached UE {}: permanent ip {}, classifier with {} entries",
        grant.record.imsi,
        grant.record.permanent_ip,
        grant.classifier.entries().len()
    );

    let tags = ctl
        .request_policy_path(BaseStationId(3), ClauseId(5))
        .expect("path");
    println!(
        "policy path for clause 5: uplink tag {:?} via port {:?}",
        tags.uplink_entry, tags.access_out_port
    );

    let stats = ctl.channel().stats().expect("stats");
    println!(
        "channel stats: served={} tx_msgs={} rx_msgs={} tx_bytes={} rx_bytes={}",
        stats.served, stats.tx_msgs, stats.rx_msgs, stats.tx_bytes, stats.rx_bytes
    );

    let record = ctl.detach_ue(UeImsi(1)).expect("detach");
    println!("detached UE {} (was at {})", record.imsi, record.bs);

    drop(ctl);
    serving
        .join()
        .expect("serve thread")
        .expect("serve loop exits cleanly");
    server.shutdown();
    println!("controller drained; channel closed cleanly");
}
