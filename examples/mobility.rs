//! Mobility walkthrough: policy consistency across a handoff (paper §5.1).
//!
//! A subscriber starts a long-lived video session at one base station,
//! moves to a station on the other side of the network, and keeps
//! streaming. The example shows the three mechanisms at work:
//!
//! 1. the old access switch anchors ongoing flows (the old
//!    location-dependent address keeps routing there);
//! 2. a base-station-pair tunnel carries anchored traffic to the new
//!    station (tag-swapped, no per-UE state in the core);
//! 3. new flows take fresh paths from the new location.
//!
//! Run with: `cargo run --example mobility`

use softcell::packet::Protocol;
use softcell::policy::{ServicePolicy, SubscriberAttributes};
use softcell::sim::SimWorld;
use softcell::topology::small_topology;
use softcell::types::{BaseStationId, UeImsi};
use std::net::Ipv4Addr;

fn main() {
    let topo = small_topology();
    let mut world = SimWorld::new(&topo, ServicePolicy::example_carrier_a(1));
    world.provision(SubscriberAttributes::default_home(UeImsi(7)));

    let server = Ipv4Addr::new(203, 0, 113, 80);
    world.attach(UeImsi(7), BaseStationId(0)).expect("attach");

    // a video session starts at bs0 (firewall > transcoder chain)
    let session = world
        .start_connection(UeImsi(7), server, 554, Protocol::Tcp)
        .expect("conn");
    world.round_trip(session).expect("first round trip");
    let key = world.connection(session).key.expect("active");
    let chain_before = world.net.middleboxes.chain_of(&key, true);
    let scheme = world.controller.config().scheme;
    let loc_before = scheme.decode(key.loc).expect("locip");
    println!(
        "session established at {}: LocIP {} (bs {}, ue {}), chain {:?}",
        BaseStationId(0),
        key.loc,
        loc_before.base_station,
        loc_before.ue,
        chain_before
    );

    // the UE moves to bs3 — the far side of the network
    world.handoff(UeImsi(7), BaseStationId(3)).expect("handoff");
    println!(
        "handoff complete: {} tunnels live, {} UEs in transition",
        world.controller.mobility().tunnel_count(),
        world.controller.mobility().transitions_active()
    );

    // the old session keeps flowing, anchored through the old path
    for _ in 0..3 {
        world.round_trip(session).expect("post-handoff round trip");
    }
    world
        .assert_policy_consistency()
        .expect("same middlebox instances before and after the move");
    println!(
        "ongoing session survived the move: {} uplink / {} downlink packets delivered, \
         all through the original middlebox instances",
        world.connection(session).uplink_sent,
        world.connection(session).downlink_delivered
    );

    // a brand-new flow uses the new location
    let fresh = world
        .start_connection(UeImsi(7), server, 443, Protocol::Tcp)
        .expect("conn");
    world.round_trip(fresh).expect("fresh flow");
    let fresh_key = world.connection(fresh).key.expect("active");
    let loc_after = scheme.decode(fresh_key.loc).expect("locip");
    println!(
        "new flow after the move uses LocIP {} (bs {}) — fresh path, no anchor",
        fresh_key.loc, loc_after.base_station
    );
    assert_eq!(loc_after.base_station, BaseStationId(3));
    assert_eq!(loc_before.base_station, BaseStationId(0));

    // transition state is transient: expire it and count the teardowns
    world.advance(softcell::types::SimDuration::from_secs(600));
    let now = world.now();
    let teardown = world.controller.expire_transitions(now);
    println!(
        "transition expired after its soft timeout: {} per-UE rules torn down",
        teardown.len()
    );
    println!("\nmobility walkthrough complete.");
}
