//! Quickstart: a complete SoftCell network in fifty lines.
//!
//! Builds the paper's Figure-2-style small topology, loads carrier A's
//! Table-1 service policy, attaches a subscriber, starts a web flow and
//! a video flow, and shows real packets crossing real switch pipelines
//! through the right middlebox chains — in both directions.
//!
//! Run with: `cargo run --example quickstart`

use softcell::policy::{ServicePolicy, SubscriberAttributes};
use softcell::sim::SimWorld;
use softcell::topology::small_topology;
use softcell::types::{BaseStationId, MiddleboxKind, UeImsi};
use std::net::Ipv4Addr;

fn main() {
    // 1. a network: 4 base stations, 2 aggregation + 2 core switches,
    //    1 gateway, 4 middleboxes
    let topo = small_topology();
    println!(
        "topology: {} switches, {} base stations, {} middleboxes, {} gateway(s)",
        topo.switch_count(),
        topo.base_stations().len(),
        topo.middlebox_count(),
        topo.gateways().len()
    );

    // 2. the paper's Table 1 service policy for carrier A
    let policy = ServicePolicy::example_carrier_a(1);
    println!("\nservice policy:");
    for clause in policy.clauses() {
        println!("  {clause}");
    }

    // 3. controller + local agents + switches
    let mut world = SimWorld::new(&topo, policy);
    world.provision(SubscriberAttributes::default_home(UeImsi(1)));

    // 4. the UE attaches; the controller compiles its packet classifiers
    //    and the local agent caches them
    world.attach(UeImsi(1), BaseStationId(0)).expect("attach");
    let rec = *world.controller.state().ue(UeImsi(1)).expect("attached");
    println!(
        "\nUE {} attached at {}: permanent IP {}, local id {}",
        rec.imsi, rec.bs, rec.permanent_ip, rec.ue_id
    );

    // 5. a web flow: classified at the access edge, steered through the
    //    firewall, and back
    let server = Ipv4Addr::new(93, 184, 216, 34);
    let web = world
        .start_connection(UeImsi(1), server, 443, softcell::packet::Protocol::Tcp)
        .expect("conn");
    world.round_trip(web).expect("web round trip");

    // 6. a video flow: the silver-plan clause adds a transcoder
    let video = world
        .start_connection(UeImsi(1), server, 554, softcell::packet::Protocol::Tcp)
        .expect("conn");
    world.round_trip(video).expect("video round trip");

    // 7. what did the middleboxes see?
    let name = |mb: &softcell::types::MiddleboxId| topo.middlebox(*mb).kind.to_string();
    for (label, conn) in [("web", web), ("video", video)] {
        let key = world.connection(conn).key.expect("carried traffic");
        let up: Vec<String> = world
            .net
            .middleboxes
            .chain_of(&key, true)
            .iter()
            .map(&name)
            .collect();
        let down: Vec<String> = world
            .net
            .middleboxes
            .chain_of(&key, false)
            .iter()
            .map(&name)
            .collect();
        println!("{label:>6} uplink chain:   {}", up.join(" > "));
        println!("{label:>6} downlink chain: {}", down.join(" > "));
    }

    // 8. the architecture's promises, checked
    world
        .assert_policy_consistency()
        .expect("policy consistency");
    let gw = world.net.switch(topo.default_gateway().switch);
    println!(
        "\ngateway state: {} wildcard rules, {} microflow entries (dumb edge!)",
        gw.table.len(),
        gw.microflow.len()
    );
    let fw = topo.instances_of(MiddleboxKind::Firewall)[0];
    println!(
        "firewall saw {} distinct connections",
        world.net.middleboxes.connections_seen(fw)
    );
    println!("total fabric rules: {}", world.net.total_rules());
    println!("\nall checks passed.");
}
