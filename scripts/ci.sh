#!/usr/bin/env bash
# Full CI gate: build, tests, formatting, lints.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> CI green"
