#!/usr/bin/env bash
# Full CI gate: build, tests, formatting, lints.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

# Static-analysis gate (DESIGN.md §12): lock order, sequencer liveness,
# panic-free wire paths, atomics ordering, telemetry discipline. Fails
# on any unsuppressed finding — including drift between the code and
# analysis/metrics_manifest.toml (regenerate with
# `cargo run -p softcell-analyzer -- --write-metrics-manifest`). The
# binary is already built by the release build above, so this completes
# in well under 5 s.
echo "==> softcell-analyzer (static analysis gate)"
./target/release/softcell-analyzer --root .

echo "==> cargo test -q"
cargo test -q --workspace

# Fault-injection churn (fixed seed, so deterministic) under a hard
# wall-clock cap: a retry/reconnect regression shows up as a hang, and
# the timeout turns that hang into a failure instead of a stuck CI job.
echo "==> fault-injection churn (120 s cap)"
timeout 120 cargo test -q --release --test fault_churn

# Sharded-controller differential oracle + cross-shard interleavings,
# also time-capped: a lost rendezvous or a burned-but-unserved ticket is
# a deadlock, and the timeout surfaces it as a red build.
echo "==> shard oracle + interleaving sweep (180 s cap)"
timeout 180 cargo test -q --release --test shard_oracle --test shard_interleave

# Replicated control-plane recovery drill: 3-controller cluster, region
# leader killed -9 mid-handoff-storm. Gate: survivors' log-replayed
# state matches the pre-kill oracle byte-for-byte, zero residue after
# agent re-homing, recovery-time histogram exported. Time-capped
# because a quorum or fail-over regression shows up as a stall.
echo "==> replicated recovery drill (180 s cap)"
timeout 180 cargo test -q --release --test recovery

# Sharded packet-in throughput smoke: 4 domains must beat a single
# domain by at least 1.5x (the acceptance floor is 2x on multicore; the
# smoke bar is lower so a loaded 1-core CI box still passes honestly).
# The same run exports telemetry AND a causal trace, gating the
# observability substrate: the JSON must parse and carry real counts,
# and the trace must be a valid Chrome trace_event file whose spans are
# well nested with at least one trace crossing the wire boundary
# (wire_rtt and serve_frame under one trace id).
echo "==> sharded throughput smoke + telemetry/trace export (120 s cap)"
timeout 120 cargo run --release -q -p softcell-bench --bin tab2_agent_throughput -- \
  --quick --shards 4 --min-speedup 1.5 --telemetry /tmp/softcell-telemetry.json \
  --trace /tmp/softcell-trace.json
python3 scripts/check_trace.py /tmp/softcell-trace.json

# Wide-shard smoke: 16 domains through the concurrent engine (optimistic
# plan + validate/commit). The speedup floor stays modest — CI boxes may
# have few cores — but the run itself gates the partitioned-lock paths
# (per-switch cells, residue, striped UE map) under real contention.
echo "==> 16-shard concurrent-engine smoke (120 s cap)"
timeout 120 cargo run --release -q -p softcell-bench --bin tab2_agent_throughput -- \
  --quick --shards 16 --min-speedup 1.5

# Metro scenario campaign (DESIGN.md §14): a reduced regression matrix
# — plain diurnal day, flash crowd, controller kill -9 — at 10k modeled
# UEs over the compressed virtual day. Deterministic (fixed seed), so
# any violation is replayable from the coordinates in the report. The
# gate is zero violations AND live per-scenario telemetry; time-capped
# because a stuck drain or drill is a hang, not a red assert.
echo "==> metro scenario campaign smoke (240 s cap)"
timeout 240 ./target/release/metro_campaign \
  --ues 10000 --scenarios diurnal,flash-crowd,controller-kill \
  --report /tmp/softcell-scenario.json \
  --telemetry /tmp/softcell-scenario-telemetry.json \
  --trace /tmp/softcell-scenario-trace.json
python3 scripts/check_trace.py /tmp/softcell-scenario-trace.json
python3 - /tmp/softcell-scenario.json /tmp/softcell-scenario-telemetry.json <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
names = [s["scenario"] for s in report["scenarios"]]
assert names == ["diurnal", "flash-crowd", "controller-kill"], names
for s in report["scenarios"]:
    assert s["violations"] == [], \
        f"{s['scenario']}: violations {s['violations']}"
    assert s["micro"]["attaches"] > 0 and s["micro"]["round_trips"] > 0, \
        f"{s['scenario']}: cohort tier idle"
    q = s["quiesce"]
    assert all(v == 0 for v in q.values()), f"{s['scenario']}: residue {q}"
assert report["scenarios"][2]["overlay"]["drills_converged"] == 1, \
    "controller-kill drill did not converge"
snap = json.load(open(sys.argv[2]))
counters = {(c["name"], c["label"]): c["value"] for c in snap["counters"]}
for name in names:
    ev = counters.get(("softcell_scenario_events_total", f"scenario={name}"), 0)
    pr = counters.get(("softcell_scenario_probe_runs_total", f"scenario={name}"), 0)
    assert ev > 0 and pr > 0, \
        f"scenario {name}: telemetry dead (events={ev}, probes={pr})"
print(f"scenario campaign ok: {', '.join(names)} clean, telemetry live")
PY

echo "==> telemetry snapshot sanity"
python3 - /tmp/softcell-telemetry.json <<'PY'
import json, sys
snap = json.load(open(sys.argv[1]))
counters = {(c["name"], c["label"]): c["value"] for c in snap["counters"]}
total = sum(v for (n, _), v in counters.items()
            if n == "softcell_controller_packet_in_total")
assert total > 0, "packet_in_total is zero: instrumentation dead"
for shard in range(4):
    served = counters.get(("softcell_controller_shard_served_total",
                           f"shard={shard}"), 0)
    assert served > 0, f"shard {shard} served nothing: per-shard counters dead"
names = {n for n, _ in counters}
assert any(n.startswith("softcell_ctlchan_frames_") for n in names), \
    "ctlchan frame counters missing from export"
hists = {h["name"]: h for h in snap["histograms"]}
lat = hists["softcell_controller_packet_in_latency_ns"]
assert lat["count"] > 0 and lat["p99"] >= lat["p50"] > 0, \
    f"packet-in latency histogram broken: {lat}"
print(f"telemetry ok: packet_in_total={total}, "
      f"p50={lat['p50']}ns p99={lat['p99']}ns")
PY

# The kill switch must still compile everything it touches: with
# telemetry-off the substrate is no-ops, not missing symbols.
echo "==> build with --features telemetry-off"
cargo build --release -q -p softcell-bench --features telemetry-off

echo "==> cargo fmt --check"
cargo fmt --check

# Curated lint set (DESIGN.md §12): -D warnings everywhere including
# tests and benches, plus dbg!/todo! denied workspace-wide, plus
# unwrap_used denied in the non-test code of the two crates whose
# panics would take down the control plane (ctlchan, controller).
echo "==> cargo clippy --workspace --all-targets (curated deny set)"
cargo clippy --workspace --all-targets -- \
  -D warnings -D clippy::dbg_macro -D clippy::todo

echo "==> cargo clippy -p softcell-ctlchan -p softcell-controller (deny unwrap_used)"
cargo clippy --no-deps -p softcell-ctlchan -p softcell-controller -- \
  -D warnings -D clippy::unwrap_used -D clippy::dbg_macro -D clippy::todo

echo "==> CI green"
