#!/usr/bin/env bash
# Full CI gate: build, tests, formatting, lints.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

# Fault-injection churn (fixed seed, so deterministic) under a hard
# wall-clock cap: a retry/reconnect regression shows up as a hang, and
# the timeout turns that hang into a failure instead of a stuck CI job.
echo "==> fault-injection churn (120 s cap)"
timeout 120 cargo test -q --release --test fault_churn

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> CI green"
