#!/usr/bin/env bash
# Full CI gate: build, tests, formatting, lints.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

# Fault-injection churn (fixed seed, so deterministic) under a hard
# wall-clock cap: a retry/reconnect regression shows up as a hang, and
# the timeout turns that hang into a failure instead of a stuck CI job.
echo "==> fault-injection churn (120 s cap)"
timeout 120 cargo test -q --release --test fault_churn

# Sharded-controller differential oracle + cross-shard interleavings,
# also time-capped: a lost rendezvous or a burned-but-unserved ticket is
# a deadlock, and the timeout surfaces it as a red build.
echo "==> shard oracle + interleaving sweep (180 s cap)"
timeout 180 cargo test -q --release --test shard_oracle --test shard_interleave

# Sharded packet-in throughput smoke: 4 domains must beat a single
# domain by at least 1.5x (the acceptance floor is 2x on multicore; the
# smoke bar is lower so a loaded 1-core CI box still passes honestly).
echo "==> sharded throughput smoke (120 s cap)"
timeout 120 cargo run --release -q -p softcell-bench --bin tab2_agent_throughput -- \
  --quick --shards 4 --min-speedup 1.5

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> CI green"
