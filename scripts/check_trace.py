#!/usr/bin/env python3
"""Validates a Chrome trace_event JSON export produced by `--trace`.

Gates, in order:
  1. the file is valid JSON shaped like a Chrome trace: a top-level
     `traceEvents` list of complete ("ph": "X") events, each carrying
     name/ts/dur/pid/tid and the softcell span args
  2. spans are well nested in time: no span ends before it starts
  3. no orphan parents: every nonzero `args.parent` resolves to a
     `span_id` within the same trace (the exporter only emits complete
     traces, so a dangling parent means the exporter or the ring broke)
  4. at least one trace crossed the wire boundary: a client-side
     `wire_rtt` span and a server-side `serve_frame` span share one
     trace id, proving context propagation through the frame trailer

Usage: check_trace.py PATH [PATH ...]; exits nonzero on the first
failed gate.
"""
import json
import sys


def check(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    assert isinstance(events, list) and events, f"{path}: no traceEvents"

    traces = {}
    for ev in events:
        assert ev.get("ph") == "X", f"{path}: non-complete event: {ev}"
        for key in ("name", "ts", "dur", "pid", "tid", "args"):
            assert key in ev, f"{path}: event missing {key!r}: {ev}"
        assert ev["dur"] >= 0, f"{path}: span ends before it starts: {ev}"
        assert ev["args"].get("span_id"), f"{path}: span without id: {ev}"
        traces.setdefault(ev["tid"], []).append((ev["name"], ev["args"]))

    crossed = 0
    for tid, spans in traces.items():
        ids = {args["span_id"] for _, args in spans}
        for name, args in spans:
            parent = args.get("parent", 0)
            assert parent == 0 or parent in ids, (
                f"{path}: trace {tid}: span {name!r} has orphan parent "
                f"{parent} (ids: {sorted(ids)})"
            )
        names = {name for name, _ in spans}
        if "wire_rtt" in names and "serve_frame" in names:
            crossed += 1
    assert crossed >= 1, f"{path}: no trace crossed the wire boundary"
    print(
        f"{path}: trace ok — {len(events)} spans, {len(traces)} traces, "
        f"{crossed} crossed the wire"
    )


if __name__ == "__main__":
    if len(sys.argv) < 2:
        sys.exit(f"usage: {sys.argv[0]} PATH [PATH ...]")
    for p in sys.argv[1:]:
        check(p)
