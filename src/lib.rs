//! # SoftCell
//!
//! A from-scratch Rust reproduction of **SoftCell: Scalable and Flexible
//! Cellular Core Network Architecture** (Jin, Li, Vanbever, Rexford —
//! CoNEXT 2013).
//!
//! SoftCell replaces the monolithic P-GW of an LTE core with a fabric of
//! commodity switches driven by a logically-centralized controller. Its two
//! key techniques, both implemented here:
//!
//! * **Multi-dimensional aggregation** (paper §3): forwarding rules in core
//!   switches selectively match on a *policy tag*, a hierarchical
//!   *base-station prefix* and a *UE ID*, letting an online greedy
//!   algorithm (Algorithm 1, [`controller::install`]) support millions of
//!   policy paths with a few thousand TCAM entries.
//! * **Smart access edge, dumb gateway edge** (paper §4): all fine-grained
//!   packet classification happens at software access switches next to the
//!   base stations; the classification result is embedded in the source
//!   IP address and port so return traffic needs no classification at the
//!   multi-terabit gateway edge.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `softcell-types` | identifiers, LocIP addressing, prefixes, tags, time |
//! | [`packet`] | `softcell-packet` | IPv4/TCP/UDP wire format, header embedding, NAT |
//! | [`topology`] | `softcell-topology` | graph model + synthetic cellular topologies |
//! | [`dataplane`] | `softcell-dataplane` | multi-table switch model with TCAM semantics |
//! | [`policy`] | `softcell-policy` | service-policy language and classifier compiler |
//! | [`ctlchan`] | `softcell-ctlchan` | southbound control channel: framing, transports, fault injection |
//! | [`controller`] | `softcell-controller` | central controller, Algorithm 1, local agents, mobility, failover |
//! | [`workload`] | `softcell-workload` | synthetic LTE workload calibrated to the paper's traces |
//! | [`sim`] | `softcell-sim` | end-to-end event simulator and baselines |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for a complete tour: build a topology,
//! define a service policy, attach UEs, start flows and watch packets
//! traverse the right middlebox chains in both directions.

#![forbid(unsafe_code)]

pub use softcell_controller as controller;
pub use softcell_ctlchan as ctlchan;
pub use softcell_dataplane as dataplane;
pub use softcell_packet as packet;
pub use softcell_policy as policy;
pub use softcell_scenario as scenario;
pub use softcell_sim as sim;
pub use softcell_topology as topology;
pub use softcell_types as types;
pub use softcell_workload as workload;
