//! Algorithm 1 ⇄ data plane equivalence by replay.
//!
//! The Figure-7 experiments trust the controller's shadow tables; this
//! test closes the loop: install a few hundred policy paths with random
//! middlebox chains, lower every shadow delta to *physical* switches,
//! then inject real downlink packets at the gateway for every installed
//! path and check each one (a) reaches its origin base station's access
//! switch and (b) traverses exactly the path's middlebox instances in
//! reverse (downlink) order — including paths whose loops forced tag
//! swaps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use softcell::controller::install::Direction;
use softcell::controller::ops::lower_delta;
use softcell::controller::{PathInstaller, TagPolicy};
use softcell::packet::{build_flow_packet, FiveTuple, Protocol};
use softcell::sim::{PhysicalNetwork, WalkOutcome};
use softcell::topology::{CellularParams, PolicyPath, ShortestPaths, Topology};
use softcell::types::{
    AddressingScheme, BaseStationId, LocIp, MiddleboxId, PortEmbedding, SimTime, UeId,
};
use std::net::Ipv4Addr;

fn random_paths(topo: &Topology, n: usize, seed: u64) -> Vec<PolicyPath> {
    let mut sp = ShortestPaths::new(topo);
    let mut rng = StdRng::seed_from_u64(seed);
    let gw = topo.default_gateway().switch;
    let stations = topo.base_stations().len();
    let mbs = topo.middlebox_count();
    (0..n)
        .map(|i| {
            let m = 1 + rng.gen_range(0..4usize);
            let mut chain: Vec<MiddleboxId> = Vec::new();
            while chain.len() < m {
                let cand = MiddleboxId(rng.gen_range(0..mbs as u32));
                if !chain.contains(&cand) {
                    chain.push(cand);
                }
            }
            let bs = BaseStationId((i % stations) as u32);
            sp.route_policy_path(bs, &chain, gw).unwrap()
        })
        .collect()
}

#[test]
fn replayed_downlink_packets_follow_their_installed_paths() {
    let topo = CellularParams::paper(2).build().unwrap();
    let scheme = AddressingScheme::default_scheme();
    let ports = PortEmbedding::default_embedding();
    let mut installer = PathInstaller::new(&topo, scheme, TagPolicy::default());
    let mut net = PhysicalNetwork::new(&topo);
    net.middleboxes = softcell::sim::MiddleboxTracker::new(scheme, ports);

    let paths = random_paths(&topo, 200, 99);
    let mut tags = Vec::with_capacity(paths.len());
    let carrier = scheme.carrier();
    for p in &paths {
        let report = installer.install_path(p, Direction::Downlink).unwrap();
        tags.push((report.entry_tag(), report.exit_tag()));
        for (sw, delta) in installer.last_deltas() {
            let op = lower_delta(&topo, &ports, carrier, Direction::Downlink, *sw, delta).unwrap();
            net.apply(&op).unwrap();
        }
    }

    let gw = *topo.default_gateway();
    for (i, p) in paths.iter().enumerate() {
        // a downlink packet towards this path's origin, carrying the
        // entry tag the classifier would have embedded
        let loc = scheme
            .encode(LocIp::new(p.origin, UeId((i % 7) as u16)))
            .unwrap();
        let slot = (i % 32) as u16;
        let (entry_tag, exit_tag) = tags[i];
        let tuple = FiveTuple {
            src: Ipv4Addr::new(203, 0, 113, 99),
            dst: loc,
            src_port: 443,
            dst_port: ports.encode(entry_tag, slot).unwrap(),
            proto: Protocol::Tcp,
        };
        // the delivery microflow at the origin's access switch, keyed by
        // the tuple as it arrives (tag swaps may have rewritten the tag
        // bits to the path's exit tag)
        let access = topo.base_station(p.origin).access_switch;
        let radio = topo.base_station(p.origin).radio_port;
        let arriving = FiveTuple {
            dst_port: ports.encode(exit_tag, slot).unwrap(),
            ..tuple
        };
        let permanent = Ipv4Addr::new(100, 64, 1, (i % 250) as u8);
        net.switch_mut(access)
            .microflow
            .install(
                arriving,
                softcell::dataplane::MicroflowAction::RewriteDst {
                    addr: permanent,
                    port: 50_000,
                    out: radio,
                },
                SimTime::from_secs(3600),
            )
            .unwrap();

        let mut buf = build_flow_packet(tuple, 200, 0, b"replay");
        net.trace = std::env::var("TRACE_PATH").ok().as_deref() == Some(&i.to_string());
        let out = net
            .walk(&topo, &mut buf, gw.switch, gw.port, 0, SimTime::ZERO)
            .unwrap_or_else(|e| panic!("path {i}: {e}"));
        net.trace = false;

        match out {
            WalkOutcome::DeliveredToRadio { switch } => {
                assert_eq!(switch, access, "path {i} delivered at the wrong station");
            }
            other => panic!("path {i}: unexpected outcome {other:?}"),
        }
        // delivery restored the permanent endpoint
        {
            let v = softcell::packet::HeaderView::parse(&buf).unwrap();
            assert_eq!(v.dst(), permanent, "path {i}: permanent address restored");
        }
        // clean up the microflow entry so later same-tuple paths from the
        // same station key freshly
        net.switch_mut(access).microflow.remove(&arriving);
        // reinstall for the chain inspection below (the walk consumed it)
        let _ = (entry_tag, exit_tag);

        // and it traversed exactly the reversed middlebox chain
        // (key from the pre-delivery form of the packet: the arriving
        // tuple before the permanent-address restore)
        let arriving_buf = build_flow_packet(arriving, 64, 0, b"");
        let view = softcell::packet::HeaderView::parse(&arriving_buf).unwrap();
        let (key, _) = net.middleboxes.key_of(&view).unwrap();
        let expected: Vec<MiddleboxId> = p.middleboxes().into_iter().rev().collect();
        let chains = net.middleboxes.all_chains(&key, false);
        let seen = chains.last().cloned().unwrap_or_default();
        assert_eq!(seen, expected, "path {i} chain mismatch");
    }
}

#[test]
fn rule_counts_match_between_shadow_and_physical() {
    // every shadow delta lowered exactly once → physical table sizes
    // equal shadow rule counts, switch by switch
    let topo = CellularParams::paper(2).build().unwrap();
    let scheme = AddressingScheme::default_scheme();
    let ports = PortEmbedding::default_embedding();
    let mut installer = PathInstaller::new(&topo, scheme, TagPolicy::default());
    let mut net = PhysicalNetwork::new(&topo);
    let carrier = scheme.carrier();

    for p in random_paths(&topo, 150, 7) {
        installer.install_path(&p, Direction::Downlink).unwrap();
        for (sw, delta) in installer.last_deltas() {
            let op = lower_delta(&topo, &ports, carrier, Direction::Downlink, *sw, delta).unwrap();
            net.apply(&op).unwrap();
        }
    }

    let shadow_counts = installer.shadows(Direction::Downlink).rule_counts();
    for (i, &expected) in shadow_counts.iter().enumerate() {
        let physical = net.switch(softcell::types::SwitchId(i as u32)).table.len();
        assert_eq!(
            physical, expected,
            "switch {i}: physical {physical} vs shadow {expected}"
        );
    }
}
