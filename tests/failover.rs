//! Control-plane failure drills across the full stack (paper §5.2).

use softcell::controller::failover::{rebuild_locations, AgentLocationReport, ReplicaGroup};
use softcell::packet::Protocol;
use softcell::policy::{ServicePolicy, SubscriberAttributes};
use softcell::sim::SimWorld;
use softcell::topology::small_topology;
use softcell::types::{BaseStationId, SimTime, UeImsi};
use std::net::Ipv4Addr;

const SERVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 80);

#[test]
fn controller_replica_rebuilds_locations_from_live_agents() {
    let topo = small_topology();
    let mut w = SimWorld::new(&topo, ServicePolicy::example_carrier_a(1));
    for i in 0..6 {
        w.provision(SubscriberAttributes::default_home(UeImsi(i)));
    }
    for i in 0..6u64 {
        w.attach(UeImsi(i), BaseStationId((i % 4) as u32)).unwrap();
    }
    // some traffic so the state is non-trivial
    for i in 0..6u64 {
        let c = w
            .start_connection(UeImsi(i), SERVER, 443, Protocol::Tcp)
            .unwrap();
        w.round_trip(c).unwrap();
    }
    // a handoff so one UE's location is "fresh"
    w.handoff(UeImsi(0), BaseStationId(2)).unwrap();

    // the replica group mirrors the primary's slow state
    let mut group = ReplicaGroup::new(w.controller.state().clone(), 3).unwrap();
    group.fail_replica(0).unwrap();

    // the surviving replica lost nothing slow...
    assert_eq!(group.primary().subscriber_count(), 6);
    // ...and rebuilds the fast (location) state from the agents
    let reports: Vec<AgentLocationReport> = topo
        .base_stations()
        .iter()
        .map(|bs| AgentLocationReport::from_agent(w.agent(bs.id), SimTime::from_secs(1)))
        .collect();
    let mut recovered = group.primary().clone();
    recovered.clear_locations();
    rebuild_locations(&mut recovered, &reports);

    assert_eq!(recovered.attached_count(), 6);
    for i in 0..6u64 {
        assert_eq!(
            recovered.ue(UeImsi(i)).unwrap().bs,
            w.controller.state().ue(UeImsi(i)).unwrap().bs,
            "rebuilt location of {i} matches the agents' truth"
        );
    }
}

#[test]
fn agent_restart_preserves_service() {
    let topo = small_topology();
    let mut w = SimWorld::new(&topo, ServicePolicy::example_carrier_a(1));
    for i in 0..2 {
        w.provision(SubscriberAttributes::default_home(UeImsi(i)));
    }
    w.attach(UeImsi(0), BaseStationId(0)).unwrap();
    w.attach(UeImsi(1), BaseStationId(0)).unwrap();
    let c = w
        .start_connection(UeImsi(0), SERVER, 443, Protocol::Tcp)
        .unwrap();
    w.round_trip(c).unwrap();

    // crash the bs0 agent and restart it from the controller
    let grants = w.controller.grants_for_station(BaseStationId(0)).unwrap();
    assert_eq!(grants.len(), 2);
    w.restart_agent(BaseStationId(0)).unwrap();

    // attached UEs survived; new flows classify correctly again
    let c2 = w
        .start_connection(UeImsi(1), SERVER, 554, Protocol::Tcp)
        .unwrap();
    w.round_trip(c2).unwrap();
    w.assert_policy_consistency().unwrap();
}
