//! `kill -9` recovery drill for the replicated control plane.
//!
//! The scenario the replication design exists for: a three-controller
//! cluster runs a cross-region handoff storm, the region leader is
//! killed mid-storm with no teardown, survivors fail over, agents
//! re-home to the deterministic successor, and the storm resumes. The
//! gate demands *zero residue*: the survivors' log-replayed state must
//! match the dead leader's frozen pre-kill snapshot byte-for-byte,
//! detached UEs must stay detached through the re-home replay, every
//! surviving UE must keep its original permanent IP, and the recovery
//! duration must land in the exported telemetry report.

use std::collections::HashMap;
use std::time::Duration;

use softcell_ctlchan::{Message, PacketIn};
use softcell_policy::clause::ClauseId;
use softcell_policy::{ServicePolicy, SubscriberAttributes};
use softcell_replica::{rehome_agent, Cluster, Link, ReplicaStore};
use softcell_telemetry::Registry;
use softcell_types::{
    AddressingScheme, BaseStationId, ControllerId, Membership, PortEmbedding, PortNo, SimTime,
    UeImsi,
};

use softcell_controller::agent::LocalAgent;
use softcell_controller::wire::ChannelController;

const UES: u64 = 12;
const DETACHED: [u64; 3] = [9, 10, 11];

/// One base station per seat, each led by that seat under `view`.
fn stations(view: &Membership, seats: usize) -> Vec<BaseStationId> {
    (0..seats as u32)
        .map(|seat| {
            (0..1024u32)
                .map(BaseStationId)
                .find(|bs| view.leader_of_station(*bs) == Some(ControllerId(seat)))
                .expect("every seat leads some station")
        })
        .collect()
}

struct Cell {
    agent: LocalAgent,
    ctl: ChannelController<Link>,
}

impl Cell {
    fn open(cluster: &Cluster, bs: BaseStationId) -> Cell {
        Cell {
            agent: LocalAgent::new(
                bs,
                PortNo(2),
                AddressingScheme::default_scheme(),
                PortEmbedding::default_embedding(),
            ),
            ctl: cluster.connect_agent(bs).expect("connect agent"),
        }
    }
}

/// Moves `imsi` from cell `from` to cell `to`: the source agent forgets
/// it locally (radio-level departure), the target attaches it — the
/// controller upsert keeps the permanent IP, and the replicated
/// last-writer-wins register makes the newer location stick on every
/// replica regardless of arrival order.
fn handoff(cells: &mut [Cell], from: usize, to: usize, imsi: UeImsi, now: SimTime) {
    cells[from].agent.evict(imsi).expect("evict at source");
    let c = &mut cells[to];
    c.agent
        .handle_attach(imsi, &mut c.ctl, now)
        .expect("re-attach at target");
}

#[test]
fn leader_kill_mid_handoff_storm_leaves_zero_residue() {
    let cluster = Cluster::start(
        3,
        2,
        &ServicePolicy::example_carrier_a(1),
        &(0..UES)
            .map(|i| SubscriberAttributes::default_home(UeImsi(i)))
            .collect::<Vec<_>>(),
        Duration::from_millis(400),
    )
    .expect("cluster start");
    let view = cluster.membership().expect("bootstrap view");
    let bss = stations(&view, 3);
    let mut cells: Vec<Cell> = bss.iter().map(|&bs| Cell::open(&cluster, bs)).collect();

    // Storm, act one: every UE attaches, spread across the regions, and
    // each region leader installs a core path for its station.
    let mut clock = 0u64;
    let mut ip_of = HashMap::new();
    for i in 0..UES {
        clock += 1;
        let c = &mut cells[(i % 3) as usize];
        let rec = c
            .agent
            .handle_attach(UeImsi(i), &mut c.ctl, SimTime(clock))
            .expect("attach");
        ip_of.insert(UeImsi(i), rec.permanent_ip);
    }
    for (seat, &bs) in bss.iter().enumerate() {
        let reply = cluster
            .node(seat)
            .handle_agent(&Message::PacketIn(PacketIn::PathRequest {
                bs,
                clause: ClauseId(0),
            }))
            .expect("path request");
        assert!(matches!(reply, Message::FlowMod(_)), "leader installs path");
    }

    // Act two: a cross-region handoff ring (every UE moves one region
    // over) plus a few permanent detaches, leaving tombstones that the
    // later re-home replay must NOT resurrect.
    for i in 0..UES {
        clock += 1;
        let from = (i % 3) as usize;
        handoff(&mut cells, from, (from + 1) % 3, UeImsi(i), SimTime(clock));
    }
    for imsi in DETACHED {
        let cell = ((imsi % 3) as usize + 1) % 3;
        let c = &mut cells[cell];
        c.agent
            .handle_detach(UeImsi(imsi), &mut c.ctl)
            .expect("detach");
    }

    // Quiesce point: every op above is quorum-committed (replies are
    // commit-gated), so the leader's state right now is the recovery
    // oracle. Freeze it, then kill -9.
    let oracle = cluster.node(0).snapshot_bytes();
    cluster.kill(0);
    assert!(
        cells[0]
            .ctl
            .channel()
            .probe(Duration::from_millis(100))
            .is_err(),
        "agent must observe leader death via probe"
    );

    let after = cluster.fail_over(&[ControllerId(0)]).expect("fail-over");
    assert_eq!(after.epoch(), 2);

    // Acceptance criterion: the survivors' log-replayed state matches
    // the pre-kill oracle byte-for-byte — nothing lost, nothing extra.
    assert_eq!(cluster.node(1).snapshot_bytes(), oracle, "seat 1 vs oracle");
    assert_eq!(cluster.node(2).snapshot_bytes(), oracle, "seat 2 vs oracle");

    // The orphaned region's agent re-homes to the deterministic
    // successor and replays its UEs through resync.
    clock += 1;
    let successor = after
        .leader_of_station(bss[0])
        .expect("successor leads the orphaned region");
    let cell0 = &mut cells[0];
    let new_home =
        rehome_agent(&cluster, &mut cell0.ctl, &mut cell0.agent, SimTime(clock)).expect("re-home");
    assert_eq!(new_home, successor);

    // Act three: the storm resumes across the shrunken cluster,
    // including handoffs back onto the re-homed region.
    for i in 0..UES {
        if DETACHED.contains(&i) {
            continue;
        }
        clock += 1;
        let from = ((i % 3) as usize + 1) % 3;
        handoff(&mut cells, from, (from + 1) % 3, UeImsi(i), SimTime(clock));
    }
    // The successor reuses the committed path tag rather than minting a
    // fresh one — installed paths are part of the replicated slow state.
    let reply = cluster
        .node(successor.seat())
        .handle_agent(&Message::PacketIn(PacketIn::PathRequest {
            bs: bss[0],
            clause: ClauseId(0),
        }))
        .expect("path re-request after fail-over");
    let Message::FlowMod(mods) = &reply else {
        panic!("expected FlowMod, got {reply:?}");
    };
    assert_eq!(
        u32::from(mods[0].tags.uplink_entry.0) / 256,
        0,
        "tag still from the dead seat's slab: committed installs survive"
    );

    // Zero residue, checked on the parsed stores of both survivors:
    // exactly the live UEs, original permanent IPs, tombstones intact.
    let s1 = cluster.node(1).snapshot_bytes();
    let s2 = cluster.node(2).snapshot_bytes();
    assert_eq!(s1, s2, "survivors converge byte-for-byte after the storm");
    let store = ReplicaStore::restore(&s1).expect("snapshot parses");
    assert_eq!(store.ue_count(), UES as usize - DETACHED.len());
    assert_eq!(store.path_count(), 3);
    for i in 0..UES {
        let entry = store.ue(UeImsi(i));
        if DETACHED.contains(&i) {
            assert!(entry.is_none(), "detached UE {i} resurrected: residue");
        } else {
            let entry = entry.unwrap_or_else(|| panic!("UE {i} lost in recovery"));
            assert_eq!(entry.permanent_ip, ip_of[&UeImsi(i)], "UE {i} IP drifted");
        }
    }

    // The recovery-time histogram is populated and lands in the
    // exported telemetry report.
    let snap = Registry::global().snapshot();
    let hist = snap
        .histogram("softcell_replica_recovery_time_us")
        .expect("recovery histogram registered");
    assert!(hist.count >= 1, "fail-over duration recorded");
    assert!(
        snap.report().contains("softcell_replica_recovery_time_us"),
        "recovery histogram missing from the telemetry report"
    );
}
