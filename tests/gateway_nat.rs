//! Gateway-edge NAT integration (paper §4.1, security & privacy).
//!
//! "SoftCell can perform network address translation (NAT) as packets
//! arrive from the Internet. Specifically, we require the NAT function
//! to pick a different IP address and/or port number for every flow,
//! whether or not the UE moves", and the public endpoints "cannot be
//! correlated with the UE's location".

use softcell::packet::Protocol;
use softcell::policy::{ServicePolicy, SubscriberAttributes};
use softcell::sim::SimWorld;
use softcell::topology::small_topology;
use softcell::types::{BaseStationId, Ipv4Prefix, UeImsi};
use std::net::Ipv4Addr;

const SERVER: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

fn nat_world(topo: &softcell::topology::Topology) -> SimWorld<'_> {
    let mut w = SimWorld::new(topo, ServicePolicy::example_carrier_a(1));
    w.enable_gateway_nat("203.0.113.0/24".parse::<Ipv4Prefix>().unwrap(), 7);
    for i in 0..4 {
        w.provision(SubscriberAttributes::default_home(UeImsi(i)));
    }
    w
}

#[test]
fn internet_sees_public_endpoints_not_locips() {
    let topo = small_topology();
    let mut w = nat_world(&topo);
    w.attach(UeImsi(0), BaseStationId(0)).unwrap();
    let c = w
        .start_connection(UeImsi(0), SERVER, 443, Protocol::Tcp)
        .unwrap();
    w.round_trip(c).unwrap();

    let public: Ipv4Prefix = "203.0.113.0/24".parse().unwrap();
    let internet = w.connection(c).internet_tuple.unwrap();
    assert!(
        public.contains(internet.src),
        "the Internet sees {} — a pool address, not a LocIP",
        internet.src
    );
    let carrier = w.controller.config().scheme.carrier();
    assert!(!carrier.contains(internet.src), "no LocIP leaks");

    // the fabric-side key still identifies the connection by LocIP
    let key = w.connection(c).key.unwrap();
    assert!(carrier.contains(key.loc));
    w.assert_policy_consistency().unwrap();
}

#[test]
fn each_flow_gets_a_fresh_public_endpoint() {
    let topo = small_topology();
    let mut w = nat_world(&topo);
    w.attach(UeImsi(0), BaseStationId(0)).unwrap();
    let c1 = w
        .start_connection(UeImsi(0), SERVER, 443, Protocol::Tcp)
        .unwrap();
    let c2 = w
        .start_connection(UeImsi(0), SERVER, 443, Protocol::Tcp)
        .unwrap();
    w.round_trip(c1).unwrap();
    w.round_trip(c2).unwrap();

    let e1 = w.connection(c1).internet_tuple.unwrap();
    let e2 = w.connection(c2).internet_tuple.unwrap();
    assert_ne!(
        (e1.src, e1.src_port),
        (e2.src, e2.src_port),
        "fresh endpoint per flow — §4.1's privacy requirement"
    );
}

#[test]
fn nat_survives_handoff_with_stable_public_endpoint() {
    let topo = small_topology();
    let mut w = nat_world(&topo);
    w.attach(UeImsi(0), BaseStationId(0)).unwrap();
    let c = w
        .start_connection(UeImsi(0), SERVER, 554, Protocol::Tcp)
        .unwrap();
    w.round_trip(c).unwrap();
    let before = w.connection(c).internet_tuple.unwrap();

    w.handoff(UeImsi(0), BaseStationId(3)).unwrap();
    w.round_trip(c).unwrap();

    // the anchored flow keeps its old LocIP, so the NAT binding — and
    // therefore the Internet-visible endpoint — is unchanged: the move
    // is invisible outside
    let after = w.connection(c).internet_tuple.unwrap();
    assert_eq!(before, after, "handoff leaked to the Internet");
    w.assert_policy_consistency().unwrap();
}

#[test]
fn stray_inbound_packets_have_no_binding() {
    // an Internet host probing the pool cold gets nothing translated
    use softcell::packet::{build_flow_packet, FiveTuple, FlowNat};
    let nat = FlowNat::new("203.0.113.0/24".parse().unwrap(), 3).unwrap();
    let mut stray = build_flow_packet(
        FiveTuple {
            src: Ipv4Addr::new(198, 51, 100, 66),
            dst: Ipv4Addr::new(203, 0, 113, 50),
            src_port: 12345,
            dst_port: 2000,
            proto: Protocol::Tcp,
        },
        64,
        0,
        &[],
    );
    assert!(nat.translate_inbound(&mut stray).is_err());
}
