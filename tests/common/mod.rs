//! Shared harness for the sharded-controller differential tests: a
//! single-threaded reference driver (real `CentralController` + real
//! per-station `LocalAgent`s, applied the way the simulator applies
//! them), a materializer replaying a `ShardedRun` onto a fresh data
//! plane, and canonicalized state dumps for byte-level comparison.
#![allow(dead_code)]

use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;
use std::net::Ipv4Addr;

use softcell::controller::mobility::FlowRecord;
use softcell::controller::sharded::{EventOutcome, ShardEvent, ShardEventKind, ShardedRun};
use softcell::controller::{CentralController, ControllerConfig, LocalAgent};
use softcell::dataplane::MicroflowAction;
use softcell::packet::{build_flow_packet, FiveTuple, HeaderView, Protocol};
use softcell::policy::{ServicePolicy, SubscriberAttributes};
use softcell::sim::PhysicalNetwork;
use softcell::topology::Topology;
use softcell::types::{Ipv4Prefix, SimDuration, UeImsi};

/// Remote endpoint all test flows target.
pub const SERVER: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

/// The service policy both implementations run.
pub fn policy() -> ServicePolicy {
    ServicePolicy::example_carrier_a(1)
}

/// `n` provisioned subscribers.
pub fn subscribers(n: u64) -> Vec<SubscriberAttributes> {
    (0..n)
        .map(|i| SubscriberAttributes::default_home(UeImsi(i)))
        .collect()
}

/// Everything compared between the two implementations.
pub struct RunDump {
    /// Per-switch fabric flow tables, verbatim (no canonicalization —
    /// these hold LocIP prefixes and tags only, never permanent IPs).
    pub fabric: String,
    /// Sorted canonicalized microflow entries across all switches.
    pub microflow: Vec<String>,
    /// The partition of flow source ports into same-permanent-IP groups.
    pub ip_groups: BTreeSet<BTreeSet<u16>>,
    /// Controller state (locations, reservations, tags, transitions).
    pub state: String,
    /// (flows, cache_hits, cache_misses, denied).
    pub flow_stats: (u64, u64, u64, u64),
}

/// Dumps every switch's fabric flow table verbatim.
pub fn fabric_dump(topo: &Topology, net: &PhysicalNetwork) -> String {
    let mut s = String::new();
    for sw in topo.switches() {
        writeln!(s, "== {:?}", sw.id).unwrap();
        for r in net.switch(sw.id).table.iter() {
            writeln!(s, "{r:?}").unwrap();
        }
    }
    s
}

/// Dumps all microflow entries with permanent addresses canonicalized
/// through the owning flow's globally-unique source port, plus the
/// partition of ports into same-address groups.
pub fn microflow_dump(
    topo: &Topology,
    net: &PhysicalNetwork,
    pool: Ipv4Prefix,
) -> (Vec<String>, BTreeSet<BTreeSet<u16>>) {
    let mut lines = Vec::new();
    let mut groups: HashMap<Ipv4Addr, BTreeSet<u16>> = HashMap::new();
    for sw in topo.switches() {
        for (tuple, entry) in net.switch(sw.id).microflow.iter() {
            let mut t = *tuple;
            let mut action = entry.action;
            if pool.contains(t.src) {
                // uplink or drop entry: src is the UE's permanent IP and
                // src_port is the flow's unique identity
                groups.entry(t.src).or_default().insert(t.src_port);
                t.src = Ipv4Addr::UNSPECIFIED;
            }
            if let MicroflowAction::RewriteDst { addr, port, out } = action {
                if pool.contains(addr) {
                    // downlink entry: the restored destination is the
                    // permanent IP, the restored port the flow identity
                    groups.entry(addr).or_default().insert(port);
                    action = MicroflowAction::RewriteDst {
                        addr: Ipv4Addr::UNSPECIFIED,
                        port,
                        out,
                    };
                }
            }
            lines.push(format!(
                "{:?} {t:?} {action:?} deadline={:?} packets={}",
                sw.id, entry.idle_deadline, entry.packets
            ));
        }
    }
    lines.sort();
    (lines, groups.into_values().collect())
}

/// Dumps controller state: per-UE locations, reservation and tag
/// counters, mobility residue.
pub fn state_dump(ctl: &CentralController<'_>) -> String {
    let mut ues: Vec<_> = ctl
        .state()
        .attached()
        .map(|r| (r.imsi.0, r.bs, r.ue_id, r.since))
        .collect();
    ues.sort_by_key(|u| u.0);
    format!(
        "ues={ues:?} reserved={} tags={} transitions={} tunnels={}",
        ctl.state().reserved_count(),
        ctl.installer().tags_in_use(),
        ctl.mobility().transitions_active(),
        ctl.mobility().tunnel_count(),
    )
}

/// Drives the trace through the single-threaded controller + real local
/// agents, the way `SimWorld` does (agent-side UE-id discipline,
/// microflow installs at the access switch, handoff plan application).
/// Returns the dump plus the live controller and network for follow-up
/// checks (expiry, residue).
pub fn reference_run_full<'t>(
    topo: &'t Topology,
    n_subs: u64,
    events: &[ShardEvent],
) -> (RunDump, CentralController<'t>, PhysicalNetwork) {
    let cfg = ControllerConfig::simulation();
    let mut ctl = CentralController::new(topo, cfg, policy());
    for attrs in subscribers(n_subs) {
        ctl.put_subscriber(attrs);
    }
    let mut net = PhysicalNetwork::new(topo);
    let mut agents: Vec<LocalAgent> = topo
        .base_stations()
        .iter()
        .map(|bs| LocalAgent::new(bs.id, bs.radio_port, cfg.scheme, cfg.ports))
        .collect();

    for ev in events {
        match ev.kind {
            ShardEventKind::Attach { bs } => {
                agents[bs.index()]
                    .handle_attach(ev.imsi, &mut ctl, ev.time)
                    .expect("reference attach");
                let ops = ctl.drain_ops();
                net.apply_all(&ops).expect("attach ops");
            }
            ShardEventKind::NewFlow {
                bs,
                dst,
                src_port,
                dst_port,
                udp,
            } => {
                let rec = *ctl.state().ue(ev.imsi).expect("flow for attached UE");
                assert_eq!(rec.bs, bs, "trace keeps flows at the current station");
                let tuple = FiveTuple {
                    src: rec.permanent_ip,
                    dst,
                    src_port,
                    dst_port,
                    proto: if udp { Protocol::Udp } else { Protocol::Tcp },
                };
                let buf = build_flow_packet(tuple, 64, 0, b"x");
                let view = HeaderView::parse(&buf).expect("well-formed packet");
                let access = topo.base_station(bs).access_switch;
                agents[bs.index()]
                    .handle_new_flow(&view, &mut ctl, net.switch_mut(access), ev.time)
                    .expect("reference flow");
                let ops = ctl.drain_ops();
                net.apply_all(&ops).expect("flow ops");
            }
            ShardEventKind::Handoff { from, to } => {
                let rec = *ctl.state().ue(ev.imsi).expect("handoff for attached UE");
                assert_eq!(rec.bs, from, "trace hands off from the current station");
                let old_access = topo.base_station(from).access_switch;
                let flows: Vec<FlowRecord> = {
                    let sw = net.switch(old_access);
                    agents[from.index()]
                        .flows_of(ev.imsi)
                        .expect("flows of attached UE")
                        .iter()
                        .filter_map(|f| {
                            let up = sw.microflow.peek(&f.uplink)?;
                            let down = sw.microflow.peek(&f.downlink)?;
                            Some(FlowRecord {
                                uplink: f.uplink,
                                downlink: f.downlink,
                                downlink_original: f.downlink_original,
                                up_action: up.action,
                                down_action: down.action,
                            })
                        })
                        .collect()
                };
                let new_id = agents[to.index()].reserve_ue_id().expect("target UE id");
                let plan = ctl
                    .handoff(ev.imsi, to, new_id, &flows, ev.time)
                    .expect("reference handoff");
                net.apply_all(&plan.ops).expect("handoff ops");
                let ops = ctl.drain_ops();
                net.apply_all(&ops).expect("handoff pending ops");
                for t in &plan.old_microflow_removals {
                    net.switch_mut(old_access).microflow.remove(t);
                }
                let new_access = topo.base_station(to).access_switch;
                let deadline = ev.time + SimDuration::from_secs(300);
                for (tuple, action) in &plan.new_microflow_installs {
                    net.switch_mut(new_access)
                        .microflow
                        .install(*tuple, *action, deadline)
                        .expect("handoff microflow copy");
                }
                agents[from.index()].evict(ev.imsi).expect("evict");
                agents[to.index()]
                    .adopt(plan.new, plan.classifier.clone())
                    .expect("adopt");
                agents[to.index()]
                    .adopt_flows(ev.imsi, plan.carried_flows.clone())
                    .expect("adopt flows");
            }
            ShardEventKind::Detach { .. } => {
                let bs = ctl.state().ue(ev.imsi).expect("detach of attached UE").bs;
                agents[bs.index()]
                    .handle_detach(ev.imsi, &mut ctl)
                    .expect("reference detach");
                let ops = ctl.drain_ops();
                net.apply_all(&ops).expect("detach ops");
            }
        }
    }

    let mut flow_stats = (0, 0, 0, 0);
    for a in &agents {
        let s = a.stats();
        flow_stats.0 += s.flows;
        flow_stats.1 += s.cache_hits;
        flow_stats.2 += s.cache_misses;
        flow_stats.3 += s.denied;
    }
    let (microflow, ip_groups) = microflow_dump(topo, &net, cfg.permanent_pool);
    let dump = RunDump {
        fabric: fabric_dump(topo, &net),
        microflow,
        ip_groups,
        state: state_dump(&ctl),
        flow_stats,
    };
    (dump, ctl, net)
}

/// [`reference_run_full`] when only the dump is needed.
pub fn reference_run(topo: &Topology, n_subs: u64, events: &[ShardEvent]) -> RunDump {
    reference_run_full(topo, n_subs, events).0
}

/// Replays a sharded run's merged batch stream and per-event outcomes
/// onto a fresh data plane.
pub fn materialize_net(topo: &Topology, run: &ShardedRun<'_>) -> PhysicalNetwork {
    let mut net = PhysicalNetwork::new(topo);
    for stream in &run.shard_batches {
        let mut last = None;
        for sb in stream {
            assert!(
                last.is_none_or(|p| p < sb.seq),
                "per-shard streams are seq-ascending"
            );
            last = Some(sb.seq);
        }
    }
    for batch in run.merged_batches() {
        assert!(batch.barrier, "every emitted batch is barrier-delimited");
        for op in &batch.ops {
            assert_eq!(op.switch(), batch.switch, "batch is single-switch");
        }
        net.apply_all(&batch.ops).expect("sharded fabric ops");
    }
    for out in &run.outcomes {
        match out {
            EventOutcome::Flow(d) => {
                let deadline =
                    d.time + softcell::controller::sharded::ShardedController::microflow_idle();
                for (t, a) in &d.installs {
                    net.switch_mut(d.access)
                        .microflow
                        .install(*t, *a, deadline)
                        .expect("sharded microflow install");
                }
            }
            EventOutcome::HandedOff(h) => {
                for t in &h.removals {
                    net.switch_mut(h.old_access).microflow.remove(t);
                }
                let deadline = h.time + SimDuration::from_secs(300);
                for (t, a) in &h.installs {
                    net.switch_mut(h.new_access)
                        .microflow
                        .install(*t, *a, deadline)
                        .expect("sharded handoff copy");
                }
            }
            _ => {}
        }
    }
    net
}

/// Materializes and dumps a sharded run.
pub fn materialize(topo: &Topology, run: &ShardedRun<'_>) -> RunDump {
    let cfg = ControllerConfig::simulation();
    let net = materialize_net(topo, run);
    let (microflow, ip_groups) = microflow_dump(topo, &net, cfg.permanent_pool);
    RunDump {
        fabric: fabric_dump(topo, &net),
        microflow,
        ip_groups,
        state: state_dump(&run.engine),
        flow_stats: (
            run.stats.flows,
            run.stats.cache_hits,
            run.stats.cache_misses,
            run.stats.denied,
        ),
    }
}

/// Asserts the comparable parts of two dumps are identical. Address
/// *placement* is excluded by construction (canonicalized); address
/// *sharing* is checked separately via [`assert_sessions_refine`].
pub fn compare(reference: &RunDump, sharded: &RunDump, label: &str) {
    assert_eq!(
        reference.fabric, sharded.fabric,
        "{label}: fabric flow tables must be byte-identical (rule ids included)"
    );
    assert_eq!(
        reference.microflow, sharded.microflow,
        "{label}: canonicalized microflow tables must match"
    );
    assert_eq!(reference.state, sharded.state, "{label}: controller state");
    assert_eq!(
        reference.flow_stats, sharded.flow_stats,
        "{label}: flow / cache-hit / cache-miss / denied counters"
    );
}

/// The ports of each attachment session (one UE, attach→detach span),
/// straight from the trace. Within a session every flow uses the UE's
/// one permanent address, so each session's ports must land in a single
/// same-address group — in *both* implementations. The partitions
/// themselves may differ: the reference reuses freed addresses across
/// any UE (shared LIFO pool) while the sharded controller reuses within
/// a shard's range, so the groups are different coarsenings of the same
/// session partition.
pub fn session_port_groups(events: &[ShardEvent]) -> Vec<BTreeSet<u16>> {
    let mut session_of: HashMap<u64, u32> = HashMap::new();
    let mut groups: HashMap<(u64, u32), BTreeSet<u16>> = HashMap::new();
    for ev in events {
        match ev.kind {
            ShardEventKind::Attach { .. } => {
                *session_of.entry(ev.imsi.0).or_insert(0) += 1;
            }
            ShardEventKind::NewFlow { src_port, .. } => {
                let s = *session_of.get(&ev.imsi.0).unwrap_or(&0);
                groups.entry((ev.imsi.0, s)).or_default().insert(src_port);
            }
            _ => {}
        }
    }
    groups.into_values().collect()
}

/// Asserts that every attachment session's flows share exactly one
/// permanent address in the dump.
pub fn assert_sessions_refine(sessions: &[BTreeSet<u16>], dump: &RunDump, label: &str) {
    for session in sessions {
        let hits = dump
            .ip_groups
            .iter()
            .filter(|g| !g.is_disjoint(session))
            .count();
        assert_eq!(
            hits, 1,
            "{label}: a session's flows must share exactly one permanent address \
             (session ports {session:?})"
        );
        let group = dump
            .ip_groups
            .iter()
            .find(|g| !g.is_disjoint(session))
            .unwrap();
        assert!(
            session.is_subset(group),
            "{label}: session ports {session:?} split across addresses"
        );
    }
}
