//! Randomized fault-injection churn (PR 3 acceptance).
//!
//! Two drills with a fixed seed:
//!
//! * **Wire churn** — a local agent drives attach/flow/detach traffic at
//!   the controller through a [`FaultTransport`] that drops, duplicates,
//!   delays and mid-frame-cuts its frames. Timeouts are retried under
//!   the same xid (server-side dedup makes that safe); dead connections
//!   are re-established and the agent's state resynced. At the end every
//!   UE must be exactly where the agent believes it is, with its
//!   first-assigned permanent address.
//! * **Simulator churn** — random attach/handoff/detach over the full
//!   data plane must leave no residue once everything detaches and
//!   expires: no reserved locations, no tunnels, no leaked tags, no
//!   extra fabric rules.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use softcell::controller::agent::{ControllerApi, LocalAgent};
use softcell::controller::server::ControllerServer;
use softcell::controller::wire::ChannelController;
use softcell::ctlchan::{
    loopback_pair, FaultConfig, FaultStats, FaultTransport, Loopback, RetryPolicy, Transport,
};
use softcell::dataplane::Switch;
use softcell::packet::{build_flow_packet, FiveTuple, HeaderView, Protocol};
use softcell::policy::{ServicePolicy, SubscriberAttributes};
use softcell::sim::SimWorld;
use softcell::topology::small_topology;
use softcell::types::{
    AddressingScheme, BaseStationId, PortEmbedding, PortNo, SimDuration, SimTime, SwitchId, UeImsi,
};

const SEED: u64 = 0xC0FF_EE03;
const SERVER_ADDR: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

fn fault_profile(seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        drop: 0.12,
        duplicate: 0.10,
        delay: 0.10,
        disconnect_every: Some(23),
    }
}

fn retry_policy() -> RetryPolicy {
    RetryPolicy {
        attempt_timeout: Duration::from_millis(50),
        max_retries: 10,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(8),
    }
}

/// Accumulates one transport's fault counters into a running total.
fn harvest(total: &mut FaultStats, ctl: &mut ChannelController<FaultTransport<Loopback>>) {
    let s = ctl.channel().transport_mut().fault_stats();
    total.dropped += s.dropped;
    total.duplicated += s.duplicated;
    total.delayed += s.delayed;
    total.disconnects += s.disconnects;
}

/// Re-establishes the channel after a fault (fresh loopback pair, fresh
/// serve thread) and replays the agent's state. The hello handshake runs
/// under a transport deadline so a dropped hello fails fast instead of
/// hanging; failed attempts just try again with the next fault stream.
#[allow(clippy::too_many_arguments)]
fn reconnect_and_resync(
    server: &ControllerServer,
    serves: &mut Vec<std::thread::JoinHandle<softcell::types::Result<()>>>,
    ctl: &mut ChannelController<FaultTransport<Loopback>>,
    agent: &mut LocalAgent,
    stats: &mut FaultStats,
    reconnect_seq: &mut u64,
    now: SimTime,
    faulty: bool,
) {
    for _ in 0..100 {
        *reconnect_seq += 1;
        harvest(stats, ctl);
        let (agent_end, controller_end) = loopback_pair();
        serves.push(server.serve(controller_end));
        let cfg = if faulty {
            fault_profile(SEED ^ *reconnect_seq)
        } else {
            FaultConfig::default()
        };
        let mut transport = FaultTransport::new(agent_end, cfg);
        transport
            .set_deadline(Some(Duration::from_millis(100)))
            .unwrap();
        if ctl.reconnect(transport).is_err() {
            continue; // hello lost to a fault; next stream
        }
        ctl.channel().set_deadline(None).unwrap();
        match ctl.resync(agent, now) {
            Ok(_) => return,
            Err(_) => continue, // resync hit a fault; reconnect again
        }
    }
    panic!("channel could not be re-established in 100 attempts");
}

#[test]
fn wire_churn_converges_under_faults() {
    const UES: u64 = 6;
    const ROUNDS: u32 = 120;
    let bs = BaseStationId(0);

    let server = ControllerServer::start(
        ServicePolicy::example_carrier_a(1),
        (0..UES).map(|i| SubscriberAttributes::default_home(UeImsi(i))),
        2,
    )
    .unwrap();
    let mut serves = Vec::new();
    let (agent_end, controller_end) = loopback_pair();
    serves.push(server.serve(controller_end));

    let mut transport = FaultTransport::new(agent_end, fault_profile(SEED));
    transport
        .set_deadline(Some(Duration::from_millis(100)))
        .unwrap();
    let mut ctl = ChannelController::connect(transport, bs).expect("first hello survives seed");
    ctl.channel().set_deadline(None).unwrap();
    ctl.set_retry_policy(Some(retry_policy()));

    let mut agent = LocalAgent::new(
        bs,
        PortNo(2),
        AddressingScheme::default_scheme(),
        PortEmbedding::default_embedding(),
    );
    let mut switch = Switch::access(SwitchId(0));

    let mut rng = StdRng::seed_from_u64(SEED);
    let mut stats = FaultStats::default();
    let mut reconnect_seq = 0u64;
    // ground truth the wire must converge to: attachment + first
    // permanent address per UE
    let mut attached: HashMap<UeImsi, bool> = HashMap::new();
    let mut first_ip: HashMap<UeImsi, Ipv4Addr> = HashMap::new();
    let mut next_port = 40_000u16;

    for round in 0..ROUNDS {
        let now = SimTime(u64::from(round));
        let imsi = UeImsi(rng.gen_range(0..UES));
        let is_attached = *attached.get(&imsi).unwrap_or(&false);
        let action = rng.gen_range(0u32..10);
        // two attempts: first may die on a fault, triggering
        // reconnect + resync, after which the op must succeed
        for attempt in 0..2 {
            let result = if !is_attached && action < 6 {
                agent.handle_attach(imsi, &mut ctl, now).map(|rec| {
                    attached.insert(imsi, true);
                    let ip = *first_ip.entry(imsi).or_insert(rec.permanent_ip);
                    assert_eq!(rec.permanent_ip, ip, "permanent address is forever");
                })
            } else if is_attached && action < 6 {
                // a new flow: classifier lookup + (on cache miss) a
                // path request over the faulty wire
                next_port += 1;
                let tuple = FiveTuple {
                    src: first_ip[&imsi],
                    dst: SERVER_ADDR,
                    src_port: next_port,
                    dst_port: 443,
                    proto: Protocol::Tcp,
                };
                let view = HeaderView::parse(&build_flow_packet(tuple, 64, 0, &[])).unwrap();
                agent
                    .handle_new_flow(&view, &mut ctl, &mut switch, now)
                    .map(|_| ())
            } else if is_attached {
                agent.handle_detach(imsi, &mut ctl).map(|_| {
                    attached.insert(imsi, false);
                    // a later re-attach is a fresh registration and may
                    // receive a different permanent address
                    first_ip.remove(&imsi);
                })
            } else {
                Ok(()) // detach of a detached UE: nothing to do
            };
            match result {
                Ok(()) => break,
                Err(e) => {
                    assert!(
                        attempt == 0,
                        "round {round}: op failed twice even after resync: {e}"
                    );
                    reconnect_and_resync(
                        &server,
                        &mut serves,
                        &mut ctl,
                        &mut agent,
                        &mut stats,
                        &mut reconnect_seq,
                        now,
                        true,
                    );
                }
            }
        }
    }

    // convergence check over a clean channel: re-register everything,
    // then confirm the server's records match the agent's ground truth
    reconnect_and_resync(
        &server,
        &mut serves,
        &mut ctl,
        &mut agent,
        &mut stats,
        &mut reconnect_seq,
        SimTime(1_000),
        false,
    );
    harvest(&mut stats, &mut ctl);

    for (imsi, is_attached) in &attached {
        if *is_attached {
            // attach is an idempotent upsert: the reply proves the server
            // still has the UE, at the right station, with its first IP
            let ue = agent.ue(*imsi).expect("agent holds attached UE");
            let ue_id = ue.ue_id;
            let grant = ctl.attach_ue(*imsi, bs, ue_id, SimTime(1_001)).unwrap();
            assert_eq!(grant.record.permanent_ip, first_ip[imsi], "stable address");
            assert_eq!(grant.record.bs, bs);
        } else {
            assert!(agent.ue(*imsi).is_err(), "detached UE gone from agent");
            let err = ctl.detach_ue(*imsi).unwrap_err();
            assert!(
                matches!(err, softcell::types::Error::NotFound(_)),
                "detached UE unknown to the server: {err:?}"
            );
        }
    }

    // every fault class actually fired, and the server survived them all
    assert!(stats.dropped > 0, "no drops injected: {stats:?}");
    assert!(stats.duplicated > 0, "no duplicates injected: {stats:?}");
    assert!(stats.delayed > 0, "no delays injected: {stats:?}");
    assert!(stats.disconnects > 0, "no disconnects injected: {stats:?}");
    assert!(server.disconnects() > 0);
    assert!(server.connection_errors() > 0, "torn frames were recorded");
    assert_eq!(server.active_connections(), 1, "exactly the live channel");

    drop(ctl);
    for handle in serves {
        let _ = handle.join().unwrap();
    }
    server.shutdown();
}

#[test]
fn sim_churn_leaves_no_fabric_residue() {
    const UES: u64 = 6;
    const ROUNDS: u32 = 60;
    let topo = small_topology();
    let mut w = SimWorld::new(&topo, ServicePolicy::example_carrier_a(1));
    for i in 0..UES {
        w.provision(SubscriberAttributes::default_home(UeImsi(i)));
    }

    // warmup: install the churn clause's policy path at every station so
    // the baseline below contains all long-lived state
    for bs in 0..4u32 {
        w.attach(UeImsi(0), BaseStationId(bs)).unwrap();
        let c = w
            .start_connection(UeImsi(0), SERVER_ADDR, 443, Protocol::Tcp)
            .unwrap();
        w.round_trip(c).unwrap();
        w.detach(UeImsi(0)).unwrap();
    }
    w.advance(SimDuration::from_secs(1_000));
    let now = w.now();
    let ops = w.controller.expire_transitions(now);
    w.net.apply_all(&ops).unwrap();
    for sw in w.net.switches_mut() {
        sw.microflow.expire_idle(now);
    }
    let baseline_rules = w.net.total_rules();
    let baseline_tags = w.controller.installer().tags_in_use();
    assert_eq!(w.controller.state().reserved_count(), 0);

    // churn: random attach / handoff / detach with live round trips.
    // Time advances 1 s per round — transitions stay inside their 120 s
    // TTL, so anchored flows keep working throughout.
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut conns: HashMap<UeImsi, softcell::sim::world::ConnId> = HashMap::new();
    let mut handoffs = 0u32;
    for _ in 0..ROUNDS {
        w.advance(SimDuration::from_secs(1));
        let imsi = UeImsi(rng.gen_range(0..UES));
        let at = w.controller.state().ue(imsi).ok().map(|r| r.bs);
        match at {
            None => {
                let bs = BaseStationId(rng.gen_range(0..4u32));
                w.attach(imsi, bs).unwrap();
                let c = w
                    .start_connection(imsi, SERVER_ADDR, 443, Protocol::Tcp)
                    .unwrap();
                w.round_trip(c).unwrap();
                conns.insert(imsi, c);
            }
            Some(bs) if rng.gen_bool(0.6) => {
                let mut to = BaseStationId(rng.gen_range(0..4u32));
                if to == bs {
                    to = BaseStationId((to.0 + 1) % 4);
                }
                w.handoff(imsi, to).unwrap();
                handoffs += 1;
                w.round_trip(conns[&imsi]).unwrap();
            }
            Some(_) => {
                w.detach(imsi).unwrap();
                conns.remove(&imsi);
            }
        }
    }
    assert!(
        handoffs > 10,
        "churn actually moved UEs ({handoffs} handoffs)"
    );
    w.assert_policy_consistency().unwrap();

    // drain: detach everyone, let every transition and microflow expire
    for i in 0..UES {
        if w.controller.state().ue(UeImsi(i)).is_ok() {
            w.detach(UeImsi(i)).unwrap();
        }
    }
    w.advance(SimDuration::from_secs(10_000));
    let now = w.now();
    let ops = w.controller.expire_transitions(now);
    w.net.apply_all(&ops).unwrap();
    for sw in w.net.switches_mut() {
        sw.microflow.expire_idle(now);
    }

    // no residue: every location, tunnel, tag and fabric rule the churn
    // created is gone again
    assert_eq!(w.controller.state().attached_count(), 0);
    assert_eq!(w.controller.state().reserved_count(), 0, "locations leaked");
    assert_eq!(w.controller.mobility().transitions_active(), 0);
    assert_eq!(w.controller.mobility().tunnel_count(), 0, "tunnels leaked");
    assert_eq!(
        w.controller.installer().tags_in_use(),
        baseline_tags,
        "tunnel tags leaked"
    );
    assert_eq!(w.net.total_rules(), baseline_rules, "fabric rules leaked");
    let microflows: usize = (0..topo.switches().len())
        .map(|i| w.net.switch(SwitchId(i as u32)).microflow.len())
        .sum();
    assert_eq!(microflows, 0, "microflow entries leaked");
}
