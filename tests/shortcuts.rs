//! Mobility shortcuts (paper §5.1): long-lived flows get spliced from
//! the old policy path directly to the new base station, trading the
//! per-flow core state for less triangle-routing path stretch.

use softcell::packet::Protocol;
use softcell::policy::{ServicePolicy, SubscriberAttributes};
use softcell::sim::SimWorld;
use softcell::topology::CellularParams;
use softcell::types::{BaseStationId, SimDuration, UeImsi};
use std::net::Ipv4Addr;

const SERVER: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

#[test]
fn shortcut_cuts_the_triangle() {
    // k=2 topology; move the UE several ring positions away so the
    // triangle through the anchor is long enough to measure
    let topo = CellularParams::paper(2).build().unwrap();
    let mut w = SimWorld::new(&topo, ServicePolicy::example_carrier_a(1));
    w.provision(SubscriberAttributes::default_home(UeImsi(0)));
    w.attach(UeImsi(0), BaseStationId(1)).unwrap();
    let c = w
        .start_connection(UeImsi(0), SERVER, 554, Protocol::Tcp)
        .unwrap();
    w.round_trip(c).unwrap();

    // move far along the ring (bs1 → bs6)
    w.handoff(UeImsi(0), BaseStationId(6)).unwrap();

    // triangle-routed downlink: via the anchor at bs1
    w.round_trip(c).unwrap();
    let hops_triangle = w.net.last_walk_hops;

    // splice the flow
    w.install_shortcut(c).unwrap();
    w.round_trip(c).unwrap();
    let hops_shortcut = w.net.last_walk_hops;

    assert!(
        hops_shortcut < hops_triangle,
        "shortcut must shorten the downlink: {hops_shortcut} vs {hops_triangle}"
    );
    // policy consistency holds either way: the splice leaves the
    // middlebox prefix of the old path intact
    w.assert_policy_consistency().unwrap();
}

#[test]
fn shortcut_rules_expire_with_the_transition() {
    let topo = CellularParams::paper(2).build().unwrap();
    let mut w = SimWorld::new(&topo, ServicePolicy::example_carrier_a(1));
    w.provision(SubscriberAttributes::default_home(UeImsi(0)));
    w.attach(UeImsi(0), BaseStationId(1)).unwrap();
    let c = w
        .start_connection(UeImsi(0), SERVER, 443, Protocol::Tcp)
        .unwrap();
    w.round_trip(c).unwrap();
    w.handoff(UeImsi(0), BaseStationId(5)).unwrap();
    w.install_shortcut(c).unwrap();
    w.round_trip(c).unwrap();

    let rules_with_shortcut = w.net.total_rules();
    w.advance(SimDuration::from_secs(600));
    let now = w.now();
    let teardown = w.controller.expire_transitions(now);
    assert!(!teardown.is_empty());
    w.net.apply_all(&teardown).unwrap();
    assert!(
        w.net.total_rules() < rules_with_shortcut,
        "per-flow shortcut state is transient"
    );
}
