//! Cross-crate integration tests: the whole SoftCell stack working
//! together — controller, agents, switches, packets, policies, mobility.

use softcell::packet::Protocol;
use softcell::policy::{BillingPlan, Provider, ServicePolicy, SubscriberAttributes};
use softcell::sim::{SimWorld, WalkOutcome};
use softcell::topology::{small_topology, CellularParams};
use softcell::types::{BaseStationId, MiddleboxKind, SimDuration, UeImsi};
use std::collections::HashMap;
use std::net::Ipv4Addr;

const SERVER: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

fn provision_home(world: &mut SimWorld<'_>, n: u64) {
    for i in 0..n {
        world.provision(SubscriberAttributes::default_home(UeImsi(i)));
    }
}

#[test]
fn every_clause_of_table1_steers_correctly() {
    let topo = small_topology();
    let mut w = SimWorld::new(&topo, ServicePolicy::example_carrier_a(1));

    let mut silver = SubscriberAttributes::default_home(UeImsi(0));
    silver.plan = BillingPlan::Silver;
    let mut partner = SubscriberAttributes::default_home(UeImsi(1));
    partner.provider = Provider::Partner(1);
    let mut foreign = SubscriberAttributes::default_home(UeImsi(2));
    foreign.provider = Provider::Foreign(7);
    for a in [silver, partner, foreign] {
        w.provision(a);
    }
    for i in 0..3 {
        w.attach(UeImsi(i), BaseStationId(i as u32)).unwrap();
    }

    let kind_of = |w: &SimWorld<'_>, key, up| -> Vec<MiddleboxKind> {
        w.net
            .middleboxes
            .chain_of(&key, up)
            .iter()
            .map(|m| topo.middlebox(*m).kind)
            .collect()
    };

    // silver video → firewall then transcoder, mirrored on the way back
    let c = w
        .start_connection(UeImsi(0), SERVER, 554, Protocol::Tcp)
        .unwrap();
    w.round_trip(c).unwrap();
    let key = w.connection(c).key.unwrap();
    assert_eq!(
        kind_of(&w, key, true),
        vec![MiddleboxKind::Firewall, MiddleboxKind::Transcoder]
    );
    assert_eq!(
        kind_of(&w, key, false),
        vec![MiddleboxKind::Transcoder, MiddleboxKind::Firewall]
    );

    // partner roamer video → firewall only (priority 6 clause wins)
    let c = w
        .start_connection(UeImsi(1), SERVER, 554, Protocol::Tcp)
        .unwrap();
    w.round_trip(c).unwrap();
    let key = w.connection(c).key.unwrap();
    assert_eq!(kind_of(&w, key, true), vec![MiddleboxKind::Firewall]);

    // foreign device → denied before the fabric
    let c = w
        .start_connection(UeImsi(2), SERVER, 80, Protocol::Tcp)
        .unwrap();
    let out = w.send_uplink(c, b"x").unwrap();
    assert!(matches!(out, WalkOutcome::Dropped { .. }));

    w.assert_policy_consistency().unwrap();
}

#[test]
fn many_ues_many_flows_shared_tags() {
    // all stations, all UEs, same clauses → the fabric state stays tiny
    let topo = small_topology();
    let mut w = SimWorld::new(&topo, ServicePolicy::example_carrier_a(1));
    provision_home(&mut w, 16);
    for i in 0..16u64 {
        w.attach(UeImsi(i), BaseStationId((i % 4) as u32)).unwrap();
    }
    for i in 0..16u64 {
        for port in [80u16, 443, 554] {
            let c = w
                .start_connection(UeImsi(i), SERVER, port, Protocol::Tcp)
                .unwrap();
            w.round_trip(c).unwrap();
        }
    }
    w.assert_policy_consistency().unwrap();
    // 48 connections; tags bounded by (clauses × stations), not flows
    assert!(w.controller.installer().tags_in_use() <= 8 * 4);
    // gateway holds no per-flow state
    assert_eq!(
        w.net.switch(topo.default_gateway().switch).microflow.len(),
        0
    );
}

#[test]
fn randomized_mobility_churn_stays_consistent() {
    // A miniature of the workload replay on the k=2 three-layer
    // topology: attaches, flows, chained handoffs, detaches, with
    // policy-consistency asserted throughout. (This scenario found five
    // real bugs during development — keep it.)
    use softcell::workload::{EventKind, EventStream, EventStreamConfig};

    let topo = CellularParams::paper(2).build().unwrap();
    let nbs = topo.base_stations().len() as u32;
    for seed in 0..8u64 {
        let cfg = EventStreamConfig::busy(nbs, 16, seed);
        let trace = EventStream::generate(&cfg);
        let mut w = SimWorld::new(&topo, ServicePolicy::example_carrier_a(1));
        provision_home(&mut w, 16);
        let mut conns: HashMap<UeImsi, Vec<softcell::sim::world::ConnId>> = HashMap::new();
        for ev in trace.events() {
            match ev.kind {
                EventKind::Attach { bs } => w.attach(ev.imsi, bs).unwrap(),
                EventKind::NewFlow { dst_port, udp, .. } => {
                    let proto = if udp { Protocol::Udp } else { Protocol::Tcp };
                    let c = w
                        .start_connection(ev.imsi, SERVER, dst_port, proto)
                        .unwrap();
                    if w.round_trip(c).is_ok() {
                        conns.entry(ev.imsi).or_default().push(c);
                    }
                }
                EventKind::Handoff { to, .. } => {
                    w.handoff(ev.imsi, to).unwrap();
                    if let Some(list) = conns.get(&ev.imsi) {
                        for &c in list.iter().rev().take(2) {
                            w.round_trip(c)
                                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                        }
                    }
                }
                EventKind::Detach { .. } => {
                    w.detach(ev.imsi).unwrap();
                    conns.remove(&ev.imsi);
                }
            }
        }
        w.assert_policy_consistency()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn transitions_expire_and_rules_come_down() {
    let topo = small_topology();
    let mut w = SimWorld::new(&topo, ServicePolicy::example_carrier_a(1));
    provision_home(&mut w, 2);
    w.attach(UeImsi(0), BaseStationId(0)).unwrap();
    let c = w
        .start_connection(UeImsi(0), SERVER, 443, Protocol::Tcp)
        .unwrap();
    w.round_trip(c).unwrap();
    let rules_before = w.net.total_rules();

    w.handoff(UeImsi(0), BaseStationId(3)).unwrap();
    w.round_trip(c).unwrap();
    assert!(w.net.total_rules() > rules_before, "mobility rules present");

    // after the soft timeout, per-UE mobility rules disappear
    w.advance(SimDuration::from_secs(600));
    let now = w.now();
    let teardown = w.controller.expire_transitions(now);
    w.net.apply_all(&teardown).unwrap();
    assert_eq!(w.controller.mobility().transitions_active(), 0);
    // the pair tunnel (shared, long-lived) stays; per-UE rules are gone
    assert!(w.net.total_rules() < rules_before + 10);
}

#[test]
fn reserved_location_is_not_reassigned_during_transition() {
    let topo = small_topology();
    let mut w = SimWorld::new(&topo, ServicePolicy::example_carrier_a(1));
    provision_home(&mut w, 3);
    w.attach(UeImsi(0), BaseStationId(0)).unwrap();
    let c = w
        .start_connection(UeImsi(0), SERVER, 443, Protocol::Tcp)
        .unwrap();
    w.round_trip(c).unwrap();
    let old_loc = w.connection(c).key.unwrap().loc;

    w.handoff(UeImsi(0), BaseStationId(1)).unwrap();
    assert_eq!(w.controller.state().reserved_count(), 1);

    // a newcomer at bs0 must NOT receive the reserved LocIP
    w.attach(UeImsi(1), BaseStationId(0)).unwrap();
    let c2 = w
        .start_connection(UeImsi(1), SERVER, 443, Protocol::Tcp)
        .unwrap();
    w.round_trip(c2).unwrap();
    let new_loc = w.connection(c2).key.unwrap().loc;
    assert_ne!(new_loc, old_loc, "§5.1: old address not reassigned");

    // and the old flow still works for the mover
    w.round_trip(c).unwrap();
    w.assert_policy_consistency().unwrap();
}

#[test]
fn cellular_topology_end_to_end() {
    // the synthetic three-layer topology (k=2, 20 stations) carries
    // traffic end to end, including ring members far from the uplink
    let topo = CellularParams::paper(2).build().unwrap();
    let mut w = SimWorld::new(&topo, ServicePolicy::example_carrier_a(1));
    provision_home(&mut w, 20);
    for i in 0..20u64 {
        w.attach(UeImsi(i), BaseStationId(i as u32)).unwrap();
        let c = w
            .start_connection(UeImsi(i), SERVER, 443, Protocol::Tcp)
            .unwrap();
        w.round_trip(c).unwrap();
    }
    w.assert_policy_consistency().unwrap();
}

#[test]
fn qos_clause_marks_dscp_at_the_edge() {
    // Table 1 clause 5: fleet-tracking traffic carries low-latency QoS;
    // the marking is applied by the access-edge microflow rewrite and
    // rides the packet through the fabric (checked at gateway exit).
    use softcell::policy::DeviceType;
    let topo = small_topology();
    let mut w = SimWorld::new(&topo, ServicePolicy::example_carrier_a(1));
    let mut tracker = SubscriberAttributes::default_home(UeImsi(0));
    tracker.device = DeviceType::M2mFleetTracker;
    w.provision(tracker);
    w.provision(SubscriberAttributes::default_home(UeImsi(1)));
    w.attach(UeImsi(0), BaseStationId(0)).unwrap();
    w.attach(UeImsi(1), BaseStationId(0)).unwrap();

    // fleet tracker mqtt → clause 2 (low latency, dscp 46)
    let c = w
        .start_connection(UeImsi(0), SERVER, 8883, Protocol::Tcp)
        .unwrap();
    w.round_trip(c).unwrap();
    assert_eq!(
        w.last_uplink_dscp(),
        Some(46),
        "fleet-tracking traffic is marked EF"
    );

    // ordinary web traffic stays best-effort
    let c2 = w
        .start_connection(UeImsi(1), SERVER, 443, Protocol::Tcp)
        .unwrap();
    w.round_trip(c2).unwrap();
    assert_eq!(w.last_uplink_dscp(), Some(0));
}
