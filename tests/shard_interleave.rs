//! Cross-shard handoff under seeded interleavings.
//!
//! A handoff between stations owned by two different shards is the only
//! operation that spans shard boundaries: the moving UE's owner shard
//! must rendezvous with the target station's owner (reserve a UE id),
//! run the engine plan, then rendezvous with both the old station's
//! owner (evict) and the target again (adopt). The scheduler seed
//! permutes the evict relative to the engine call and injects yields
//! around every rendezvous, so sweeping seeds drives the distinct
//! interleavings of the two-shard exchange.
//!
//! Every interleaving must converge to the single-threaded result, and
//! — reusing the fault-churn residue discipline — after detaching every
//! UE and expiring transitions and idle microflows, no location
//! reservation, tunnel or microflow entry may survive under any seed.

mod common;

use common::{
    assert_sessions_refine, compare, fabric_dump, materialize, materialize_net, policy,
    reference_run_full, session_port_groups, subscribers, SERVER,
};
use softcell::controller::sharded::{ShardEvent, ShardEventKind, ShardedController};
use softcell::controller::ControllerConfig;
use softcell::topology::small_topology;
use softcell::types::{shard_of_station, BaseStationId, SimDuration, SimTime, UeImsi};

const SHARDS: usize = 4;
const UES: u64 = 8;

/// Two stations guaranteed to hash to different shards.
fn cross_shard_pair(shards: usize) -> (BaseStationId, BaseStationId) {
    for a in 0..4u32 {
        for b in 0..4u32 {
            let (a, b) = (BaseStationId(a), BaseStationId(b));
            if a != b && shard_of_station(a, shards) != shard_of_station(b, shards) {
                return (a, b);
            }
        }
    }
    panic!("no cross-shard station pair among 4 stations at {shards} shards");
}

/// Builds a handoff-heavy trace: every UE attaches at one end of the
/// cross-shard pair, opens flows, bounces to the other end and back,
/// then detaches. Half the UEs start at each end so rendezvous traffic
/// flows in both directions at once.
fn build_trace(shards: usize) -> Vec<ShardEvent> {
    let (a, b) = cross_shard_pair(shards);
    let mut events = Vec::new();
    let mut t = 0u64;
    let mut port = 40_000u16;
    let mut push = |time: u64, imsi: u64, kind: ShardEventKind| {
        events.push(ShardEvent {
            time: SimTime(time),
            imsi: UeImsi(imsi),
            kind,
        });
    };
    for imsi in 0..UES {
        let (home, away) = if imsi % 2 == 0 { (a, b) } else { (b, a) };
        t += 1;
        push(t, imsi, ShardEventKind::Attach { bs: home });
        for _ in 0..2 {
            t += 1;
            push(
                t,
                imsi,
                ShardEventKind::NewFlow {
                    bs: home,
                    dst: SERVER,
                    src_port: port,
                    dst_port: 443,
                    udp: false,
                },
            );
            port += 1;
        }
        t += 1;
        push(
            t,
            imsi,
            ShardEventKind::Handoff {
                from: home,
                to: away,
            },
        );
        t += 1;
        push(
            t,
            imsi,
            ShardEventKind::NewFlow {
                bs: away,
                dst: SERVER,
                src_port: port,
                dst_port: 80,
                udp: false,
            },
        );
        port += 1;
        t += 1;
        push(
            t,
            imsi,
            ShardEventKind::Handoff {
                from: away,
                to: home,
            },
        );
    }
    // interleave the detaches after all the churn
    for imsi in 0..UES {
        t += 1;
        let home = if imsi % 2 == 0 { a } else { b };
        push(t, imsi, ShardEventKind::Detach { bs: home });
    }
    events
}

fn interleave_sweep(shards: usize, sched_seeds: std::ops::Range<u64>) {
    let topo = small_topology();
    let events = build_trace(shards);
    let sessions = session_port_groups(&events);

    let (reference, mut ref_ctl, mut ref_net) = reference_run_full(&topo, UES, &events);
    assert_sessions_refine(&sessions, &reference, "reference");

    // reference residue: everything the churn created expires cleanly
    let late = events.last().unwrap().time + SimDuration::from_secs(10_000);
    let ops = ref_ctl.expire_transitions(late);
    ref_net.apply_all(&ops).expect("reference expiry ops");
    for sw in ref_net.switches_mut() {
        sw.microflow.expire_idle(late);
    }
    assert_eq!(ref_ctl.state().attached_count(), 0);
    assert_eq!(
        ref_ctl.state().reserved_count(),
        0,
        "reference leaked locations"
    );
    let ref_expired_fabric = fabric_dump(&topo, &ref_net);

    for sched_seed in sched_seeds {
        let sc = ShardedController::new(&topo, ControllerConfig::simulation(), shards)
            .with_sched_seed(sched_seed);
        let mut run = sc.run(policy(), &subscribers(UES), &events);
        assert_eq!(
            run.stats.skipped, 0,
            "seed {sched_seed}: clean trace must not skip"
        );
        assert_eq!(
            run.stats.handoffs,
            2 * UES,
            "seed {sched_seed}: every handoff completed"
        );
        assert!(
            run.stats.cross_shard_handoffs == 2 * UES,
            "seed {sched_seed}: the station pair spans shards"
        );
        assert!(
            run.stats.rendezvous_messages > 0,
            "seed {sched_seed}: rendezvous actually crossed threads"
        );

        let dump = materialize(&topo, &run);
        compare(&reference, &dump, &format!("seed {sched_seed}"));
        assert_sessions_refine(&sessions, &dump, &format!("seed {sched_seed}"));

        // residue: the same expiry discipline as fault_churn — no leaked
        // reservations, transitions, tunnels or microflow entries, and
        // the expired fabric matches the reference byte-for-byte
        let mut net = materialize_net(&topo, &run);
        let ops = run.engine.expire_transitions(late);
        net.apply_all(&ops).expect("sharded expiry ops");
        for sw in net.switches_mut() {
            sw.microflow.expire_idle(late);
        }
        assert_eq!(run.engine.state().attached_count(), 0);
        assert_eq!(
            run.engine.state().reserved_count(),
            0,
            "seed {sched_seed}: leaked location reservations"
        );
        assert_eq!(
            run.engine.mobility().transitions_active(),
            0,
            "seed {sched_seed}: leaked transitions"
        );
        assert_eq!(
            run.engine.mobility().tunnel_count(),
            0,
            "seed {sched_seed}: leaked tunnels"
        );
        let micro: usize = topo
            .switches()
            .iter()
            .map(|s| net.switch(s.id).microflow.len())
            .sum();
        assert_eq!(micro, 0, "seed {sched_seed}: leaked microflow entries");
        assert_eq!(
            fabric_dump(&topo, &net),
            ref_expired_fabric,
            "seed {sched_seed}: expired fabric diverged"
        );
    }
}

#[test]
fn cross_shard_handoff_converges_under_every_interleaving() {
    interleave_sweep(SHARDS, 0..16);
}

#[test]
fn sixteen_shard_interleavings_converge() {
    // the widest configuration the throughput gate exercises: more
    // shards than stations, so most shards only ever act as ticketed
    // engine clients while the station owners rendezvous
    interleave_sweep(16, 0..6);
}

#[test]
fn same_shard_handoff_needs_no_rendezvous_messages() {
    // a single UE bouncing between two stations owned by the same shard
    // (shards=1 collapses all station owners) must complete with zero
    // cross-thread rendezvous messages — the mirror is updated inline
    let topo = small_topology();
    let events = build_trace(SHARDS);
    let sc = ShardedController::new(&topo, ControllerConfig::simulation(), 1).with_sched_seed(3);
    let run = sc.run(policy(), &subscribers(UES), &events);
    assert_eq!(run.stats.skipped, 0);
    assert_eq!(run.stats.handoffs, 2 * UES);
    assert_eq!(run.stats.cross_shard_handoffs, 0);
    assert_eq!(run.stats.rendezvous_messages, 0);
}
