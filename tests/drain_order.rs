//! Regression lock on the `drain_ops` ordering invariant.
//!
//! `CentralController::drain_ops` returns rule operations in exact
//! emission order, and operations touching the *same switch* are never
//! reordered relative to each other. That per-switch FIFO property is
//! what makes the barrier at the end of each `flow_mod_batch` group
//! sufficient for consistency: a switch that applies each batch's ops
//! in order and fences at the barrier reconstructs the controller's
//! intended rule sequence, no matter how batches for *different*
//! switches interleave in flight.
//!
//! This test drives real policy-path installations (multi-switch op
//! streams with rule adds and priority interactions), then checks that
//! `batch_by_switch`:
//!  * preserves the per-switch subsequence exactly,
//!  * orders groups by first appearance,
//!  * marks every group as a barrier point,
//!
//! and that replaying the batches yields a byte-identical fabric to
//! applying the raw stream directly.

mod common;

use common::{fabric_dump, policy, subscribers};
use softcell::controller::ops::batch_by_switch;
use softcell::controller::{CentralController, ControllerConfig};
use softcell::policy::clause::ClauseId;
use softcell::sim::PhysicalNetwork;
use softcell::topology::small_topology;
use softcell::types::{BaseStationId, SimTime, SwitchId, UeId, UeImsi};

#[test]
fn drained_ops_preserve_per_switch_order_and_batch_replay_is_identical() {
    let topo = small_topology();
    let cfg = ControllerConfig::simulation();
    let mut ctl = CentralController::new(&topo, cfg, policy());
    for attrs in subscribers(4) {
        ctl.put_subscriber(attrs);
    }

    // several path installations across stations and clauses WITHOUT
    // draining in between: the pending stream spans many switches
    for (i, bs) in (0..4u32).enumerate() {
        ctl.attach_ue(
            UeImsi(i as u64),
            BaseStationId(bs),
            UeId(0),
            SimTime::default(),
        )
        .expect("attach");
    }
    let mut demanded = Vec::new();
    for bs in 0..4u32 {
        for clause in 0..4u16 {
            if ctl
                .request_policy_path(BaseStationId(bs), ClauseId(clause))
                .is_ok()
            {
                demanded.push((bs, clause));
            }
        }
    }
    assert!(demanded.len() >= 4, "policy installed several paths");

    let ops = ctl.drain_ops();
    assert!(!ops.is_empty());
    let switches: std::collections::BTreeSet<SwitchId> = ops.iter().map(|o| o.switch()).collect();
    assert!(switches.len() >= 3, "ops span several switches");

    let batches = batch_by_switch(ops.clone());

    // 1. every batch is single-switch and barrier-delimited
    for b in &batches {
        assert!(b.barrier, "flow-mod batches always end with a barrier");
        assert!(!b.ops.is_empty());
        for op in &b.ops {
            assert_eq!(op.switch(), b.switch, "batch mixes switches");
        }
    }

    // 2. batches appear in first-appearance order of their switch
    let mut seen = Vec::new();
    for op in &ops {
        if !seen.contains(&op.switch()) {
            seen.push(op.switch());
        }
    }
    assert_eq!(
        batches.iter().map(|b| b.switch).collect::<Vec<_>>(),
        seen,
        "batch order is the switches' first-appearance order"
    );

    // 3. the per-switch subsequence is preserved exactly
    for b in &batches {
        let direct: Vec<_> = ops.iter().filter(|o| o.switch() == b.switch).collect();
        let batched: Vec<_> = b.ops.iter().collect();
        assert_eq!(
            format!("{direct:?}"),
            format!("{batched:?}"),
            "per-switch op order changed for {:?}",
            b.switch
        );
    }

    // 4. replaying the batches produces a byte-identical fabric
    let mut direct_net = PhysicalNetwork::new(&topo);
    direct_net.apply_all(&ops).expect("direct apply");
    let mut batched_net = PhysicalNetwork::new(&topo);
    for b in &batches {
        batched_net.apply_all(&b.ops).expect("batched apply");
    }
    assert_eq!(
        fabric_dump(&topo, &direct_net),
        fabric_dump(&topo, &batched_net),
        "batch replay must equal the raw op stream"
    );
}
