//! Internet-initiated traffic (paper §7): a UE exposed on a public IP.
//!
//! "When a gateway switch receives packets destined to these public IP
//! addresses, the gateway will act like an access switch ... these
//! packet classifiers are not microflow rules and do not require
//! communication with the central controller for every microflow. They
//! are coarse-grained ... and can be installed once."

use softcell::packet::{HeaderView, Protocol};
use softcell::policy::{ServicePolicy, SubscriberAttributes};
use softcell::sim::{SimWorld, WalkOutcome};
use softcell::topology::small_topology;
use softcell::types::{BaseStationId, MiddleboxKind, UeImsi};
use std::net::Ipv4Addr;

const PUBLIC: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 10);
const REMOTE: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 50);

fn world(topo: &softcell::topology::Topology) -> SimWorld<'_> {
    let mut w = SimWorld::new(topo, ServicePolicy::example_carrier_a(1));
    for i in 0..2 {
        w.provision(SubscriberAttributes::default_home(UeImsi(i)));
    }
    w
}

#[test]
fn inbound_request_reaches_the_service() {
    let topo = small_topology();
    let mut w = world(&topo);
    w.attach(UeImsi(0), BaseStationId(1)).unwrap();
    w.expose_service(UeImsi(0), PUBLIC, 443, Protocol::Tcp)
        .unwrap();

    let (out, buf) = w
        .inbound_request(REMOTE, 55_555, PUBLIC, 443, Protocol::Tcp, b"GET /")
        .unwrap();
    assert!(matches!(out, WalkOutcome::DeliveredToRadio { .. }));

    // delivered to the UE's *permanent* endpoint on the service port
    let view = HeaderView::parse(&buf).unwrap();
    let permanent = w.controller.state().ue(UeImsi(0)).unwrap().permanent_ip;
    assert_eq!(view.dst(), permanent);
    assert_eq!(view.dst_port(), 443);
    // the source (the Internet client) is untouched
    assert_eq!(view.src(), REMOTE);
    assert_eq!(view.src_port(), 55_555);

    // the request traversed the clause's firewall on the way in
    let fw = topo.instances_of(MiddleboxKind::Firewall)[0];
    assert!(w.net.middleboxes.connections_seen(fw) > 0);
}

#[test]
fn second_request_needs_no_new_state() {
    // "installed once": more inbound connections, zero new rules
    let topo = small_topology();
    let mut w = world(&topo);
    w.attach(UeImsi(0), BaseStationId(1)).unwrap();
    w.expose_service(UeImsi(0), PUBLIC, 443, Protocol::Tcp)
        .unwrap();
    w.inbound_request(REMOTE, 50_001, PUBLIC, 443, Protocol::Tcp, b"a")
        .unwrap();
    let rules = w.net.total_rules();
    let gw_microflows = w.net.switch(topo.default_gateway().switch).microflow.len();

    for port in 50_002..50_010 {
        let (out, _) = w
            .inbound_request(REMOTE, port, PUBLIC, 443, Protocol::Tcp, b"b")
            .unwrap();
        assert!(matches!(out, WalkOutcome::DeliveredToRadio { .. }));
    }
    assert_eq!(
        w.net.total_rules(),
        rules,
        "coarse classifiers, installed once"
    );
    assert_eq!(
        w.net.switch(topo.default_gateway().switch).microflow.len(),
        gw_microflows,
        "no per-flow state appears at the gateway"
    );
}

#[test]
fn service_reply_exits_with_the_public_endpoint() {
    let topo = small_topology();
    let mut w = world(&topo);
    w.attach(UeImsi(0), BaseStationId(1)).unwrap();
    w.expose_service(UeImsi(0), PUBLIC, 443, Protocol::Tcp)
        .unwrap();
    w.inbound_request(REMOTE, 55_555, PUBLIC, 443, Protocol::Tcp, b"req")
        .unwrap();

    // the service answers from its well-known port; the reply flows
    // through the normal uplink machinery and the gateway restores the
    // public endpoint on the way out
    let c = w
        .start_connection_from_port(UeImsi(0), REMOTE, 55_555, Protocol::Tcp, 443)
        .unwrap();
    let out = w.send_uplink(c, b"resp").unwrap();
    assert!(matches!(out, WalkOutcome::ExitedGateway { .. }));
    let exit = w.connection(c).internet_tuple.unwrap();
    assert_eq!(exit.src, PUBLIC, "the Internet sees the public address");
    assert_eq!(exit.src_port, 443, "...and the service port");
    assert_eq!(exit.dst, REMOTE);
}

#[test]
fn unexposed_public_addresses_drop_at_the_gateway() {
    let topo = small_topology();
    let mut w = world(&topo);
    w.attach(UeImsi(0), BaseStationId(1)).unwrap();
    // no expose_service call
    let (out, _) = w
        .inbound_request(REMOTE, 55_555, PUBLIC, 443, Protocol::Tcp, b"probe")
        .unwrap();
    assert!(matches!(out, WalkOutcome::Dropped { .. }));
}
