//! Consistent updates over a live network (paper §3.2 / Reitblatt).
//!
//! The invariant: during a two-phase rule transition, every packet is
//! handled entirely by the old configuration or entirely by the new —
//! never a mixture — and the cut-over is a single atomic version flip
//! at the ingress edge.

use softcell::controller::update::TwoPhaseUpdate;
use softcell::controller::RuleOp;
use softcell::dataplane::matcher::Direction;
use softcell::dataplane::{Action, Match};
use softcell::packet::{build_flow_packet, FiveTuple, Protocol};
use softcell::sim::{PhysicalNetwork, WalkOutcome};
use softcell::topology::small_topology;
use softcell::types::{Ipv4Prefix, SimTime, SwitchId};
use std::net::Ipv4Addr;

/// Installs version-0 downlink routes for bs0's prefix along one spine
/// (gw → c1 → agg1 → acc5) and a delivery microflow at the access
/// switch.
fn install_v0(topo: &softcell::topology::Topology, net: &mut PhysicalNetwork) {
    let pref: Ipv4Prefix = "10.0.0.0/23".parse().unwrap();
    for (a, b) in [(0u32, 1u32), (1, 3), (3, 5)] {
        let m = Match::prefix(Direction::Downlink, pref).with_version(0);
        let out = topo.port_towards(SwitchId(a), SwitchId(b)).unwrap();
        net.switch_mut(SwitchId(a))
            .table
            .install(
                softcell::dataplane::matcher::conventional_priority(&m),
                m,
                Action::Forward(out),
            )
            .unwrap();
    }
    let tuple = downlink_tuple();
    let radio = topo
        .base_station(softcell::types::BaseStationId(0))
        .radio_port;
    net.switch_mut(SwitchId(5))
        .microflow
        .install(
            tuple,
            softcell::dataplane::MicroflowAction::RewriteDst {
                addr: Ipv4Addr::new(100, 64, 0, 1),
                port: 50_000,
                out: radio,
            },
            SimTime::from_secs(3600),
        )
        .unwrap();
}

fn downlink_tuple() -> FiveTuple {
    FiveTuple {
        src: Ipv4Addr::new(203, 0, 113, 9),
        dst: Ipv4Addr::new(10, 0, 0, 7),
        src_port: 443,
        dst_port: 4096,
        proto: Protocol::Tcp,
    }
}

/// The new configuration: reroute via the other core switch
/// (gw → c2 → agg1 → acc5).
fn new_route_ops(topo: &softcell::topology::Topology) -> Vec<RuleOp> {
    let pref: Ipv4Prefix = "10.0.0.0/23".parse().unwrap();
    let mut ops = Vec::new();
    for (a, b) in [(0u32, 2u32), (2, 3), (3, 5)] {
        let m = Match::prefix(Direction::Downlink, pref);
        let out = topo.port_towards(SwitchId(a), SwitchId(b)).unwrap();
        ops.push(RuleOp::Install {
            switch: SwitchId(a),
            priority: softcell::dataplane::matcher::conventional_priority(&m),
            matcher: m,
            action: Action::Forward(out),
        });
        // old rules die at cleanup
        ops.push(RuleOp::Remove {
            switch: SwitchId(a),
            matcher: m,
        });
    }
    ops
}

fn walk_with_version(
    topo: &softcell::topology::Topology,
    net: &mut PhysicalNetwork,
    version: u32,
) -> (WalkOutcome, Vec<u8>) {
    let gw = topo.default_gateway();
    let mut buf = build_flow_packet(downlink_tuple(), 64, 0, b"pkt");
    let out = net
        .walk(topo, &mut buf, gw.switch, gw.port, version, SimTime::ZERO)
        .unwrap();
    (out, buf)
}

#[test]
fn packets_never_see_a_mixed_configuration() {
    let topo = small_topology();
    let mut net = PhysicalNetwork::new(&topo);
    install_v0(&topo, &mut net);

    // baseline: version-0 traffic is delivered via c1
    let (out, _) = walk_with_version(&topo, &mut net, 0);
    assert_eq!(
        out,
        WalkOutcome::DeliveredToRadio {
            switch: SwitchId(5)
        }
    );

    let mut upd = TwoPhaseUpdate::new(0);
    upd.prepare(net.switches_mut(), new_route_ops(&topo))
        .unwrap();

    // prepared but not committed: old packets still fully delivered via
    // the old route; rule counts show both configurations installed
    let (out, _) = walk_with_version(&topo, &mut net, 0);
    assert_eq!(
        out,
        WalkOutcome::DeliveredToRadio {
            switch: SwitchId(5)
        }
    );
    assert!(
        !net.switch(SwitchId(2)).table.is_empty(),
        "staged rules exist"
    );

    // commit: flip the ingress stamp (the gateway stamps downlink
    // traffic entering from the Internet)
    upd.commit(net.switches_mut(), &[SwitchId(0)]).unwrap();
    let stamp = net.switch(SwitchId(0)).ingress_version;
    assert_eq!(stamp, 1);

    // new packets take the new route — and in-flight old-version
    // packets still take the old one, end to end
    let (out_new, _) = walk_with_version(&topo, &mut net, stamp);
    assert_eq!(
        out_new,
        WalkOutcome::DeliveredToRadio {
            switch: SwitchId(5)
        }
    );
    let (out_old, _) = walk_with_version(&topo, &mut net, 0);
    assert_eq!(
        out_old,
        WalkOutcome::DeliveredToRadio {
            switch: SwitchId(5)
        }
    );

    // after cleanup, version-0 rules are gone. The new rules are
    // version-guarded, so a (by now impossible — cleanup runs after the
    // maximum in-flight time) stale packet drops outright rather than
    // half-matching a mixed configuration: drop is the fail-safe side
    // of per-packet consistency.
    let removed = upd.cleanup(net.switches_mut()).unwrap();
    assert!(removed >= 1);
    let (out_stale, _) = walk_with_version(&topo, &mut net, 0);
    assert_eq!(
        out_stale,
        WalkOutcome::Dropped {
            switch: SwitchId(0)
        }
    );
    // current-version traffic is unaffected by the cleanup
    let (out_cur, _) = walk_with_version(&topo, &mut net, stamp);
    assert_eq!(
        out_cur,
        WalkOutcome::DeliveredToRadio {
            switch: SwitchId(5)
        }
    );
}

#[test]
fn routes_actually_switch_spines() {
    // verify the cut-over changes the path, not just delivery
    let topo = small_topology();
    let mut net = PhysicalNetwork::new(&topo);
    install_v0(&topo, &mut net);

    let mut upd = TwoPhaseUpdate::new(0);
    upd.prepare(net.switches_mut(), new_route_ops(&topo))
        .unwrap();
    upd.commit(net.switches_mut(), &[SwitchId(0)]).unwrap();

    // c2 (sw2) carries the new route: its rule counter moves
    let before = rule_hits(&net, SwitchId(2));
    let (out, _) = walk_with_version(&topo, &mut net, 1);
    assert_eq!(
        out,
        WalkOutcome::DeliveredToRadio {
            switch: SwitchId(5)
        }
    );
    assert!(rule_hits(&net, SwitchId(2)) > before, "new spine used");
}

fn rule_hits(net: &PhysicalNetwork, sw: SwitchId) -> u64 {
    net.switch(sw)
        .table
        .iter()
        .map(|r| net.switch(sw).table.counter(r.id))
        .sum()
}
