//! Mobile-to-mobile traffic (paper §7): UEs in the same core network
//! talk directly — through the clause's middlebox chain but never via
//! the gateway. "Compared to today's cellular networks where all
//! traffic has to go via the P-GW, SoftCell's routing scheme is more
//! efficient."

use softcell::packet::Protocol;
use softcell::policy::{ServicePolicy, SubscriberAttributes};
use softcell::sim::{SimWorld, WalkOutcome};
use softcell::topology::{small_topology, CellularParams};
use softcell::types::{BaseStationId, MiddleboxKind, UeImsi};

fn world(topo: &softcell::topology::Topology) -> SimWorld<'_> {
    let mut w = SimWorld::new(topo, ServicePolicy::example_carrier_a(1));
    for i in 0..4 {
        w.provision(SubscriberAttributes::default_home(UeImsi(i)));
    }
    w
}

#[test]
fn m2m_traffic_avoids_the_gateway() {
    let topo = small_topology();
    let mut w = world(&topo);
    w.attach(UeImsi(0), BaseStationId(0)).unwrap();
    w.attach(UeImsi(1), BaseStationId(3)).unwrap();

    let c = w
        .start_m2m_connection(UeImsi(0), UeImsi(1), 443, Protocol::Tcp)
        .unwrap();
    let out = w.send_m2m(c, true, b"hello peer").unwrap();
    assert!(matches!(out, WalkOutcome::DeliveredToRadio { .. }));

    // the walk never touched the gateway switch
    let gw = topo.default_gateway().switch;
    assert!(
        !w.net.last_walk_trail.contains(&gw),
        "m2m traffic detoured via the gateway: {:?}",
        w.net.last_walk_trail
    );

    // ...but it did traverse the clause's firewall
    let fw = topo.instances_of(MiddleboxKind::Firewall)[0];
    assert!(w.net.middleboxes.connections_seen(fw) > 0);
}

#[test]
fn m2m_works_in_both_directions() {
    let topo = small_topology();
    let mut w = world(&topo);
    w.attach(UeImsi(0), BaseStationId(1)).unwrap();
    w.attach(UeImsi(1), BaseStationId(2)).unwrap();

    let c = w
        .start_m2m_connection(UeImsi(0), UeImsi(1), 5060, Protocol::Udp)
        .unwrap();
    for _ in 0..3 {
        assert!(matches!(
            w.send_m2m(c, true, b"invite").unwrap(),
            WalkOutcome::DeliveredToRadio { .. }
        ));
        assert!(matches!(
            w.send_m2m(c, false, b"ok").unwrap(),
            WalkOutcome::DeliveredToRadio { .. }
        ));
    }
    let conn = w.connection(c);
    assert_eq!(conn.uplink_sent, 3);
    assert_eq!(conn.downlink_delivered, 3);
}

#[test]
fn m2m_same_ring_is_local() {
    // two stations in one access ring: traffic stays below the pod layer
    // whenever the clause's middlebox placement allows... with the
    // Table-1 firewall requirement it must still climb to the firewall,
    // but never to the gateway.
    let topo = CellularParams::paper(2).build().unwrap();
    let mut w = world(&topo);
    w.attach(UeImsi(0), BaseStationId(2)).unwrap();
    w.attach(UeImsi(1), BaseStationId(5)).unwrap();
    let c = w
        .start_m2m_connection(UeImsi(0), UeImsi(1), 443, Protocol::Tcp)
        .unwrap();
    let out = w.send_m2m(c, true, b"x").unwrap();
    assert!(matches!(out, WalkOutcome::DeliveredToRadio { .. }));
    let gw = topo.default_gateway().switch;
    assert!(!w.net.last_walk_trail.contains(&gw));
}

#[test]
fn m2m_paths_are_cached_per_station_pair() {
    let topo = small_topology();
    let mut w = world(&topo);
    for i in 0..3 {
        w.attach(UeImsi(i), BaseStationId(i as u32)).unwrap();
    }
    let c1 = w
        .start_m2m_connection(UeImsi(0), UeImsi(1), 443, Protocol::Tcp)
        .unwrap();
    w.send_m2m(c1, true, b"a").unwrap();
    let rules_after_first = w.net.total_rules();

    // a second m2m connection over the same station pair and clause
    // installs no new fabric rules
    let c2 = w
        .start_m2m_connection(UeImsi(0), UeImsi(1), 80, Protocol::Tcp)
        .unwrap();
    w.send_m2m(c2, true, b"b").unwrap();
    assert_eq!(w.net.total_rules(), rules_after_first);
}
