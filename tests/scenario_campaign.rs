//! Metro scenario-campaign integration tests (PR 9 satellites).
//!
//! Three contracts, exercised through the public umbrella API:
//!
//! * **Handoff during active flows at scale** — a compressed hour over
//!   1 000 UEs with commuter storms and a flash crowd stacked on top
//!   must finish with zero invariant violations and zero residue of
//!   any kind once the fabric quiesces.
//! * **Determinism** — the same configuration (same seed) must produce
//!   byte-identical warped traces, byte-identical fabric dumps and the
//!   same fabric digest on every run (the seed-stability contract in
//!   `softcell_workload`).
//! * **Seeded violations are actionable** — a campaign that trips an
//!   invariant must report the offending event with the seed and
//!   virtual timestamp needed to replay it.

use softcell::scenario::{overlays_for, CampaignConfig, OverlayKind};
use softcell::types::SimDuration;
use softcell::workload::diurnal::DiurnalShape;
use softcell::workload::{EventStream, EventStreamConfig};

/// Satellite 3: a thousand UEs through a compressed hour with the two
/// overlays that force handoffs while flows are live (train storms move
/// UEs mid-session; the flash crowd piles attaches onto one cell). The
/// campaign's continuous probes check policy consistency, tag/tunnel
/// residue and microflow occupancy after every slice, so a single
/// mis-carried flow anywhere in the hour fails the run.
#[test]
fn handoff_during_active_flows_at_scale_leaves_no_residue() {
    let cfg = CampaignConfig::small(
        "storm-hour",
        vec![OverlayKind::TrainStorm, OverlayKind::FlashCrowd],
    );
    assert_eq!(cfg.ues, 1_000);
    let out = cfg.run().expect("campaign driver");
    let r = &out.report;

    assert!(r.violations.is_empty(), "violations: {:#?}", r.violations);
    assert!(r.micro.handoffs > 0, "no handoffs exercised");
    assert!(r.overlay.storm_rides > 0, "train storm never ran");
    assert!(r.overlay.crowd_attaches > 0, "flash crowd never ran");
    assert!(
        r.micro.round_trips > r.micro.flows,
        "handoff round-trips missing"
    );

    // Zero residue after quiesce: nothing attached, reserved, tunnelled
    // or tagged beyond the warm baseline, and every microflow entry aged
    // out.
    let q = &r.quiesce;
    assert_eq!(q.attached, 0);
    assert_eq!(q.reserved, 0);
    assert_eq!(q.transitions, 0);
    assert_eq!(q.tunnels, 0);
    assert_eq!(q.rules_delta, 0);
    assert_eq!(q.tags_delta, 0);
    assert_eq!(q.microflow_entries, 0);
}

/// Satellite 2: same seed, same bytes. Both the diurnally-warped input
/// trace and the end-of-day fabric dump must be byte-identical across
/// runs — any divergence means a nondeterministic iteration order or a
/// stray entropy source crept into the stack.
#[test]
fn same_seed_gives_byte_identical_traces_and_fabric_dumps() {
    // The warped workload trace itself.
    let trace_cfg = EventStreamConfig {
        base_stations: 4,
        ues: 200,
        duration: SimDuration::from_secs(60),
        mean_session: SimDuration::from_secs(15),
        mean_gap: SimDuration::from_secs(12),
        mean_flow_gap: SimDuration::from_secs(3),
        mean_handoff_gap: SimDuration::from_secs(10),
        seed: 2013,
    };
    let shape = DiurnalShape::default();
    let warp = |cfg: &EventStreamConfig| {
        let t = EventStream::generate(cfg).warp_diurnal(
            &shape,
            SimDuration::from_secs(60),
            SimDuration::from_secs(3_600),
        );
        serde_json::to_string(&t.events().to_vec()).expect("serialize trace")
    };
    let t1 = warp(&trace_cfg);
    let t2 = warp(&trace_cfg);
    assert!(!t1.is_empty() && t1.contains("Attach"));
    assert_eq!(t1, t2, "warped trace is not seed-stable");

    // The full campaign: identical config twice, compare fabric dumps.
    let mk = || {
        let mut cfg = CampaignConfig::small("determinism", vec![OverlayKind::TrainStorm]);
        cfg.ues = 96;
        cfg.cohort_cap = 96;
        cfg.virtual_day = SimDuration::from_secs(900);
        cfg.compress = 15;
        cfg.capture_fabric_dump = true;
        cfg
    };
    let a = mk().run().expect("run A");
    let b = mk().run().expect("run B");
    assert!(a.report.violations.is_empty(), "{:#?}", a.report.violations);
    assert_eq!(a.report.fabric_digest, b.report.fabric_digest);
    let (da, db) = (
        a.fabric_dump.expect("dump A captured"),
        b.fabric_dump.expect("dump B captured"),
    );
    assert!(!da.is_empty());
    assert_eq!(da, db, "fabric dumps diverged under the same seed");
    assert_eq!(a.report.micro, b.report.micro);
}

/// A campaign that trips an invariant must hand back everything needed
/// to replay the failure: the violated invariant, the offending event,
/// the seed and the virtual timestamp.
#[test]
fn seeded_violation_reports_replay_coordinates() {
    let overlays = overlays_for("seeded-violation").expect("known scenario");
    let mut cfg = CampaignConfig::small("seeded-violation", overlays);
    cfg.ues = 96;
    cfg.cohort_cap = 96;
    cfg.virtual_day = SimDuration::from_secs(900);
    cfg.compress = 15;
    let out = cfg.run().expect("campaign driver");
    let r = &out.report;

    assert!(!r.clean(), "seeded violation was not caught");
    let v = &r.violations[0];
    assert_eq!(v.scenario, "seeded-violation");
    assert_eq!(v.seed, 2013);
    assert!(!v.event.is_empty(), "offending event missing");
    let coords = v.replay_coordinates();
    assert!(coords.contains("--seed 2013"), "coords: {coords}");
    assert!(
        coords.contains("--scenario seeded-violation"),
        "coords: {coords}"
    );
    // The violation is pinned to a virtual instant inside the day.
    assert!(v.virtual_time_us <= cfg.virtual_day.as_micros());
}
