//! Differential oracle for the sharded controller core.
//!
//! The same seeded workload is driven through two implementations:
//!
//! * **reference** — the single-threaded `CentralController` with one
//!   real `LocalAgent` per base station, applied to a `PhysicalNetwork`
//!   exactly the way the simulator does it;
//! * **sharded** — `ShardedController` at 1, 2, 4, 8 and 16 shards, whose
//!   ticket-stamped batch streams and per-event outcomes are replayed
//!   onto a fresh `PhysicalNetwork`.
//!
//! The final fabric flow tables must be **byte-identical** (rule ids
//! included: the merged batch stream reproduces the exact global op
//! order). Microflow tables and controller state must be identical
//! modulo permanent-address placement: the sharded controller carves
//! the permanent pool into static per-shard ranges, so each UE's
//! address differs between runs, but every microflow entry carries its
//! flow's globally-unique UE source port, which names the flow across
//! runs. Entries are compared with permanent addresses canonicalized
//! through that port, and each attachment session's flows are checked
//! to share exactly one address so sharing cannot silently diverge.

mod common;

use common::{
    assert_sessions_refine, compare, materialize, policy, reference_run, session_port_groups,
    subscribers, SERVER,
};
use softcell::controller::sharded::{ShardEvent, ShardEventKind, ShardedController};
use softcell::controller::ControllerConfig;
use softcell::topology::small_topology;
use softcell::workload::{EventKind, EventStream, EventStreamConfig};

const UES: u64 = 24;

/// Converts the generated trace, giving every flow a globally-unique
/// source port (40000 + event index) — the cross-run flow identity the
/// canonicalization leans on.
fn convert(events: &[softcell::workload::TraceEvent]) -> Vec<ShardEvent> {
    assert!(events.len() < 25_000, "source ports must stay unique");
    events
        .iter()
        .enumerate()
        .map(|(idx, ev)| {
            let kind = match ev.kind {
                EventKind::Attach { bs } => ShardEventKind::Attach { bs },
                EventKind::NewFlow { bs, dst_port, udp } => ShardEventKind::NewFlow {
                    bs,
                    dst: SERVER,
                    src_port: 40_000 + idx as u16,
                    dst_port,
                    udp,
                },
                EventKind::Handoff { from, to } => ShardEventKind::Handoff { from, to },
                EventKind::Detach { bs } => ShardEventKind::Detach { bs },
            };
            ShardEvent {
                time: ev.time,
                imsi: ev.imsi,
                kind,
            }
        })
        .collect()
}

fn oracle(workload_seed: u64) {
    let topo = small_topology();
    let stream = EventStream::generate(&EventStreamConfig::busy(4, UES, workload_seed));
    let events = convert(stream.events());
    assert!(!events.is_empty());
    let sessions = session_port_groups(&events);

    let reference = reference_run(&topo, UES, &events);
    assert!(reference.flow_stats.0 > 0, "workload produced flows");
    assert_sessions_refine(&sessions, &reference, "reference");

    for shards in [1usize, 2, 4, 8, 16] {
        let sc = ShardedController::new(&topo, ControllerConfig::simulation(), shards)
            .with_sched_seed(workload_seed.wrapping_mul(31) + shards as u64);
        let run = sc.run(policy(), &subscribers(UES), &events);
        assert_eq!(
            run.stats.skipped, 0,
            "{shards} shards: clean trace must not skip events"
        );
        assert_eq!(run.outcomes.len(), events.len());
        let dump = materialize(&topo, &run);
        compare(&reference, &dump, &format!("{shards} shards"));
        assert_sessions_refine(&sessions, &dump, &format!("{shards} shards"));
        // ticketed flow demands are exactly the coordinated flow events
        // (per-UE tickets: a later UE may re-demand a key its waiter peers
        // already resolved, so demands can exceed cache misses)
        assert_eq!(
            run.stats.coordinated,
            run.stats.attaches + run.stats.detaches + run.stats.handoffs + run.stats.flow_demands,
            "{shards} shards: every coordinated event is accounted for"
        );
        assert!(
            run.stats.flow_demands >= run.stats.cache_misses,
            "{shards} shards: every cache miss rode a ticketed demand"
        );
    }
}

#[test]
fn sharded_controller_matches_single_threaded_oracle() {
    oracle(7);
}

#[test]
fn sharded_controller_matches_oracle_second_seed() {
    oracle(1913);
}
