//! Histogram edge cases: empty snapshots, top-bucket saturation, and
//! concurrent recording agreeing with sequential totals.

#![cfg(not(feature = "telemetry-off"))]

use std::sync::Arc;

use proptest::prelude::*;
use softcell_telemetry::{bucket_index, Histogram, HistogramSample, Registry, BUCKETS};

#[test]
fn zero_samples_yield_zeroed_snapshot_without_division() {
    let r = Registry::new();
    let _ = r.histogram("softcell_test_empty_ns");
    let snap = r.snapshot();
    let h = snap
        .histogram("softcell_test_empty_ns")
        .expect("registered");
    assert_eq!(h.count, 0);
    assert_eq!(h.sum, 0);
    assert_eq!(h.max, 0);
    assert_eq!((h.p50, h.p95, h.p99), (0, 0, 0));
    assert_eq!(h.mean(), 0.0, "mean of empty histogram is 0, not NaN");
    // exports of an empty histogram must not panic either
    assert!(snap
        .to_prometheus()
        .contains("softcell_test_empty_ns_count 0"));
    let _ = snap.report();
}

#[test]
fn top_bucket_saturates_instead_of_overflowing() {
    let h = Histogram::new();
    for v in [u64::MAX, u64::MAX, 1 << 63, (1 << 62) - 1] {
        h.record(v);
    }
    assert_eq!(h.count(), 4);
    assert_eq!(h.max(), u64::MAX);
    let buckets = h.buckets();
    assert_eq!(
        buckets[BUCKETS - 1],
        3,
        "MAX and 1<<63 share the top bucket"
    );
    assert_eq!(buckets[BUCKETS - 2], 1, "(1<<62)-1 has bit length 62");
    assert_eq!(h.quantile(0.99), u64::MAX, "top bucket reports u64::MAX");
    // sum wrapped (2 * u64::MAX + ...), but count/buckets stay exact and
    // the percentile path never divides by the wrapped sum
    let sample = HistogramSample::from_buckets(
        "softcell_test_sat_ns".into(),
        String::new(),
        buckets,
        h.sum(),
        h.max(),
    );
    assert_eq!(sample.count, 4);
    assert_eq!(sample.p50, u64::MAX);
}

proptest! {
    /// `Snapshot::merge` on histograms is lossless at the percentile
    /// level: the merged p50/p95/p99 equal those of one histogram fed
    /// the union of both sample sets (bucket merging is exact, so the
    /// derived quantiles must be too).
    #[test]
    fn merged_percentiles_match_union_histogram(
        a in proptest::collection::vec(0u64..10_000_000, 0..128),
        b in proptest::collection::vec(0u64..10_000_000, 0..128),
    ) {
        let snap_of = |samples: &[u64]| {
            let r = Registry::new();
            let h = r.histogram("softcell_test_merge_ns");
            for &v in samples {
                h.record(v);
            }
            r.snapshot()
        };
        let mut merged = snap_of(&a);
        merged.merge(&snap_of(&b));

        let union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let single = snap_of(&union);

        let m = merged.histogram("softcell_test_merge_ns").expect("merged");
        let s = single.histogram("softcell_test_merge_ns").expect("single");
        prop_assert_eq!(m.count, s.count);
        prop_assert_eq!(m.sum, s.sum);
        prop_assert_eq!(m.max, s.max);
        prop_assert_eq!((m.p50, m.p95, m.p99), (s.p50, s.p95, s.p99));
        prop_assert_eq!(&m.buckets, &s.buckets);
    }

    /// Eight threads hammering one histogram record exactly the same
    /// count, sum, max and per-bucket totals as recording the same
    /// samples sequentially.
    #[test]
    fn concurrent_recording_matches_sequential(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, 0..64),
            8..9,
        ),
    ) {
        let concurrent = Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for samples in &per_thread {
                let h = Arc::clone(&concurrent);
                s.spawn(move || {
                    for &v in samples {
                        h.record(v);
                    }
                });
            }
        });

        let sequential = Histogram::new();
        let mut expect_count = 0u64;
        let mut expect_sum = 0u64;
        let mut expect_max = 0u64;
        for &v in per_thread.iter().flatten() {
            sequential.record(v);
            expect_count += 1;
            expect_sum += v;
            expect_max = expect_max.max(v);
        }

        prop_assert_eq!(concurrent.count(), expect_count);
        prop_assert_eq!(concurrent.sum(), expect_sum);
        prop_assert_eq!(concurrent.max(), expect_max);
        prop_assert_eq!(concurrent.buckets(), sequential.buckets());
        for &v in per_thread.iter().flatten().take(1) {
            // spot-check the shared bucket math both paths rely on
            prop_assert!(bucket_index(v) < BUCKETS);
        }
    }
}
