//! The metric registry: named, optionally labeled metric families.
//!
//! Callers register once — `registry.counter("softcell_x_total")` or
//! `registry.counter_with("softcell_x_total", "shard=3")` — cache the
//! returned `Arc` handle, and touch only the handle's atomics on the hot
//! path; the registry's interning mutex is never taken per event.
//! Metric names follow `softcell_<crate>_<name>` with counters suffixed
//! `_total` (DESIGN.md §11); labels are a single `key=value` string so
//! families stay flat and allocation-free to iterate.
//!
//! Two registries matter in practice: [`Registry::global`] for
//! process-wide subsystems whose instances are anonymous (ctlchan
//! transports, dataplane tables), and per-instance registries owned by
//! each `ControllerServer` so tests running many servers in parallel
//! never see each other's numbers.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::journal::EventJournal;
use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{
    CounterSample, EventSample, GaugeSample, HistogramSample, Snapshot, SpanSample,
};
use crate::trace::Tracer;

type Family<T> = Mutex<BTreeMap<(String, String), Arc<T>>>;

/// A set of named metric families plus one event journal and one span
/// tracer.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Family<Counter>,
    gauges: Family<Gauge>,
    histograms: Family<Histogram>,
    journal: EventJournal,
    tracer: Tracer,
}

fn intern<T: Default>(family: &Family<T>, name: &str, label: &str) -> Arc<T> {
    let mut map = family.lock().expect("registry poisoned");
    Arc::clone(
        map.entry((name.to_string(), label.to_string()))
            .or_default(),
    )
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Arc<Registry> {
        Arc::new(Registry::default())
    }

    /// The process-wide registry for subsystems without a natural owner.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::default)
    }

    /// The unlabeled counter `name`, creating it at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, "")
    }

    /// The counter `name{label}`; same `(name, label)` returns the same
    /// underlying counter.
    pub fn counter_with(&self, name: &str, label: &str) -> Arc<Counter> {
        intern(&self.counters, name, label)
    }

    /// The unlabeled gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, "")
    }

    /// The gauge `name{label}`.
    pub fn gauge_with(&self, name: &str, label: &str) -> Arc<Gauge> {
        intern(&self.gauges, name, label)
    }

    /// The unlabeled histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, "")
    }

    /// The histogram `name{label}`.
    pub fn histogram_with(&self, name: &str, label: &str) -> Arc<Histogram> {
        intern(&self.histograms, name, label)
    }

    /// This registry's event journal.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// This registry's span tracer (disarmed by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// A point-in-time copy of every registered metric and the retained
    /// journal, ready for JSON/Prometheus export or merging.
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: Vec<CounterSample> = self
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|((name, label), c)| CounterSample {
                name: name.clone(),
                label: label.clone(),
                value: c.get(),
            })
            .collect();
        // Journal overflow is otherwise silent: surface the eviction
        // count as a first-class counter so exports and merges see it.
        counters.push(CounterSample {
            name: "softcell_telemetry_journal_dropped_total".to_string(),
            label: String::new(),
            value: self.journal.dropped(),
        });
        counters.sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
        let gauges = self
            .gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|((name, label), g)| GaugeSample {
                name: name.clone(),
                label: label.clone(),
                value: g.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|((name, label), h)| {
                HistogramSample::from_buckets(
                    name.clone(),
                    label.clone(),
                    h.buckets(),
                    h.sum(),
                    h.max(),
                )
            })
            .collect();
        let events = self
            .journal
            .events()
            .into_iter()
            .map(|e| EventSample {
                ts_us: e.ts_us,
                kind: e.kind.to_string(),
                a: e.a,
                b: e.b,
            })
            .collect();
        let spans = self
            .tracer
            .records()
            .into_iter()
            .map(|s| SpanSample {
                trace_id: s.trace_id,
                span_id: s.span_id,
                parent: s.parent,
                kind: s.kind.to_string(),
                start_us: s.start_us,
                end_us: s.end_us,
                shard: s.shard,
                label: s.label,
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            events,
            events_dropped: self.journal.dropped(),
            spans,
            spans_dropped: self.tracer.dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_label_share_one_metric() {
        let r = Registry::new();
        let a = r.counter_with("softcell_test_total", "shard=0");
        let b = r.counter_with("softcell_test_total", "shard=0");
        let other = r.counter_with("softcell_test_total", "shard=1");
        a.inc();
        b.inc();
        other.inc();
        assert!(Arc::ptr_eq(&a, &b));
        #[cfg(not(feature = "telemetry-off"))]
        {
            assert_eq!(a.get(), 2);
            assert_eq!(other.get(), 1);
            let snap = r.snapshot();
            assert_eq!(snap.counter("softcell_test_total"), 3, "family sums");
            assert_eq!(snap.counter_labeled("softcell_test_total", "shard=1"), 1);
        }
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn journal_overflow_surfaces_as_dropped_counter() {
        let r = Registry::default();
        let clean = r.snapshot();
        assert_eq!(
            clean.counter("softcell_telemetry_journal_dropped_total"),
            0,
            "present even before any eviction"
        );
        for i in 0..(crate::journal::DEFAULT_JOURNAL_CAP as u64 + 3) {
            r.journal().record("e", i, 0);
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("softcell_telemetry_journal_dropped_total"), 3);
        assert_eq!(snap.events_dropped, 3);
        // The ring kept the newest entries.
        assert_eq!(
            snap.events.last().map(|e| e.a),
            Some(crate::journal::DEFAULT_JOURNAL_CAP as u64 + 2)
        );
        assert_eq!(snap.events.first().map(|e| e.a), Some(3));
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn snapshot_carries_tracer_spans() {
        let r = Registry::default();
        r.tracer().set_sampling(1, 0);
        {
            let _root = r.tracer().span_in(
                crate::trace::TraceContext {
                    trace_id: 42,
                    parent: 0,
                },
                "op",
            );
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].trace_id, 42);
        assert_eq!(snap.spans[0].kind, "op");
        assert_eq!(snap.spans_dropped, 0);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = Registry::global() as *const Registry;
        let b = Registry::global() as *const Registry;
        assert_eq!(a, b);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn snapshot_captures_all_metric_kinds() {
        let r = Registry::new();
        r.counter("softcell_test_c_total").add(5);
        r.gauge_with("softcell_test_g", "sw=2").record_max(9);
        r.histogram("softcell_test_h_ns").record(1000);
        r.journal().record("attach", 7, 0);
        let snap = r.snapshot();
        assert_eq!(snap.counter("softcell_test_c_total"), 5);
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.gauges[0].value, 9);
        let h = snap.histogram("softcell_test_h_ns").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.max, 1000);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].kind, "attach");
    }
}
