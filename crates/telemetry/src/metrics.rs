//! Lock-free metric primitives: counters, gauges, log2 histograms.
//!
//! Every primitive is a handful of `Relaxed` atomic operations on the
//! hot path — no locks, no allocation, no clock reads except where the
//! caller explicitly starts a [`Stopwatch`]. Under the `telemetry-off`
//! feature all of them compile to empty inline functions over zero-sized
//! storage, so instrumented call sites cost nothing (the bench suite's
//! `micro_telemetry` pins the enabled cost below 10 ns per increment).

#[cfg(not(feature = "telemetry-off"))]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "telemetry-off"))]
use std::time::Instant;

/// Number of histogram buckets: bucket 0 holds the value 0, bucket
/// `i >= 1` holds values of bit length `i` (i.e. `2^(i-1) ..= 2^i - 1`),
/// and the top bucket saturates — values too large for any finite bucket
/// land there instead of overflowing.
pub const BUCKETS: usize = 64;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    #[cfg(not(feature = "telemetry-off"))]
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        let _ = n;
    }

    /// Current value (always zero under `telemetry-off`).
    #[inline]
    pub fn get(&self) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.value.load(Ordering::Relaxed)
        }
        #[cfg(feature = "telemetry-off")]
        {
            0
        }
    }
}

/// A value that can move both ways (queue depths, live connections) or
/// track a high-water mark via [`Gauge::record_max`].
#[derive(Debug, Default)]
pub struct Gauge {
    #[cfg(not(feature = "telemetry-off"))]
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        self.value.store(v, Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        let _ = v;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        let _ = n;
    }

    /// Subtracts `n` (saturating at zero would cost a CAS loop; the
    /// counters this backs are matched inc/dec pairs, so plain wrapping
    /// subtraction is exact in practice).
    #[inline]
    pub fn sub(&self, n: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        self.value.fetch_sub(n, Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        let _ = n;
    }

    /// Raises the gauge to `v` if `v` is larger — a lock-free
    /// high-water mark.
    #[inline]
    pub fn record_max(&self, v: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        self.value.fetch_max(v, Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        let _ = v;
    }

    /// Current value (always zero under `telemetry-off`).
    #[inline]
    pub fn get(&self) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.value.load(Ordering::Relaxed)
        }
        #[cfg(feature = "telemetry-off")]
        {
            0
        }
    }
}

/// A fixed-bucket log2 histogram: 64 buckets keyed by bit length, so a
/// `record` is two `fetch_add`s plus a `fetch_max` with no allocation.
/// Quantiles are read out as the upper bound of the bucket holding the
/// requested rank — exact to within 2× for any value distribution,
/// which is all a p50/p95/p99 latency readout needs.
#[derive(Debug)]
pub struct Histogram {
    #[cfg(not(feature = "telemetry-off"))]
    buckets: [AtomicU64; BUCKETS],
    #[cfg(not(feature = "telemetry-off"))]
    count: AtomicU64,
    #[cfg(not(feature = "telemetry-off"))]
    sum: AtomicU64,
    #[cfg(not(feature = "telemetry-off"))]
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            #[cfg(not(feature = "telemetry-off"))]
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            #[cfg(not(feature = "telemetry-off"))]
            count: AtomicU64::new(0),
            #[cfg(not(feature = "telemetry-off"))]
            sum: AtomicU64::new(0),
            #[cfg(not(feature = "telemetry-off"))]
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket a value lands in: 0 for 0, else the bit length clamped to
/// the top (saturating) bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The largest value bucket `i` can hold (`u64::MAX` for the saturating
/// top bucket) — the value quantile readouts report for that bucket.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Quantile over raw bucket counts: upper bound of the bucket holding
/// the `ceil(q * count)`-th sample. Zero when empty — never divides.
pub fn quantile_from_buckets(buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        cum = cum.saturating_add(c);
        if cum >= rank {
            return bucket_upper_bound(i);
        }
    }
    bucket_upper_bound(BUCKETS - 1)
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample. The running sum wraps at `u64::MAX`, which at
    /// one nanosecond granularity is ~584 years of accumulated latency.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
        #[cfg(feature = "telemetry-off")]
        let _ = v;
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.count.load(Ordering::Relaxed)
        }
        #[cfg(feature = "telemetry-off")]
        {
            0
        }
    }

    /// Sum of all samples.
    #[inline]
    pub fn sum(&self) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.sum.load(Ordering::Relaxed)
        }
        #[cfg(feature = "telemetry-off")]
        {
            0
        }
    }

    /// Largest sample recorded.
    #[inline]
    pub fn max(&self) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.max.load(Ordering::Relaxed)
        }
        #[cfg(feature = "telemetry-off")]
        {
            0
        }
    }

    /// Raw bucket counts (all zero under `telemetry-off`).
    pub fn buckets(&self) -> Vec<u64> {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect()
        }
        #[cfg(feature = "telemetry-off")]
        {
            vec![0; BUCKETS]
        }
    }

    /// Quantile `q` in `[0, 1]`; zero when no samples were recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_buckets(&self.buckets(), self.count(), q)
    }
}

/// A started clock that records its elapsed nanoseconds into a
/// [`Histogram`]. Zero-sized — and never reads the clock — under
/// `telemetry-off`, so timing instrumentation compiles out with the
/// metrics it feeds.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    #[cfg(not(feature = "telemetry-off"))]
    start: Instant,
}

impl Stopwatch {
    /// Reads the monotonic clock (a no-op under `telemetry-off`).
    #[inline]
    pub fn start() -> Stopwatch {
        Stopwatch {
            #[cfg(not(feature = "telemetry-off"))]
            start: Instant::now(),
        }
    }

    /// Nanoseconds since [`Stopwatch::start`], saturating at `u64::MAX`.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        {
            u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }
        #[cfg(feature = "telemetry-off")]
        {
            0
        }
    }

    /// Records the elapsed nanoseconds into `hist`.
    #[inline]
    pub fn record(&self, hist: &Histogram) {
        hist.record(self.elapsed_ns());
    }
}

#[cfg(all(test, not(feature = "telemetry-off")))]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        g.set(7);
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 10);
        g.record_max(3);
        assert_eq!(g.get(), 10, "record_max never lowers");
        g.record_max(99);
        assert_eq!(g.get(), 99);
    }

    #[test]
    fn bucket_index_matches_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1 << 40), 41);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(1 << 63), BUCKETS - 1, "top bucket saturates");
    }

    #[test]
    fn quantiles_track_recorded_values() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(100); // bucket 7, upper bound 127
        }
        for _ in 0..10 {
            h.record(10_000); // bucket 14, upper bound 16383
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 90 * 100 + 10 * 10_000);
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.quantile(0.50), 127);
        assert_eq!(h.quantile(0.90), 127);
        assert_eq!(h.quantile(0.95), 16_383);
        assert_eq!(h.quantile(0.99), 16_383);
    }

    #[test]
    fn stopwatch_records_nonzero_elapsed() {
        let h = Histogram::new();
        let sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        sw.record(&h);
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 1_000_000, "slept >= 1 ms");
    }
}
