//! Ring-buffer event journal for control-plane lifecycle tracing.
//!
//! Counters say *how much*; the journal says *in what order*. Each
//! [`Registry`](crate::Registry) owns one journal into which
//! instrumented code drops fixed-size [`Event`]s — attach handled,
//! policy path resolved, flow-mod batch emitted, barrier acked,
//! reconnect, resync — stamped with microseconds since the journal was
//! created (one monotonic clock per journal, so events from one run
//! order totally). The ring holds the most recent
//! [`DEFAULT_JOURNAL_CAP`] events; older ones are overwritten and
//! counted in [`EventJournal::dropped`], never silently lost.

#[cfg(not(feature = "telemetry-off"))]
use std::collections::VecDeque;
#[cfg(not(feature = "telemetry-off"))]
use std::sync::Mutex;
#[cfg(not(feature = "telemetry-off"))]
use std::time::Instant;

/// Default ring capacity — enough for the full lifecycle of a few
/// thousand control operations between snapshots.
pub const DEFAULT_JOURNAL_CAP: usize = 4096;

/// One journal entry: a static kind tag plus two free-form operands
/// whose meaning is per-kind (documented in DESIGN.md §11 — typically a
/// subscriber/switch id and a count or latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Microseconds since the owning journal was created.
    pub ts_us: u64,
    /// Static event kind, e.g. `"attach"`, `"barrier_ack"`.
    pub kind: &'static str,
    /// First operand (per-kind meaning).
    pub a: u64,
    /// Second operand (per-kind meaning).
    pub b: u64,
}

/// A bounded, lock-guarded ring of [`Event`]s. Recording is off the
/// packet hot path (one event per control-plane span, not per packet),
/// so a short mutex hold is fine; under `telemetry-off` the whole
/// structure is zero-sized and `record` compiles to nothing.
#[derive(Debug)]
pub struct EventJournal {
    #[cfg(not(feature = "telemetry-off"))]
    epoch: Instant,
    #[cfg(not(feature = "telemetry-off"))]
    inner: Mutex<JournalInner>,
}

#[cfg(not(feature = "telemetry-off"))]
#[derive(Debug)]
struct JournalInner {
    ring: VecDeque<Event>,
    cap: usize,
    dropped: u64,
}

impl Default for EventJournal {
    fn default() -> EventJournal {
        EventJournal::with_capacity(DEFAULT_JOURNAL_CAP)
    }
}

impl EventJournal {
    /// Creates a journal holding at most `cap` events.
    pub fn with_capacity(cap: usize) -> EventJournal {
        #[cfg(feature = "telemetry-off")]
        let _ = cap;
        EventJournal {
            #[cfg(not(feature = "telemetry-off"))]
            epoch: Instant::now(),
            #[cfg(not(feature = "telemetry-off"))]
            inner: Mutex::new(JournalInner {
                ring: VecDeque::with_capacity(cap.min(DEFAULT_JOURNAL_CAP)),
                cap: cap.max(1),
                dropped: 0,
            }),
        }
    }

    /// Appends one event, evicting the oldest when full.
    #[inline]
    pub fn record(&self, kind: &'static str, a: u64, b: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        {
            let ts_us = u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
            let mut inner = self.inner.lock().expect("journal poisoned");
            if inner.ring.len() == inner.cap {
                inner.ring.pop_front();
                inner.dropped += 1;
            }
            inner.ring.push_back(Event { ts_us, kind, a, b });
        }
        #[cfg(feature = "telemetry-off")]
        let _ = (kind, a, b);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        #[cfg(not(feature = "telemetry-off"))]
        {
            let inner = self.inner.lock().expect("journal poisoned");
            inner.ring.iter().copied().collect()
        }
        #[cfg(feature = "telemetry-off")]
        {
            Vec::new()
        }
    }

    /// Events evicted to make room since creation.
    pub fn dropped(&self) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.inner.lock().expect("journal poisoned").dropped
        }
        #[cfg(feature = "telemetry-off")]
        {
            0
        }
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.inner.lock().expect("journal poisoned").ring.len()
        }
        #[cfg(feature = "telemetry-off")]
        {
            0
        }
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(all(test, not(feature = "telemetry-off")))]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_monotonic_timestamps() {
        let j = EventJournal::with_capacity(16);
        j.record("attach", 1, 0);
        j.record("policy_path", 1, 42);
        j.record("barrier_ack", 1, 0);
        let evs = j.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].kind, "attach");
        assert_eq!(evs[1].kind, "policy_path");
        assert_eq!(evs[1].b, 42);
        assert!(evs[0].ts_us <= evs[1].ts_us && evs[1].ts_us <= evs[2].ts_us);
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let j = EventJournal::with_capacity(4);
        for i in 0..10u64 {
            j.record("e", i, 0);
        }
        let evs = j.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs.first().unwrap().a, 6, "oldest retained is #6");
        assert_eq!(evs.last().unwrap().a, 9);
        assert_eq!(j.dropped(), 6);
    }
}
