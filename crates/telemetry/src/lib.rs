//! Telemetry substrate for the SoftCell reproduction: lock-free
//! counters/gauges, log2 latency histograms, a labeled-family metric
//! [`Registry`], and a ring-buffer [`EventJournal`] for control-plane
//! lifecycle tracing.
//!
//! The paper's evaluation (§6) hinges on quantities the runtime itself
//! is best placed to measure — packet-in service latency, per-shard
//! load, flow-table pressure, retry/dedup activity on the southbound
//! channel. This crate gives every layer one cheap way to emit them:
//!
//! * [`metrics`] — [`Counter`]/[`Gauge`]/[`Histogram`], each a few
//!   `Relaxed` atomics on the hot path, plus [`Stopwatch`] for timing.
//! * [`registry`] — [`Registry`]: named, optionally labeled families
//!   (`softcell_<crate>_<name>` naming, `key=value` labels) interned
//!   once and touched lock-free thereafter; a process-wide
//!   [`Registry::global`] plus per-instance registries where isolation
//!   matters.
//! * [`journal`] — [`EventJournal`], a bounded ring of timestamped
//!   lifecycle events (attach → policy path → flow-mod batch → barrier
//!   ack, reconnect/resync) with explicit drop accounting.
//! * [`snapshot`] — [`Snapshot`]: typed point-in-time export, merged
//!   across registries, rendered to JSON (via serde), Prometheus text
//!   exposition, or a human-readable report table.
//! * [`trace`] — [`Tracer`]: sampled causal spans ([`TraceContext`]
//!   propagated across threads and the wire, RAII [`Span`] guards, a
//!   bounded record ring) feeding the snapshot's critical-path
//!   attribution and Chrome `trace_event` export (DESIGN.md §15).
//!
//! Building with the `telemetry-off` feature compiles every primitive
//! to a zero-sized no-op — no atomics, no clock reads — while keeping
//! the registration and snapshot API intact (all values read as zero),
//! so instrumented code needs no feature gates of its own.

pub mod journal;
pub mod metrics;
pub mod registry;
pub mod snapshot;
pub mod trace;

pub use journal::{Event, EventJournal, DEFAULT_JOURNAL_CAP};
pub use metrics::{
    bucket_index, bucket_upper_bound, quantile_from_buckets, Counter, Gauge, Histogram, Stopwatch,
    BUCKETS,
};
pub use registry::Registry;
pub use snapshot::{
    CounterSample, EventSample, GaugeSample, HistogramSample, KindAttribution, Snapshot, SpanSample,
};
pub use trace::{ReqTrace, Span, SpanRecord, TraceContext, Tracer, DEFAULT_SLOW_US};
