//! Point-in-time metric snapshots and their export formats.
//!
//! [`Snapshot`] is the typed result of [`Registry::snapshot`]
//! (crate::Registry::snapshot): plain serializable structs, so a bench
//! binary can dump it to JSON (`--telemetry out.json`), render the
//! Prometheus text exposition for scraping, or print a human-readable
//! [`Snapshot::report`] table. Snapshots from different registries —
//! e.g. one per-server registry per shard-count sweep point plus the
//! process-global one — combine with [`Snapshot::merge`].

use std::collections::BTreeMap;

use serde::Serialize;

use crate::metrics::{bucket_upper_bound, quantile_from_buckets, BUCKETS};

/// One counter reading.
#[derive(Debug, Clone, Serialize)]
pub struct CounterSample {
    /// Metric name (`softcell_<crate>_<name>_total`).
    pub name: String,
    /// `key=value` label, empty for unlabeled metrics.
    pub label: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// One gauge reading.
#[derive(Debug, Clone, Serialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// `key=value` label, empty for unlabeled metrics.
    pub label: String,
    /// Gauge value at snapshot time.
    pub value: u64,
}

/// One histogram reading with precomputed percentiles.
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// `key=value` label, empty for unlabeled metrics.
    pub label: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Median (upper bound of the bucket holding the rank).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Raw log2 bucket counts (see [`crate::metrics::bucket_index`]).
    pub buckets: Vec<u64>,
}

impl HistogramSample {
    /// Builds a sample from raw buckets, deriving the count from the
    /// buckets themselves so the percentiles are self-consistent even if
    /// recordings race the snapshot.
    pub fn from_buckets(
        name: String,
        label: String,
        buckets: Vec<u64>,
        sum: u64,
        max: u64,
    ) -> HistogramSample {
        let count: u64 = buckets.iter().sum();
        HistogramSample {
            name,
            label,
            count,
            sum,
            max,
            p50: quantile_from_buckets(&buckets, count, 0.50),
            p95: quantile_from_buckets(&buckets, count, 0.95),
            p99: quantile_from_buckets(&buckets, count, 0.99),
            buckets,
        }
    }

    /// Mean sample value; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One journal event, with the kind owned so snapshots are
/// self-contained.
#[derive(Debug, Clone, Serialize)]
pub struct EventSample {
    /// Microseconds since the source journal's creation.
    pub ts_us: u64,
    /// Event kind tag.
    pub kind: String,
    /// First per-kind operand.
    pub a: u64,
    /// Second per-kind operand.
    pub b: u64,
}

/// Every metric a registry held at one instant.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Snapshot {
    /// Counter readings, sorted by (name, label).
    pub counters: Vec<CounterSample>,
    /// Gauge readings, sorted by (name, label).
    pub gauges: Vec<GaugeSample>,
    /// Histogram readings, sorted by (name, label).
    pub histograms: Vec<HistogramSample>,
    /// Retained journal events, oldest first.
    pub events: Vec<EventSample>,
    /// Journal events evicted before this snapshot.
    pub events_dropped: u64,
}

impl Snapshot {
    /// Sum of counter `name` across all labels (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Counter `name{label}` (zero if absent).
    pub fn counter_labeled(&self, name: &str, label: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name && c.label == label)
            .map_or(0, |c| c.value)
    }

    /// Gauge `name{label}` (zero if absent).
    pub fn gauge_labeled(&self, name: &str, label: &str) -> u64 {
        self.gauges
            .iter()
            .find(|g| g.name == name && g.label == label)
            .map_or(0, |g| g.value)
    }

    /// First histogram named `name`, any label.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Folds `other` into `self`: counters add, gauges keep the larger
    /// reading (they track high-water marks across instances),
    /// histograms merge bucket-wise with percentiles recomputed, events
    /// concatenate in merge order (timestamps from different registries
    /// share no epoch, so cross-registry order is not meaningful).
    pub fn merge(&mut self, other: &Snapshot) {
        let mut counters: BTreeMap<(String, String), u64> = self
            .counters
            .drain(..)
            .map(|c| ((c.name, c.label), c.value))
            .collect();
        for c in &other.counters {
            *counters
                .entry((c.name.clone(), c.label.clone()))
                .or_insert(0) += c.value;
        }
        self.counters = counters
            .into_iter()
            .map(|((name, label), value)| CounterSample { name, label, value })
            .collect();

        let mut gauges: BTreeMap<(String, String), u64> = self
            .gauges
            .drain(..)
            .map(|g| ((g.name, g.label), g.value))
            .collect();
        for g in &other.gauges {
            let slot = gauges.entry((g.name.clone(), g.label.clone())).or_insert(0);
            *slot = (*slot).max(g.value);
        }
        self.gauges = gauges
            .into_iter()
            .map(|((name, label), value)| GaugeSample { name, label, value })
            .collect();

        let mut hists: BTreeMap<(String, String), HistogramSample> = self
            .histograms
            .drain(..)
            .map(|h| ((h.name.clone(), h.label.clone()), h))
            .collect();
        for h in &other.histograms {
            match hists.entry((h.name.clone(), h.label.clone())) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(h.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let cur = e.get_mut();
                    let mut buckets = vec![0u64; BUCKETS.max(cur.buckets.len())];
                    for (i, b) in cur.buckets.iter().enumerate() {
                        buckets[i] += b;
                    }
                    for (i, b) in h.buckets.iter().enumerate() {
                        buckets[i] += b;
                    }
                    *cur = HistogramSample::from_buckets(
                        h.name.clone(),
                        h.label.clone(),
                        buckets,
                        cur.sum.saturating_add(h.sum),
                        cur.max.max(h.max),
                    );
                }
            }
        }
        self.histograms = hists.into_values().collect();

        self.events.extend(other.events.iter().cloned());
        self.events_dropped += other.events_dropped;
    }

    /// Prometheus text exposition (v0.0.4): `# TYPE` per family,
    /// `key="value"` labels, cumulative `_bucket{le=...}` series with
    /// `_sum`/`_count` for histograms.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if line != last_type_line {
                out.push_str(&line);
                last_type_line = line;
            }
        };
        for c in &self.counters {
            type_line(&mut out, &c.name, "counter");
            out.push_str(&format!(
                "{}{} {}\n",
                c.name,
                prom_label(&c.label, None),
                c.value
            ));
        }
        for g in &self.gauges {
            type_line(&mut out, &g.name, "gauge");
            out.push_str(&format!(
                "{}{} {}\n",
                g.name,
                prom_label(&g.label, None),
                g.value
            ));
        }
        for h in &self.histograms {
            type_line(&mut out, &h.name, "histogram");
            let mut cum = 0u64;
            let top = h
                .buckets
                .iter()
                .rposition(|&b| b > 0)
                .unwrap_or(0)
                .min(BUCKETS - 2);
            for (i, b) in h.buckets.iter().enumerate().take(top + 1) {
                cum += b;
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    h.name,
                    prom_label(&h.label, Some(&bucket_upper_bound(i).to_string())),
                    cum
                ));
            }
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                h.name,
                prom_label(&h.label, Some("+Inf")),
                h.count
            ));
            out.push_str(&format!(
                "{}_sum{} {}\n",
                h.name,
                prom_label(&h.label, None),
                h.sum
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                h.name,
                prom_label(&h.label, None),
                h.count
            ));
        }
        out
    }

    /// A plain-text table of every nonzero metric — what
    /// `tab2_agent_throughput` prints after a run.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let key = |name: &str, label: &str| {
            if label.is_empty() {
                name.to_string()
            } else {
                format!("{name}{{{label}}}")
            }
        };
        let width = self
            .counters
            .iter()
            .map(|c| key(&c.name, &c.label).len())
            .chain(self.gauges.iter().map(|g| key(&g.name, &g.label).len()))
            .chain(self.histograms.iter().map(|h| key(&h.name, &h.label).len()))
            .max()
            .unwrap_or(6)
            .max(6);
        out.push_str(&format!("{:<width$}  {:>12}\n", "metric", "value"));
        for c in self.counters.iter().filter(|c| c.value > 0) {
            out.push_str(&format!(
                "{:<width$}  {:>12}\n",
                key(&c.name, &c.label),
                c.value
            ));
        }
        for g in self.gauges.iter().filter(|g| g.value > 0) {
            out.push_str(&format!(
                "{:<width$}  {:>12}\n",
                key(&g.name, &g.label),
                g.value
            ));
        }
        let hists: Vec<&HistogramSample> = self.histograms.iter().filter(|h| h.count > 0).collect();
        if !hists.is_empty() {
            out.push_str(&format!(
                "{:<width$}  {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                "histogram", "count", "p50", "p95", "p99", "max"
            ));
            for h in hists {
                out.push_str(&format!(
                    "{:<width$}  {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                    key(&h.name, &h.label),
                    h.count,
                    h.p50,
                    h.p95,
                    h.p99,
                    h.max
                ));
            }
        }
        if !self.events.is_empty() || self.events_dropped > 0 {
            out.push_str(&format!(
                "journal: {} events retained, {} dropped\n",
                self.events.len(),
                self.events_dropped
            ));
        }
        out
    }
}

/// Renders the snapshot's single `key=value` label (plus an optional
/// `le` bound) as a Prometheus label set.
fn prom_label(label: &str, le: Option<&str>) -> String {
    let mut parts = Vec::new();
    if let Some((k, v)) = label.split_once('=') {
        parts.push(format!("{k}=\"{v}\""));
    } else if !label.is_empty() {
        parts.push(format!("label=\"{label}\""));
    }
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, label: &str, value: u64) -> CounterSample {
        CounterSample {
            name: name.to_string(),
            label: label.to_string(),
            value,
        }
    }

    #[test]
    fn merge_sums_counters_and_merges_histograms() {
        let mut a = Snapshot {
            counters: vec![sample("softcell_x_total", "shard=0", 3)],
            ..Default::default()
        };
        let mut buckets = vec![0u64; BUCKETS];
        buckets[7] = 10; // ten samples of ~100
        a.histograms.push(HistogramSample::from_buckets(
            "softcell_lat_ns".into(),
            String::new(),
            buckets.clone(),
            1000,
            120,
        ));
        let mut b = Snapshot {
            counters: vec![
                sample("softcell_x_total", "shard=0", 4),
                sample("softcell_x_total", "shard=1", 5),
            ],
            ..Default::default()
        };
        buckets[14] = 1; // one outlier of ~10_000
        buckets[7] = 0;
        b.histograms.push(HistogramSample::from_buckets(
            "softcell_lat_ns".into(),
            String::new(),
            buckets,
            10_000,
            10_000,
        ));
        a.merge(&b);
        assert_eq!(a.counter_labeled("softcell_x_total", "shard=0"), 7);
        assert_eq!(a.counter("softcell_x_total"), 12);
        let h = a.histogram("softcell_lat_ns").unwrap();
        assert_eq!(h.count, 11);
        assert_eq!(h.sum, 11_000);
        assert_eq!(h.max, 10_000);
        assert_eq!(h.p50, 127);
        assert_eq!(h.p99, 16_383);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut snap = Snapshot {
            counters: vec![sample("softcell_x_total", "shard=2", 9)],
            ..Default::default()
        };
        let mut buckets = vec![0u64; BUCKETS];
        buckets[1] = 2;
        buckets[2] = 1;
        snap.histograms.push(HistogramSample::from_buckets(
            "softcell_lat_ns".into(),
            String::new(),
            buckets,
            7,
            3,
        ));
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE softcell_x_total counter\n"));
        assert!(text.contains("softcell_x_total{shard=\"2\"} 9\n"));
        assert!(text.contains("# TYPE softcell_lat_ns histogram\n"));
        assert!(text.contains("softcell_lat_ns_bucket{le=\"1\"} 2\n"));
        assert!(
            text.contains("softcell_lat_ns_bucket{le=\"3\"} 3\n"),
            "cumulative"
        );
        assert!(text.contains("softcell_lat_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("softcell_lat_ns_sum 7\n"));
        assert!(text.contains("softcell_lat_ns_count 3\n"));
    }

    #[test]
    fn report_lists_nonzero_metrics() {
        let snap = Snapshot {
            counters: vec![
                sample("softcell_seen_total", "", 5),
                sample("softcell_never_total", "", 0),
            ],
            ..Default::default()
        };
        let text = snap.report();
        assert!(text.contains("softcell_seen_total"));
        assert!(!text.contains("softcell_never_total"), "zeros elided");
    }
}
