//! Point-in-time metric snapshots and their export formats.
//!
//! [`Snapshot`] is the typed result of [`Registry::snapshot`]
//! (crate::Registry::snapshot): plain serializable structs, so a bench
//! binary can dump it to JSON (`--telemetry out.json`), render the
//! Prometheus text exposition for scraping, or print a human-readable
//! [`Snapshot::report`] table. Snapshots from different registries —
//! e.g. one per-server registry per shard-count sweep point plus the
//! process-global one — combine with [`Snapshot::merge`].

use std::collections::BTreeMap;

use serde::Serialize;

use crate::metrics::{bucket_upper_bound, quantile_from_buckets, BUCKETS};

/// One counter reading.
#[derive(Debug, Clone, Serialize)]
pub struct CounterSample {
    /// Metric name (`softcell_<crate>_<name>_total`).
    pub name: String,
    /// `key=value` label, empty for unlabeled metrics.
    pub label: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// One gauge reading.
#[derive(Debug, Clone, Serialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// `key=value` label, empty for unlabeled metrics.
    pub label: String,
    /// Gauge value at snapshot time.
    pub value: u64,
}

/// One histogram reading with precomputed percentiles.
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// `key=value` label, empty for unlabeled metrics.
    pub label: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Median (upper bound of the bucket holding the rank).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Raw log2 bucket counts (see [`crate::metrics::bucket_index`]).
    pub buckets: Vec<u64>,
}

impl HistogramSample {
    /// Builds a sample from raw buckets, deriving the count from the
    /// buckets themselves so the percentiles are self-consistent even if
    /// recordings race the snapshot.
    pub fn from_buckets(
        name: String,
        label: String,
        buckets: Vec<u64>,
        sum: u64,
        max: u64,
    ) -> HistogramSample {
        let count: u64 = buckets.iter().sum();
        HistogramSample {
            name,
            label,
            count,
            sum,
            max,
            p50: quantile_from_buckets(&buckets, count, 0.50),
            p95: quantile_from_buckets(&buckets, count, 0.95),
            p99: quantile_from_buckets(&buckets, count, 0.99),
            buckets,
        }
    }

    /// Mean sample value; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One journal event, with the kind owned so snapshots are
/// self-contained.
#[derive(Debug, Clone, Serialize)]
pub struct EventSample {
    /// Microseconds since the source journal's creation.
    pub ts_us: u64,
    /// Event kind tag.
    pub kind: String,
    /// First per-kind operand.
    pub a: u64,
    /// Second per-kind operand.
    pub b: u64,
}

/// One completed trace span, with the kind owned so snapshots are
/// self-contained (see [`crate::trace::SpanRecord`]).
#[derive(Debug, Clone, Serialize)]
pub struct SpanSample {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (0 for roots).
    pub parent: u64,
    /// Segment name, e.g. `"ticket_wait"`.
    pub kind: String,
    /// Microseconds since the process trace epoch.
    pub start_us: u64,
    /// End of the interval.
    pub end_us: u64,
    /// Shard the span ran on (-1 = not shard-bound).
    pub shard: i64,
    /// Free-form operand.
    pub label: u64,
}

/// Per-span-kind critical-path attribution over every complete trace
/// in a snapshot (see [`Snapshot::critical_path`]).
#[derive(Debug, Clone, Serialize)]
pub struct KindAttribution {
    /// Segment name.
    pub kind: String,
    /// Spans of this kind (all, not just on the critical path).
    pub count: u64,
    /// Summed wall time of all spans of this kind, µs.
    pub total_us: u64,
    /// Time this kind spent on the blocking chain, µs: interval not
    /// covered by any child — the segment's *self* contribution to
    /// end-to-end latency.
    pub critical_us: u64,
}

/// Every metric a registry held at one instant.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Snapshot {
    /// Counter readings, sorted by (name, label).
    pub counters: Vec<CounterSample>,
    /// Gauge readings, sorted by (name, label).
    pub gauges: Vec<GaugeSample>,
    /// Histogram readings, sorted by (name, label).
    pub histograms: Vec<HistogramSample>,
    /// Retained journal events, oldest first.
    pub events: Vec<EventSample>,
    /// Journal events evicted before this snapshot.
    pub events_dropped: u64,
    /// Retained trace spans, oldest first.
    pub spans: Vec<SpanSample>,
    /// Trace spans evicted before this snapshot.
    pub spans_dropped: u64,
}

impl Snapshot {
    /// Sum of counter `name` across all labels (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Counter `name{label}` (zero if absent).
    pub fn counter_labeled(&self, name: &str, label: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name && c.label == label)
            .map_or(0, |c| c.value)
    }

    /// Gauge `name{label}` (zero if absent).
    pub fn gauge_labeled(&self, name: &str, label: &str) -> u64 {
        self.gauges
            .iter()
            .find(|g| g.name == name && g.label == label)
            .map_or(0, |g| g.value)
    }

    /// First histogram named `name`, any label.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Folds `other` into `self`: counters add, gauges keep the larger
    /// reading (they track high-water marks across instances),
    /// histograms merge bucket-wise with percentiles recomputed, events
    /// concatenate in merge order (timestamps from different registries
    /// share no epoch, so cross-registry order is not meaningful).
    pub fn merge(&mut self, other: &Snapshot) {
        let mut counters: BTreeMap<(String, String), u64> = self
            .counters
            .drain(..)
            .map(|c| ((c.name, c.label), c.value))
            .collect();
        for c in &other.counters {
            *counters
                .entry((c.name.clone(), c.label.clone()))
                .or_insert(0) += c.value;
        }
        self.counters = counters
            .into_iter()
            .map(|((name, label), value)| CounterSample { name, label, value })
            .collect();

        let mut gauges: BTreeMap<(String, String), u64> = self
            .gauges
            .drain(..)
            .map(|g| ((g.name, g.label), g.value))
            .collect();
        for g in &other.gauges {
            let slot = gauges.entry((g.name.clone(), g.label.clone())).or_insert(0);
            *slot = (*slot).max(g.value);
        }
        self.gauges = gauges
            .into_iter()
            .map(|((name, label), value)| GaugeSample { name, label, value })
            .collect();

        let mut hists: BTreeMap<(String, String), HistogramSample> = self
            .histograms
            .drain(..)
            .map(|h| ((h.name.clone(), h.label.clone()), h))
            .collect();
        for h in &other.histograms {
            match hists.entry((h.name.clone(), h.label.clone())) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(h.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let cur = e.get_mut();
                    let mut buckets = vec![0u64; BUCKETS.max(cur.buckets.len())];
                    for (i, b) in cur.buckets.iter().enumerate() {
                        buckets[i] += b;
                    }
                    for (i, b) in h.buckets.iter().enumerate() {
                        buckets[i] += b;
                    }
                    *cur = HistogramSample::from_buckets(
                        h.name.clone(),
                        h.label.clone(),
                        buckets,
                        cur.sum.saturating_add(h.sum),
                        cur.max.max(h.max),
                    );
                }
            }
        }
        self.histograms = hists.into_values().collect();

        self.events.extend(other.events.iter().cloned());
        self.events_dropped += other.events_dropped;
        self.spans.extend(other.spans.iter().cloned());
        self.spans_dropped += other.spans_dropped;
    }

    /// Prometheus text exposition (v0.0.4): `# TYPE` per family,
    /// `key="value"` labels, cumulative `_bucket{le=...}` series with
    /// `_sum`/`_count` for histograms.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if line != last_type_line {
                out.push_str(&line);
                last_type_line = line;
            }
        };
        for c in &self.counters {
            let name = prom_sanitize_name(&c.name);
            type_line(&mut out, &name, "counter");
            out.push_str(&format!(
                "{}{} {}\n",
                name,
                prom_label(&c.label, None),
                c.value
            ));
        }
        for g in &self.gauges {
            let name = prom_sanitize_name(&g.name);
            type_line(&mut out, &name, "gauge");
            out.push_str(&format!(
                "{}{} {}\n",
                name,
                prom_label(&g.label, None),
                g.value
            ));
        }
        for h in &self.histograms {
            let name = prom_sanitize_name(&h.name);
            type_line(&mut out, &name, "histogram");
            let mut cum = 0u64;
            let top = h
                .buckets
                .iter()
                .rposition(|&b| b > 0)
                .unwrap_or(0)
                .min(BUCKETS - 2);
            for (i, b) in h.buckets.iter().enumerate().take(top + 1) {
                cum += b;
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    name,
                    prom_label(&h.label, Some(&bucket_upper_bound(i).to_string())),
                    cum
                ));
            }
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                name,
                prom_label(&h.label, Some("+Inf")),
                h.count
            ));
            out.push_str(&format!(
                "{}_sum{} {}\n",
                name,
                prom_label(&h.label, None),
                h.sum
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                name,
                prom_label(&h.label, None),
                h.count
            ));
        }
        out
    }

    /// A plain-text table of every nonzero metric — what
    /// `tab2_agent_throughput` prints after a run.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let key = |name: &str, label: &str| {
            if label.is_empty() {
                name.to_string()
            } else {
                format!("{name}{{{label}}}")
            }
        };
        let width = self
            .counters
            .iter()
            .map(|c| key(&c.name, &c.label).len())
            .chain(self.gauges.iter().map(|g| key(&g.name, &g.label).len()))
            .chain(self.histograms.iter().map(|h| key(&h.name, &h.label).len()))
            .max()
            .unwrap_or(6)
            .max(6);
        out.push_str(&format!("{:<width$}  {:>12}\n", "metric", "value"));
        for c in self.counters.iter().filter(|c| c.value > 0) {
            out.push_str(&format!(
                "{:<width$}  {:>12}\n",
                key(&c.name, &c.label),
                c.value
            ));
        }
        for g in self.gauges.iter().filter(|g| g.value > 0) {
            out.push_str(&format!(
                "{:<width$}  {:>12}\n",
                key(&g.name, &g.label),
                g.value
            ));
        }
        let hists: Vec<&HistogramSample> = self.histograms.iter().filter(|h| h.count > 0).collect();
        if !hists.is_empty() {
            out.push_str(&format!(
                "{:<width$}  {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                "histogram", "count", "p50", "p95", "p99", "max"
            ));
            for h in hists {
                out.push_str(&format!(
                    "{:<width$}  {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                    key(&h.name, &h.label),
                    h.count,
                    h.p50,
                    h.p95,
                    h.p99,
                    h.max
                ));
            }
        }
        if !self.events.is_empty() || self.events_dropped > 0 {
            out.push_str(&format!(
                "journal: {} events retained, {} dropped\n",
                self.events.len(),
                self.events_dropped
            ));
        }
        if !self.spans.is_empty() || self.spans_dropped > 0 {
            out.push_str(&format!(
                "spans: {} retained, {} dropped, {} complete trace(s)\n",
                self.spans.len(),
                self.spans_dropped,
                self.complete_traces().len()
            ));
            let attrib = self.critical_path();
            let total_crit: u64 = attrib.iter().map(|a| a.critical_us).sum();
            if total_crit > 0 {
                out.push_str(&format!(
                    "{:<width$}  {:>12} {:>12} {:>12} {:>7}\n",
                    "critical path", "count", "total_us", "critical_us", "share%"
                ));
                for a in &attrib {
                    out.push_str(&format!(
                        "{:<width$}  {:>12} {:>12} {:>12} {:>7.1}\n",
                        a.kind,
                        a.count,
                        a.total_us,
                        a.critical_us,
                        100.0 * a.critical_us as f64 / total_crit as f64
                    ));
                }
            }
        }
        out
    }

    /// Spans grouped by trace, restricted to *complete* traces — those
    /// whose every parent reference resolves within the trace (ring
    /// eviction can orphan the tail of old traces; an export must not
    /// show dangling parents).
    pub fn complete_traces(&self) -> BTreeMap<u64, Vec<&SpanSample>> {
        let mut by_trace: BTreeMap<u64, Vec<&SpanSample>> = BTreeMap::new();
        for s in &self.spans {
            by_trace.entry(s.trace_id).or_default().push(s);
        }
        by_trace.retain(|_, spans| {
            let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
            spans
                .iter()
                .all(|s| s.parent == 0 || (s.parent != s.span_id && ids.contains(&s.parent)))
        });
        by_trace
    }

    /// Chrome `trace_event` JSON (the `about://tracing` / Perfetto
    /// format): one complete duration event (`ph:"X"`, microsecond
    /// timestamps) per span, one virtual thread per trace so each
    /// operation renders as its own lane.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for spans in self.complete_traces().values() {
            for s in spans {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"softcell\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":1,\"tid\":{},\"args\":{{\"trace_id\":{},\"span_id\":{},\
                     \"parent\":{},\"shard\":{},\"label\":{}}}}}",
                    json_escape(&s.kind),
                    s.start_us,
                    s.end_us.saturating_sub(s.start_us),
                    s.trace_id,
                    s.trace_id,
                    s.span_id,
                    s.parent,
                    s.shard,
                    s.label
                ));
            }
        }
        out.push_str("]}");
        out
    }

    /// Critical-path attribution: for every complete trace, walk the
    /// span tree backward from each root's end, attributing each moment
    /// to the *innermost* span covering it — a parent is only charged
    /// for time no child accounts for (its self-time on the blocking
    /// chain). Returns per-kind totals, largest critical share first.
    pub fn critical_path(&self) -> Vec<KindAttribution> {
        let mut agg: BTreeMap<&str, KindAttribution> = BTreeMap::new();
        for s in &self.spans {
            let e = agg
                .entry(s.kind.as_str())
                .or_insert_with(|| KindAttribution {
                    kind: s.kind.clone(),
                    count: 0,
                    total_us: 0,
                    critical_us: 0,
                });
            e.count += 1;
            e.total_us += s.end_us.saturating_sub(s.start_us);
        }
        for spans in self.complete_traces().values() {
            let mut children: BTreeMap<u64, Vec<&SpanSample>> = BTreeMap::new();
            for s in spans {
                children.entry(s.parent).or_default().push(s);
            }
            for kids in children.values_mut() {
                kids.sort_by_key(|s| std::cmp::Reverse(s.end_us));
            }
            for root in children.get(&0).cloned().unwrap_or_default() {
                let mut visited = std::collections::BTreeSet::new();
                walk_critical(root, &children, &mut visited, &mut agg);
            }
        }
        let mut out: Vec<KindAttribution> = agg.into_values().collect();
        out.sort_by(|a, b| {
            (b.critical_us, b.total_us, a.kind.as_str()).cmp(&(
                a.critical_us,
                a.total_us,
                b.kind.as_str(),
            ))
        });
        out
    }
}

/// One step of the critical-path walk: charge `span` for the stretch of
/// its interval not covered by any child (walking children newest-end
/// first), recursing into each child as it is encountered.
fn walk_critical<'a>(
    span: &'a SpanSample,
    children: &BTreeMap<u64, Vec<&'a SpanSample>>,
    visited: &mut std::collections::BTreeSet<u64>,
    agg: &mut BTreeMap<&'a str, KindAttribution>,
) {
    if !visited.insert(span.span_id) {
        return;
    }
    let mut cursor = span.end_us.max(span.start_us);
    for kid in children.get(&span.span_id).cloned().unwrap_or_default() {
        if kid.start_us >= cursor {
            continue; // entirely past the cursor: a sibling already covers it
        }
        let kid_end = kid.end_us.min(cursor);
        if let Some(e) = agg.get_mut(span.kind.as_str()) {
            e.critical_us += cursor - kid_end;
        }
        walk_critical(kid, children, visited, agg);
        cursor = kid.start_us.max(span.start_us);
    }
    if let Some(e) = agg.get_mut(span.kind.as_str()) {
        e.critical_us += cursor.saturating_sub(span.start_us);
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a Prometheus label *value*: the exposition format requires
/// `\\`, `\"`, and literal newlines to be backslash-escaped inside the
/// quoted value (everything else passes through verbatim).
fn prom_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Sanitizes a metric name to the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: invalid characters become `_`, and a
/// leading digit gets an underscore prefix. Our own names already
/// comply (DESIGN.md §11); this guards externally supplied ones.
fn prom_sanitize_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Sanitizes a label *name* — like metric names but without `:`.
fn prom_sanitize_label_key(key: &str) -> String {
    prom_sanitize_name(key).replace(':', "_")
}

/// Renders the snapshot's single `key=value` label (plus an optional
/// `le` bound) as a Prometheus label set, escaping values.
fn prom_label(label: &str, le: Option<&str>) -> String {
    let mut parts = Vec::new();
    if let Some((k, v)) = label.split_once('=') {
        parts.push(format!(
            "{}=\"{}\"",
            prom_sanitize_label_key(k),
            prom_escape(v)
        ));
    } else if !label.is_empty() {
        parts.push(format!("label=\"{}\"", prom_escape(label)));
    }
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, label: &str, value: u64) -> CounterSample {
        CounterSample {
            name: name.to_string(),
            label: label.to_string(),
            value,
        }
    }

    #[test]
    fn merge_sums_counters_and_merges_histograms() {
        let mut a = Snapshot {
            counters: vec![sample("softcell_x_total", "shard=0", 3)],
            ..Default::default()
        };
        let mut buckets = vec![0u64; BUCKETS];
        buckets[7] = 10; // ten samples of ~100
        a.histograms.push(HistogramSample::from_buckets(
            "softcell_lat_ns".into(),
            String::new(),
            buckets.clone(),
            1000,
            120,
        ));
        let mut b = Snapshot {
            counters: vec![
                sample("softcell_x_total", "shard=0", 4),
                sample("softcell_x_total", "shard=1", 5),
            ],
            ..Default::default()
        };
        buckets[14] = 1; // one outlier of ~10_000
        buckets[7] = 0;
        b.histograms.push(HistogramSample::from_buckets(
            "softcell_lat_ns".into(),
            String::new(),
            buckets,
            10_000,
            10_000,
        ));
        a.merge(&b);
        assert_eq!(a.counter_labeled("softcell_x_total", "shard=0"), 7);
        assert_eq!(a.counter("softcell_x_total"), 12);
        let h = a.histogram("softcell_lat_ns").unwrap();
        assert_eq!(h.count, 11);
        assert_eq!(h.sum, 11_000);
        assert_eq!(h.max, 10_000);
        assert_eq!(h.p50, 127);
        assert_eq!(h.p99, 16_383);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut snap = Snapshot {
            counters: vec![sample("softcell_x_total", "shard=2", 9)],
            ..Default::default()
        };
        let mut buckets = vec![0u64; BUCKETS];
        buckets[1] = 2;
        buckets[2] = 1;
        snap.histograms.push(HistogramSample::from_buckets(
            "softcell_lat_ns".into(),
            String::new(),
            buckets,
            7,
            3,
        ));
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE softcell_x_total counter\n"));
        assert!(text.contains("softcell_x_total{shard=\"2\"} 9\n"));
        assert!(text.contains("# TYPE softcell_lat_ns histogram\n"));
        assert!(text.contains("softcell_lat_ns_bucket{le=\"1\"} 2\n"));
        assert!(
            text.contains("softcell_lat_ns_bucket{le=\"3\"} 3\n"),
            "cumulative"
        );
        assert!(text.contains("softcell_lat_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("softcell_lat_ns_sum 7\n"));
        assert!(text.contains("softcell_lat_ns_count 3\n"));
    }

    #[test]
    fn prometheus_escapes_label_values_and_sanitizes_names() {
        let snap = Snapshot {
            counters: vec![
                sample("softcell bad-metric_total", "site=a\"b\\c\nd", 1),
                sample("9leading_total", "", 2),
            ],
            ..Default::default()
        };
        let text = snap.to_prometheus();
        assert!(
            text.contains("softcell_bad_metric_total{site=\"a\\\"b\\\\c\\nd\"} 1\n"),
            "value escaped, name sanitized: {text}"
        );
        assert!(
            text.contains("# TYPE softcell_bad_metric_total counter\n"),
            "TYPE line uses the sanitized name"
        );
        assert!(
            text.contains("_9leading_total 2\n"),
            "leading digit guarded"
        );
        // the raw newline must not survive into the exposition: every
        // sample line parses as `name{labels} value`
        assert!(text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .all(|l| l
                .rsplit_once(' ')
                .is_some_and(|(_, v)| v.parse::<u64>().is_ok())));
    }

    #[test]
    fn prom_label_escapes_and_sanitizes_keys() {
        assert_eq!(prom_escape("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(prom_sanitize_name("softcell_ok_total"), "softcell_ok_total");
        assert_eq!(prom_sanitize_name("has space-dash"), "has_space_dash");
        assert_eq!(prom_sanitize_name(""), "_");
        assert_eq!(prom_label("bad key=v\"w", None), "{bad_key=\"v\\\"w\"}");
    }

    fn span(trace: u64, id: u64, parent: u64, kind: &str, s: u64, e: u64) -> SpanSample {
        SpanSample {
            trace_id: trace,
            span_id: id,
            parent,
            kind: kind.to_string(),
            start_us: s,
            end_us: e,
            shard: -1,
            label: 0,
        }
    }

    #[test]
    fn chrome_trace_exports_only_complete_traces() {
        let snap = Snapshot {
            spans: vec![
                span(1, 10, 0, "root", 0, 100),
                span(1, 11, 10, "child", 10, 40),
                // parent 99 was evicted from the ring: trace 2 is
                // incomplete and must not be exported
                span(2, 20, 99, "orphan", 5, 6),
            ],
            ..Default::default()
        };
        let traces = snap.complete_traces();
        assert!(traces.contains_key(&1));
        assert!(!traces.contains_key(&2));
        let json = snap.to_chrome_trace();
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"root\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"dur\":30"), "child runs 10..40");
        assert!(!json.contains("orphan"));
    }

    #[test]
    fn critical_path_charges_gaps_to_the_parent() {
        // root [0,100] with children [10,40] and [60,90]: the root's
        // self-time on the blocking chain is the three uncovered gaps
        // (0-10, 40-60, 90-100) = 40 µs.
        let snap = Snapshot {
            spans: vec![
                span(1, 1, 0, "root", 0, 100),
                span(1, 2, 1, "early", 10, 40),
                span(1, 3, 1, "late", 60, 90),
            ],
            ..Default::default()
        };
        let attrib = snap.critical_path();
        let get = |k: &str| attrib.iter().find(|a| a.kind == k).expect(k).clone();
        assert_eq!(get("root").total_us, 100);
        assert_eq!(get("root").critical_us, 40);
        assert_eq!(get("early").critical_us, 30);
        assert_eq!(get("late").critical_us, 30);
        assert_eq!(attrib[0].kind, "root", "sorted by critical share");
        let text = snap.report();
        assert!(text.contains("critical path"), "report has the table");
        assert!(text.contains("spans: 3 retained"));
    }

    #[test]
    fn report_lists_nonzero_metrics() {
        let snap = Snapshot {
            counters: vec![
                sample("softcell_seen_total", "", 5),
                sample("softcell_never_total", "", 0),
            ],
            ..Default::default()
        };
        let text = snap.report();
        assert!(text.contains("softcell_seen_total"));
        assert!(!text.contains("softcell_never_total"), "zeros elided");
    }
}
