//! Low-overhead causal tracing with cross-layer context propagation
//! (DESIGN.md §15).
//!
//! Aggregates (counters, histograms) say *how much*; the journal says
//! *in what order*; traces say *why this one was slow*. A trace is a
//! tree of [`SpanRecord`]s sharing one `trace_id`: the root is opened
//! where an operation enters the system (an agent round-trip, a replica
//! proposal, a campaign slice), children hang off it through every
//! layer the operation crosses — including across the wire, where the
//! context rides a 16-byte frame trailer (see `softcell-ctlchan`).
//!
//! Cost discipline:
//!
//! * Tracing is **off by default** ([`Tracer::set_sampling`] arms it).
//!   A disarmed root costs one relaxed load; a child under an inactive
//!   context costs one branch.
//! * Armed, roots are **sampled 1-in-N**; unsampled roots still read
//!   the clock and are recorded *alone* if they exceed the slow-outlier
//!   threshold, so tail latency is never invisible.
//! * Records land in a bounded ring (oldest evicted, eviction counted)
//!   — a day-long run cannot grow without bound.
//! * Under the `telemetry-off` feature every primitive here compiles
//!   to a no-op: [`Span`] is a ZST, clocks are never read, and
//!   [`TraceContext`]s are always [`TraceContext::NONE`] (frames stay
//!   untraced). Only the context *struct* survives, because it is wire
//!   data.
//!
//! Spans are **RAII-only**: [`Span`] records itself on drop, so an
//! early return or panic cannot leak an open span, and the analyzer's
//! `span-guard` check rejects manual `span_start`/`span_end` pairing.
//! For intervals whose start happened on another thread (queue waits),
//! [`Tracer::record_span`] records a completed interval in one call —
//! a single call has nothing to leak.
//!
//! Context flows two ways: explicitly ([`Span::ctx`] into a frame
//! trailer or a queued request, adopted by [`Tracer::span_in`]) and
//! implicitly through a thread-local stack ([`current`]), so deep
//! synchronous call chains — the sharded engine under a worker span —
//! nest without threading a context through every signature.

#[cfg(not(feature = "telemetry-off"))]
use std::cell::RefCell;
#[cfg(not(feature = "telemetry-off"))]
use std::collections::VecDeque;
#[cfg(not(feature = "telemetry-off"))]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "telemetry-off"))]
use std::sync::Mutex;
#[cfg(not(feature = "telemetry-off"))]
use std::sync::OnceLock;
#[cfg(not(feature = "telemetry-off"))]
use std::time::Instant;

/// Default span-ring capacity: enough for several thousand sampled
/// operations' full span trees between snapshots.
pub const DEFAULT_TRACE_CAP: usize = 1 << 16;

/// Default slow-outlier threshold for unsampled roots, in microseconds.
pub const DEFAULT_SLOW_US: u64 = 5_000;

/// The causal identity a span hands to its children — what travels in
/// queued requests and on the wire. `trace_id == 0` means "not traced"
/// ([`TraceContext::NONE`]); `parent` is the span id the next span
/// should hang off.
///
/// This struct is real even under `telemetry-off` (it is wire data),
/// but no code path produces an active one there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// Trace this operation belongs to (0 = none).
    pub trace_id: u64,
    /// Span id to parent the next span under (0 = root).
    pub parent: u64,
}

impl TraceContext {
    /// The inactive context: not part of any trace.
    pub const NONE: TraceContext = TraceContext {
        trace_id: 0,
        parent: 0,
    };

    /// Whether this context carries a live trace.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.trace_id != 0
    }
}

/// Trace context plus enqueue timestamp, carried by queued requests so
/// the dequeuing worker can record the queue wait and parent its work
/// span correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReqTrace {
    /// Causal identity of the enqueued operation.
    pub ctx: TraceContext,
    /// [`now_us`] at enqueue time (0 when untraced).
    pub enqueued_us: u64,
}

impl ReqTrace {
    /// An untraced request.
    pub const NONE: ReqTrace = ReqTrace {
        ctx: TraceContext::NONE,
        enqueued_us: 0,
    };

    /// Stamps `ctx` with the current clock; untraced contexts skip the
    /// clock read entirely.
    #[inline]
    pub fn at_enqueue(ctx: TraceContext) -> ReqTrace {
        if ctx.is_active() {
            ReqTrace {
                ctx,
                enqueued_us: now_us(),
            }
        } else {
            ReqTrace::NONE
        }
    }
}

/// One completed span: a named interval on the shared process timeline,
/// linked into its trace's tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique process-wide).
    pub span_id: u64,
    /// Parent span id (0 for roots).
    pub parent: u64,
    /// Static segment name, e.g. `"ticket_wait"`.
    pub kind: &'static str,
    /// Microseconds since the process trace epoch.
    pub start_us: u64,
    /// End of the interval (≥ `start_us` by construction).
    pub end_us: u64,
    /// Shard the span ran on (-1 = not shard-bound).
    pub shard: i64,
    /// Free-form operand (switch id, peer seat, batch size, …).
    pub label: u64,
}

/// Microseconds since the process-wide trace epoch. All tracers share
/// one epoch, so spans recorded by different registries merge onto one
/// timeline. Returns 0 under `telemetry-off` (no clock read).
#[inline]
pub fn now_us() -> u64 {
    #[cfg(not(feature = "telemetry-off"))]
    {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        let e = EPOCH.get_or_init(Instant::now);
        u64::try_from(e.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
    #[cfg(feature = "telemetry-off")]
    {
        0
    }
}

/// Process-wide id allocator for trace and span ids (never hands out 0).
#[cfg(not(feature = "telemetry-off"))]
#[inline]
fn next_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    // softcell-lint: allow(atomics-order) -- pure id counter, no thread reads it for ordering
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(not(feature = "telemetry-off"))]
thread_local! {
    /// Innermost live span's child context on this thread.
    static CURRENT: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
}

/// The innermost live span's child context on the calling thread, or
/// [`TraceContext::NONE`] outside any span.
#[inline]
pub fn current() -> TraceContext {
    #[cfg(not(feature = "telemetry-off"))]
    {
        CURRENT.with(|c| c.borrow().last().copied().unwrap_or(TraceContext::NONE))
    }
    #[cfg(feature = "telemetry-off")]
    {
        TraceContext::NONE
    }
}

#[cfg(not(feature = "telemetry-off"))]
#[derive(Debug)]
struct TracerInner {
    ring: VecDeque<SpanRecord>,
    cap: usize,
    dropped: u64,
}

/// A bounded ring of completed [`SpanRecord`]s plus the sampling
/// policy. One lives in every [`Registry`](crate::Registry);
/// instrumentation sites use the global registry's tracer so client-
/// and server-side spans of one process land in one ring.
#[derive(Debug)]
pub struct Tracer {
    #[cfg(not(feature = "telemetry-off"))]
    inner: Mutex<TracerInner>,
    /// Sample 1 root in N (0 = tracing disabled).
    #[cfg(not(feature = "telemetry-off"))]
    sample_every: AtomicU64,
    /// Unsampled roots slower than this still record (µs).
    #[cfg(not(feature = "telemetry-off"))]
    slow_us: AtomicU64,
    /// Root arrival counter driving the 1-in-N decision.
    #[cfg(not(feature = "telemetry-off"))]
    arrivals: AtomicU64,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::with_capacity(DEFAULT_TRACE_CAP)
    }
}

impl Tracer {
    /// Creates a disabled tracer whose ring holds at most `cap` spans.
    pub fn with_capacity(cap: usize) -> Tracer {
        #[cfg(feature = "telemetry-off")]
        let _ = cap;
        Tracer {
            #[cfg(not(feature = "telemetry-off"))]
            inner: Mutex::new(TracerInner {
                ring: VecDeque::new(),
                cap: cap.max(1),
                dropped: 0,
            }),
            #[cfg(not(feature = "telemetry-off"))]
            sample_every: AtomicU64::new(0),
            #[cfg(not(feature = "telemetry-off"))]
            slow_us: AtomicU64::new(DEFAULT_SLOW_US),
            #[cfg(not(feature = "telemetry-off"))]
            arrivals: AtomicU64::new(0),
        }
    }

    /// Arms tracing: sample one root in `every` (0 disarms), and record
    /// any unsampled root slower than `slow_us` microseconds.
    pub fn set_sampling(&self, every: u64, slow_us: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        {
            // softcell-lint: allow(atomics-order) -- pure config cell, readers tolerate staleness
            self.slow_us.store(slow_us, Ordering::Relaxed);
            // softcell-lint: allow(atomics-order) -- pure config cell, readers tolerate staleness
            self.sample_every.store(every, Ordering::Relaxed);
        }
        #[cfg(feature = "telemetry-off")]
        let _ = (every, slow_us);
    }

    /// Whether any root could currently record.
    #[inline]
    pub fn is_armed(&self) -> bool {
        #[cfg(not(feature = "telemetry-off"))]
        {
            // softcell-lint: allow(atomics-order) -- pure config cell, readers tolerate staleness
            self.sample_every.load(Ordering::Relaxed) != 0
        }
        #[cfg(feature = "telemetry-off")]
        {
            false
        }
    }

    /// Opens a root span: makes the 1-in-N sampling decision and, when
    /// unsampled but armed, arms the slow-outlier shadow capture.
    #[inline]
    pub fn root(&self, kind: &'static str) -> Span<'_> {
        #[cfg(not(feature = "telemetry-off"))]
        {
            // softcell-lint: allow(atomics-order) -- pure config cell, readers tolerate staleness
            let every = self.sample_every.load(Ordering::Relaxed);
            if every == 0 {
                return Span::disabled();
            }
            // softcell-lint: allow(atomics-order) -- pure counter, only sampled modulo matters
            let n = self.arrivals.fetch_add(1, Ordering::Relaxed);
            if n.is_multiple_of(every) {
                Span::open(self, kind, next_id(), 0, SpanMode::Sampled)
            } else {
                Span::open(self, kind, next_id(), 0, SpanMode::Shadow)
            }
        }
        #[cfg(feature = "telemetry-off")]
        {
            let _ = kind;
            Span::disabled()
        }
    }

    /// Opens a child span under an explicit context (a frame trailer, a
    /// queued request). Inactive contexts yield a no-op span, so the
    /// sampling decision made at the root propagates for free.
    #[inline]
    pub fn span_in(&self, ctx: TraceContext, kind: &'static str) -> Span<'_> {
        #[cfg(not(feature = "telemetry-off"))]
        {
            if !ctx.is_active() {
                return Span::disabled();
            }
            Span::open_in(self, kind, ctx)
        }
        #[cfg(feature = "telemetry-off")]
        {
            let _ = (ctx, kind);
            Span::disabled()
        }
    }

    /// Opens a child span under the thread's current context (the
    /// innermost live [`Span`] on this thread).
    #[inline]
    pub fn span(&self, kind: &'static str) -> Span<'_> {
        self.span_in(current(), kind)
    }

    /// Records a completed interval in one call — for waits whose start
    /// was stamped on another thread (queue waits). Being a single call
    /// it cannot leak an open span, which is why it coexists with the
    /// `span-guard` analyzer check.
    #[inline]
    pub fn record_span(
        &self,
        ctx: TraceContext,
        kind: &'static str,
        start_us: u64,
        end_us: u64,
        shard: i64,
        label: u64,
    ) {
        #[cfg(not(feature = "telemetry-off"))]
        {
            if !ctx.is_active() {
                return;
            }
            self.push(SpanRecord {
                trace_id: ctx.trace_id,
                span_id: next_id(),
                parent: ctx.parent,
                kind,
                start_us,
                end_us: end_us.max(start_us),
                shard,
                label,
            });
        }
        #[cfg(feature = "telemetry-off")]
        let _ = (ctx, kind, start_us, end_us, shard, label);
    }

    #[cfg(not(feature = "telemetry-off"))]
    fn push(&self, rec: SpanRecord) {
        let mut inner = self.inner.lock().expect("tracer poisoned");
        if inner.ring.len() == inner.cap {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(rec);
    }

    /// The retained spans, oldest first.
    pub fn records(&self) -> Vec<SpanRecord> {
        #[cfg(not(feature = "telemetry-off"))]
        {
            let inner = self.inner.lock().expect("tracer poisoned");
            inner.ring.iter().copied().collect()
        }
        #[cfg(feature = "telemetry-off")]
        {
            Vec::new()
        }
    }

    /// Spans evicted from the ring since creation.
    pub fn dropped(&self) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.inner.lock().expect("tracer poisoned").dropped
        }
        #[cfg(feature = "telemetry-off")]
        {
            0
        }
    }
}

#[cfg(not(feature = "telemetry-off"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpanMode {
    /// Records unconditionally; children propagate.
    Sampled,
    /// Unsampled root: records alone only if it crosses the slow
    /// threshold; children see an inactive context.
    Shadow,
}

/// An open span, recorded into its [`Tracer`] on drop (RAII — the only
/// way to close a span). While live it is the thread's [`current`]
/// context, so nested spans parent correctly without plumbing.
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct Span<'a> {
    #[cfg(not(feature = "telemetry-off"))]
    live: Option<LiveSpan<'a>>,
    #[cfg(feature = "telemetry-off")]
    _tracer: std::marker::PhantomData<&'a Tracer>,
}

#[cfg(not(feature = "telemetry-off"))]
struct LiveSpan<'a> {
    tracer: &'a Tracer,
    trace_id: u64,
    span_id: u64,
    parent: u64,
    kind: &'static str,
    start_us: u64,
    shard: i64,
    label: u64,
    mode: SpanMode,
    /// Whether this span pushed onto the thread-local context stack.
    pushed: bool,
}

impl<'a> Span<'a> {
    /// A span that records nothing and exposes an inactive context.
    #[inline]
    pub fn disabled() -> Span<'a> {
        Span {
            #[cfg(not(feature = "telemetry-off"))]
            live: None,
            #[cfg(feature = "telemetry-off")]
            _tracer: std::marker::PhantomData,
        }
    }

    #[cfg(not(feature = "telemetry-off"))]
    fn open(
        tracer: &'a Tracer,
        kind: &'static str,
        trace_id: u64,
        parent: u64,
        mode: SpanMode,
    ) -> Span<'a> {
        let span_id = next_id();
        let pushed = mode == SpanMode::Sampled;
        if pushed {
            CURRENT.with(|c| {
                c.borrow_mut().push(TraceContext {
                    trace_id,
                    parent: span_id,
                })
            });
        }
        Span {
            live: Some(LiveSpan {
                tracer,
                trace_id,
                span_id,
                parent,
                kind,
                start_us: now_us(),
                shard: -1,
                label: 0,
                mode,
                pushed,
            }),
        }
    }

    #[cfg(not(feature = "telemetry-off"))]
    fn open_in(tracer: &'a Tracer, kind: &'static str, ctx: TraceContext) -> Span<'a> {
        Span::open(tracer, kind, ctx.trace_id, ctx.parent, SpanMode::Sampled)
    }

    /// The context children of this span should adopt — what goes into
    /// a frame trailer or queued request. Inactive for disabled and
    /// shadow spans.
    #[inline]
    pub fn ctx(&self) -> TraceContext {
        #[cfg(not(feature = "telemetry-off"))]
        {
            match &self.live {
                Some(l) if l.mode == SpanMode::Sampled => TraceContext {
                    trace_id: l.trace_id,
                    parent: l.span_id,
                },
                _ => TraceContext::NONE,
            }
        }
        #[cfg(feature = "telemetry-off")]
        {
            TraceContext::NONE
        }
    }

    /// Whether this span will record unconditionally.
    #[inline]
    pub fn is_sampled(&self) -> bool {
        self.ctx().is_active()
    }

    /// Labels the span with the shard it ran on.
    #[inline]
    pub fn set_shard(&mut self, shard: usize) {
        #[cfg(not(feature = "telemetry-off"))]
        if let Some(l) = &mut self.live {
            l.shard = shard as i64;
        }
        #[cfg(feature = "telemetry-off")]
        let _ = shard;
    }

    /// Attaches the free-form operand (switch id, peer seat, count…).
    #[inline]
    pub fn set_label(&mut self, label: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        if let Some(l) = &mut self.live {
            l.label = label;
        }
        #[cfg(feature = "telemetry-off")]
        let _ = label;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        #[cfg(not(feature = "telemetry-off"))]
        if let Some(l) = self.live.take() {
            if l.pushed {
                CURRENT.with(|c| {
                    let mut stack = c.borrow_mut();
                    // Guards drop LIFO; pop defensively by identity in
                    // case a guard was moved across an unusual scope.
                    if let Some(pos) = stack.iter().rposition(|t| t.parent == l.span_id) {
                        stack.remove(pos);
                    }
                });
            }
            let end_us = now_us();
            let record = match l.mode {
                SpanMode::Sampled => true,
                SpanMode::Shadow => {
                    // softcell-lint: allow(atomics-order) -- pure config cell, readers tolerate staleness
                    let slow = l.tracer.slow_us.load(Ordering::Relaxed);
                    slow > 0 && end_us.saturating_sub(l.start_us) >= slow
                }
            };
            if record {
                l.tracer.push(SpanRecord {
                    trace_id: l.trace_id,
                    span_id: l.span_id,
                    parent: l.parent,
                    kind: l.kind,
                    start_us: l.start_us,
                    end_us: end_us.max(l.start_us),
                    shard: l.shard,
                    label: l.label,
                });
            }
        }
    }
}

#[cfg(all(test, not(feature = "telemetry-off")))]
mod tests {
    use super::*;

    #[test]
    fn disarmed_tracer_records_nothing() {
        let t = Tracer::default();
        {
            let sp = t.root("op");
            assert!(!sp.is_sampled());
            assert_eq!(sp.ctx(), TraceContext::NONE);
        }
        assert!(t.records().is_empty());
    }

    #[test]
    fn sampled_roots_nest_children_via_thread_context() {
        let t = Tracer::default();
        t.set_sampling(1, 0);
        let (root_ctx, child_ctx) = {
            let root = t.root("op");
            assert!(root.is_sampled());
            let rc = root.ctx();
            let child = t.span("inner");
            (rc, child.ctx())
        };
        let recs = t.records();
        assert_eq!(recs.len(), 2, "{recs:?}");
        // Children drop first: inner precedes the root in the ring.
        assert_eq!(recs[0].kind, "inner");
        assert_eq!(recs[1].kind, "op");
        assert_eq!(recs[0].trace_id, root_ctx.trace_id);
        assert_eq!(recs[0].parent, root_ctx.parent);
        assert_eq!(recs[1].parent, 0);
        assert_eq!(child_ctx.parent, recs[0].span_id);
        assert!(recs[0].start_us >= recs[1].start_us);
    }

    #[test]
    fn one_in_n_sampling_and_inactive_children() {
        let t = Tracer::default();
        t.set_sampling(4, 0);
        let mut sampled = 0;
        for _ in 0..8 {
            let sp = t.root("op");
            if sp.is_sampled() {
                sampled += 1;
            } else {
                // Children of an unsampled root must not record.
                let child = t.span("inner");
                assert!(!child.is_sampled());
            }
        }
        assert_eq!(sampled, 2);
        assert!(t.records().iter().all(|r| r.kind == "op"));
    }

    #[test]
    fn slow_shadow_roots_record_alone() {
        let t = Tracer::default();
        t.set_sampling(u64::MAX, 1); // only the first root samples, 1 µs threshold
        {
            let first = t.root("sampled_root");
            assert!(first.is_sampled(), "arrival 0 always samples");
        }
        {
            let sp = t.root("slow_op");
            assert!(!sp.is_sampled());
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _fast = t.root("fast_op");
        }
        let recs = t.records();
        assert_eq!(recs.len(), 2, "{recs:?}");
        let slow = recs.iter().find(|r| r.kind == "slow_op").expect("captured");
        assert!(slow.end_us - slow.start_us >= 1_000);
        assert!(!recs.iter().any(|r| r.kind == "fast_op"));
    }

    #[test]
    fn explicit_context_adoption_crosses_threads() {
        let t = std::sync::Arc::new(Tracer::default());
        t.set_sampling(1, 0);
        let ctx = {
            let root = t.root("rpc");
            root.ctx()
        };
        let t2 = t.clone();
        std::thread::spawn(move || {
            let mut sp = t2.span_in(ctx, "server_side");
            sp.set_shard(3);
        })
        .join()
        .expect("worker");
        let recs = t.records();
        let server = recs.iter().find(|r| r.kind == "server_side").expect("span");
        assert_eq!(server.trace_id, ctx.trace_id);
        assert_eq!(server.parent, ctx.parent);
        assert_eq!(server.shard, 3);
    }

    #[test]
    fn record_span_is_single_call_and_ring_bounds() {
        let t = Tracer::with_capacity(4);
        t.set_sampling(1, 0);
        let ctx = {
            let root = t.root("op");
            root.ctx()
        };
        for i in 0..10 {
            t.record_span(ctx, "queue_wait", i, i + 5, 2, i);
        }
        assert_eq!(t.records().len(), 4);
        assert_eq!(t.dropped(), 7, "root + 10 waits minus cap 4");
        // Inactive contexts record nothing.
        t.record_span(TraceContext::NONE, "queue_wait", 0, 1, 0, 0);
        assert_eq!(t.dropped(), 7);
    }

    #[test]
    fn req_trace_stamps_only_active_contexts() {
        assert_eq!(ReqTrace::at_enqueue(TraceContext::NONE), ReqTrace::NONE);
        let ctx = TraceContext {
            trace_id: 9,
            parent: 4,
        };
        let rt = ReqTrace::at_enqueue(ctx);
        assert_eq!(rt.ctx, ctx);
    }
}
