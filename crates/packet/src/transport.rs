//! TCP and UDP header wrappers.
//!
//! SoftCell's data plane matches on transport ports (the policy tag lives
//! in the source port, paper §4.1) and its simulator tracks connections by
//! five-tuple plus TCP flags (SYN/FIN delimit flow lifetime for microflow
//! rule timeouts). These wrappers expose exactly those fields in the same
//! checked-buffer style as [`crate::ipv4::Ipv4Packet`].

use std::fmt;

use softcell_types::{Error, Result};

/// Minimum TCP header length (no options).
pub const TCP_HEADER_LEN: usize = 20;
/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;

/// TCP flag bits (subset the simulator uses).
pub mod tcp_flags {
    /// Connection open.
    pub const SYN: u8 = 0x02;
    /// Acknowledgement.
    pub const ACK: u8 = 0x10;
    /// Orderly close.
    pub const FIN: u8 = 0x01;
    /// Abortive close.
    pub const RST: u8 = 0x04;
}

/// A TCP segment backed by a byte buffer.
#[derive(Clone, PartialEq, Eq)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    /// Wraps without validation.
    pub const fn new_unchecked(buffer: T) -> Self {
        TcpSegment { buffer }
    }

    /// Wraps and validates buffer length and data offset.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let seg = TcpSegment { buffer };
        let data = seg.buffer.as_ref();
        if data.len() < TCP_HEADER_LEN {
            return Err(Error::Malformed(format!(
                "buffer {} bytes < 20-byte TCP header",
                data.len()
            )));
        }
        let offset = (data[12] >> 4) as usize * 4;
        if offset < TCP_HEADER_LEN || offset > data.len() {
            return Err(Error::Malformed(format!(
                "TCP data offset {offset} invalid for {}-byte buffer",
                data.len()
            )));
        }
        Ok(seg)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[0], d[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[2], d[3]])
    }

    /// Sequence number.
    pub fn seq_number(&self) -> u32 {
        let d = self.buffer.as_ref();
        u32::from_be_bytes([d[4], d[5], d[6], d[7]])
    }

    /// Acknowledgement number.
    pub fn ack_number(&self) -> u32 {
        let d = self.buffer.as_ref();
        u32::from_be_bytes([d[8], d[9], d[10], d[11]])
    }

    /// Flag byte (low 8 flag bits).
    pub fn flags(&self) -> u8 {
        self.buffer.as_ref()[13]
    }

    /// Whether SYN is set.
    pub fn is_syn(&self) -> bool {
        self.flags() & tcp_flags::SYN != 0
    }

    /// Whether FIN is set.
    pub fn is_fin(&self) -> bool {
        self.flags() & tcp_flags::FIN != 0
    }

    /// Whether RST is set.
    pub fn is_rst(&self) -> bool {
        self.flags() & tcp_flags::RST != 0
    }

    /// Payload after the TCP header.
    pub fn payload(&self) -> &[u8] {
        let offset = (self.buffer.as_ref()[12] >> 4) as usize * 4;
        &self.buffer.as_ref()[offset..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpSegment<T> {
    /// Sets the source port — the access-edge rewrite target.
    pub fn set_src_port(&mut self, port: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the sequence number.
    pub fn set_seq_number(&mut self, seq: u32) {
        self.buffer.as_mut()[4..8].copy_from_slice(&seq.to_be_bytes());
    }

    /// Sets the acknowledgement number.
    pub fn set_ack_number(&mut self, ack: u32) {
        self.buffer.as_mut()[8..12].copy_from_slice(&ack.to_be_bytes());
    }

    /// Sets the data offset to 20 bytes (no options).
    pub fn set_header_len_basic(&mut self) {
        self.buffer.as_mut()[12] = 5 << 4;
    }

    /// Sets the flag byte.
    pub fn set_flags(&mut self, flags: u8) {
        self.buffer.as_mut()[13] = flags;
    }
}

impl<T: AsRef<[u8]>> fmt::Debug for TcpSegment<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TcpSegment {{ {} -> {}, seq {}, flags {:#04x} }}",
            self.src_port(),
            self.dst_port(),
            self.seq_number(),
            self.flags()
        )
    }
}

/// Builds a minimal 20-byte TCP header plus payload.
pub fn build_tcp(src_port: u16, dst_port: u16, seq: u32, flags: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = vec![0u8; TCP_HEADER_LEN + payload.len()];
    buf[TCP_HEADER_LEN..].copy_from_slice(payload);
    let mut seg = TcpSegment::new_unchecked(&mut buf[..]);
    seg.set_src_port(src_port);
    seg.set_dst_port(dst_port);
    seg.set_seq_number(seq);
    seg.set_header_len_basic();
    seg.set_flags(flags);
    buf
}

/// A UDP datagram backed by a byte buffer.
#[derive(Clone, PartialEq, Eq)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wraps without validation.
    pub const fn new_unchecked(buffer: T) -> Self {
        UdpDatagram { buffer }
    }

    /// Wraps and validates buffer and length field.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let dg = UdpDatagram { buffer };
        let data = dg.buffer.as_ref();
        if data.len() < UDP_HEADER_LEN {
            return Err(Error::Malformed(format!(
                "buffer {} bytes < 8-byte UDP header",
                data.len()
            )));
        }
        let len = u16::from_be_bytes([data[4], data[5]]) as usize;
        if len < UDP_HEADER_LEN || len > data.len() {
            return Err(Error::Malformed(format!(
                "UDP length {len} invalid for {}-byte buffer",
                data.len()
            )));
        }
        Ok(dg)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[0], d[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[2], d[3]])
    }

    /// UDP length field.
    pub fn len_field(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[4], d[5]])
    }

    /// Payload after the UDP header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[UDP_HEADER_LEN..self.len_field() as usize]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagram<T> {
    /// Sets the source port — the access-edge rewrite target.
    pub fn set_src_port(&mut self, port: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the UDP length field.
    pub fn set_len_field(&mut self, len: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&len.to_be_bytes());
    }
}

impl<T: AsRef<[u8]>> fmt::Debug for UdpDatagram<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "UdpDatagram {{ {} -> {}, len {} }}",
            self.src_port(),
            self.dst_port(),
            self.len_field()
        )
    }
}

/// Builds a UDP header plus payload.
pub fn build_udp(src_port: u16, dst_port: u16, payload: &[u8]) -> Vec<u8> {
    let total = UDP_HEADER_LEN + payload.len();
    let mut buf = vec![0u8; total];
    buf[UDP_HEADER_LEN..].copy_from_slice(payload);
    let mut dg = UdpDatagram::new_unchecked(&mut buf[..]);
    dg.set_src_port(src_port);
    dg.set_dst_port(dst_port);
    dg.set_len_field(total as u16);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tcp_build_parse_round_trips() {
        let buf = build_tcp(49152, 80, 1000, tcp_flags::SYN, b"GET /");
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(seg.src_port(), 49152);
        assert_eq!(seg.dst_port(), 80);
        assert_eq!(seg.seq_number(), 1000);
        assert!(seg.is_syn());
        assert!(!seg.is_fin());
        assert_eq!(seg.payload(), b"GET /");
    }

    #[test]
    fn tcp_rejects_short_and_bad_offset() {
        assert!(TcpSegment::new_checked(&[0u8; 19][..]).is_err());
        let mut buf = build_tcp(1, 2, 0, 0, &[]);
        buf[12] = 0xf0; // offset 60 > buffer
        assert!(TcpSegment::new_checked(&buf[..]).is_err());
        buf[12] = 0x10; // offset 4 < 20
        assert!(TcpSegment::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn tcp_flag_predicates() {
        let buf = build_tcp(1, 2, 0, tcp_flags::FIN | tcp_flags::ACK, &[]);
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        assert!(seg.is_fin() && !seg.is_syn() && !seg.is_rst());
    }

    #[test]
    fn udp_build_parse_round_trips() {
        let buf = build_udp(5060, 5060, b"INVITE");
        let dg = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(dg.src_port(), 5060);
        assert_eq!(dg.dst_port(), 5060);
        assert_eq!(dg.payload(), b"INVITE");
    }

    #[test]
    fn udp_rejects_short_and_bad_len() {
        assert!(UdpDatagram::new_checked(&[0u8; 7][..]).is_err());
        let mut buf = build_udp(1, 2, b"x");
        buf[4] = 0xff; // length 0xff__ way beyond buffer
        assert!(UdpDatagram::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn src_port_rewrite_in_place() {
        let mut buf = build_tcp(1111, 80, 0, 0, &[]);
        let mut seg = TcpSegment::new_unchecked(&mut buf[..]);
        seg.set_src_port(2222);
        assert_eq!(TcpSegment::new_checked(&buf[..]).unwrap().src_port(), 2222);
    }

    proptest! {
        #[test]
        fn prop_tcp_round_trip(sp in any::<u16>(), dp in any::<u16>(), seq in any::<u32>(), flags in any::<u8>()) {
            let buf = build_tcp(sp, dp, seq, flags, &[]);
            let seg = TcpSegment::new_checked(&buf[..]).unwrap();
            prop_assert_eq!(seg.src_port(), sp);
            prop_assert_eq!(seg.dst_port(), dp);
            prop_assert_eq!(seg.seq_number(), seq);
            prop_assert_eq!(seg.flags(), flags);
        }

        #[test]
        fn prop_udp_round_trip(sp in any::<u16>(), dp in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..32)) {
            let buf = build_udp(sp, dp, &payload);
            let dg = UdpDatagram::new_checked(&buf[..]).unwrap();
            prop_assert_eq!(dg.src_port(), sp);
            prop_assert_eq!(dg.dst_port(), dp);
            prop_assert_eq!(dg.payload(), &payload[..]);
        }
    }
}
