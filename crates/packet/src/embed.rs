//! The access-edge rewrite: embedding classification state in headers.
//!
//! SoftCell's asymmetric edge design (paper §4.1) hinges on one trick:
//! instead of encapsulating packets, the *access switch* rewrites the
//! uplink packet's source address to the UE's location-dependent address
//! and its source port to carry the policy tag. The Internet echoes those
//! bits back in the destination fields of return traffic, so the gateway
//! edge forwards downlink packets with plain destination-based rules and
//! performs **no classification at all**.
//!
//! [`AccessRewriter`] implements both directions:
//!
//! * uplink (UE → Internet): permanent src address → LocIP, src port →
//!   `tag | flow_slot`;
//! * downlink (Internet → UE, at the *new* access switch): LocIP dst →
//!   permanent address, embedded dst port → the UE's original port.

use std::net::Ipv4Addr;

use softcell_types::{AddressingScheme, LocIp, PolicyTag, PortEmbedding, Result};

use crate::flow::{HeaderView, Protocol};
use crate::ipv4::Ipv4Packet;
use crate::transport::{TcpSegment, UdpDatagram};

/// What the embedding in one packet direction decodes to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EmbeddedState {
    /// The UE's location-dependent identity.
    pub loc: LocIp,
    /// The policy tag carried in the port.
    pub tag: PolicyTag,
    /// The per-UE flow slot in the low port bits.
    pub flow_slot: u16,
}

/// Performs and reverses the SoftCell header embedding.
#[derive(Clone, Copy, Debug)]
pub struct AccessRewriter {
    scheme: AddressingScheme,
    ports: PortEmbedding,
}

impl AccessRewriter {
    /// Creates a rewriter for a given addressing scheme and port layout.
    pub fn new(scheme: AddressingScheme, ports: PortEmbedding) -> Self {
        AccessRewriter { scheme, ports }
    }

    /// The addressing scheme in use.
    pub fn scheme(&self) -> &AddressingScheme {
        &self.scheme
    }

    /// The port embedding in use.
    pub fn ports(&self) -> &PortEmbedding {
        &self.ports
    }

    /// Rewrites an uplink packet in place: source address becomes the
    /// LocIP for `loc`, source port becomes `tag | flow_slot`. Returns the
    /// rewritten source (address, port) for microflow bookkeeping.
    pub fn uplink_rewrite(
        &self,
        buffer: &mut [u8],
        loc: LocIp,
        tag: PolicyTag,
        flow_slot: u16,
    ) -> Result<(Ipv4Addr, u16)> {
        let loc_addr = self.scheme.encode(loc)?;
        let port = self.ports.encode(tag, flow_slot)?;
        rewrite_src(buffer, loc_addr, port)?;
        Ok((loc_addr, port))
    }

    /// Rewrites a downlink packet in place for final delivery: destination
    /// address/port become the UE's permanent address and original source
    /// port. The caller (access switch) looks these up in its microflow
    /// table keyed by the embedded state.
    pub fn downlink_restore(
        &self,
        buffer: &mut [u8],
        permanent: Ipv4Addr,
        original_port: u16,
    ) -> Result<()> {
        rewrite_dst(buffer, permanent, original_port)
    }

    /// Decodes the embedded state from an *uplink* packet that has already
    /// been rewritten (source fields).
    pub fn extract_uplink(&self, view: &HeaderView) -> Result<EmbeddedState> {
        let loc = self.scheme.decode(view.src())?;
        let (tag, flow_slot) = self.ports.decode(view.src_port());
        Ok(EmbeddedState {
            loc,
            tag,
            flow_slot,
        })
    }

    /// Decodes the embedded state from a *downlink* packet arriving from
    /// the Internet (destination fields) — the piggybacked classification
    /// the gateway and core forward on.
    pub fn extract_downlink(&self, view: &HeaderView) -> Result<EmbeddedState> {
        let loc = self.scheme.decode(view.dst())?;
        let (tag, flow_slot) = self.ports.decode(view.dst_port());
        Ok(EmbeddedState {
            loc,
            tag,
            flow_slot,
        })
    }

    /// Whether a downlink packet's destination is one of our LocIPs.
    pub fn is_downlink_locip(&self, view: &HeaderView) -> bool {
        self.scheme.is_loc_ip(view.dst())
    }
}

/// Rewrites source address and port of a wire packet, restoring checksums.
/// Shared with the gateway NAT, which rewrites to public endpoints.
pub(crate) fn rewrite_src_public(buffer: &mut [u8], addr: Ipv4Addr, port: u16) -> Result<()> {
    rewrite_src(buffer, addr, port)
}

/// Rewrites destination address and port of a wire packet, restoring
/// checksums. Shared with the gateway NAT.
pub(crate) fn rewrite_dst_public(buffer: &mut [u8], addr: Ipv4Addr, port: u16) -> Result<()> {
    rewrite_dst(buffer, addr, port)
}

/// Rewrites source address and port of a wire packet, restoring checksums.
fn rewrite_src(buffer: &mut [u8], addr: Ipv4Addr, port: u16) -> Result<()> {
    let mut ip = Ipv4Packet::new_checked(&mut buffer[..])?;
    ip.set_src_addr(addr);
    let proto = Protocol::from_number(ip.protocol())?;
    match proto {
        Protocol::Tcp => TcpSegment::new_checked(ip.payload_mut())?.set_src_port(port),
        Protocol::Udp => UdpDatagram::new_checked(ip.payload_mut())?.set_src_port(port),
    }
    ip.fill_checksum();
    Ok(())
}

/// Rewrites destination address and port of a wire packet, restoring
/// checksums.
fn rewrite_dst(buffer: &mut [u8], addr: Ipv4Addr, port: u16) -> Result<()> {
    let mut ip = Ipv4Packet::new_checked(&mut buffer[..])?;
    ip.set_dst_addr(addr);
    let proto = Protocol::from_number(ip.protocol())?;
    match proto {
        Protocol::Tcp => TcpSegment::new_checked(ip.payload_mut())?.set_dst_port(port),
        Protocol::Udp => UdpDatagram::new_checked(ip.payload_mut())?.set_dst_port(port),
    }
    ip.fill_checksum();
    Ok(())
}

/// Validation helper shared by rewriters: a packet too short to carry its
/// transport header must be rejected, not silently truncated.
pub fn validate_wire_packet(buffer: &[u8]) -> Result<()> {
    HeaderView::parse(buffer).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{build_flow_packet, FiveTuple};
    use proptest::prelude::*;
    use softcell_types::{BaseStationId, UeId};

    fn rewriter() -> AccessRewriter {
        AccessRewriter::new(
            AddressingScheme::default_scheme(),
            PortEmbedding::default_embedding(),
        )
    }

    fn uplink_packet() -> Vec<u8> {
        // UE's own view: permanent address, its own ephemeral port.
        build_flow_packet(
            FiveTuple {
                src: Ipv4Addr::new(100, 64, 0, 7), // permanent (CGN space)
                dst: Ipv4Addr::new(93, 184, 216, 34),
                src_port: 50123,
                dst_port: 443,
                proto: Protocol::Tcp,
            },
            64,
            0,
            b"req",
        )
    }

    #[test]
    fn uplink_rewrite_embeds_loc_and_tag() {
        let rw = rewriter();
        let mut buf = uplink_packet();
        let loc = LocIp::new(BaseStationId(37), UeId(10));
        let (addr, port) = rw.uplink_rewrite(&mut buf, loc, PolicyTag(2), 5).unwrap();

        let view = HeaderView::parse(&buf).unwrap();
        assert_eq!(view.src(), addr);
        assert_eq!(view.src_port(), port);
        // destination untouched
        assert_eq!(view.dst(), Ipv4Addr::new(93, 184, 216, 34));
        assert_eq!(view.dst_port(), 443);
        // checksum restored
        assert!(Ipv4Packet::new_checked(&buf[..]).unwrap().verify_checksum());

        let state = rw.extract_uplink(&view).unwrap();
        assert_eq!(state.loc, loc);
        assert_eq!(state.tag, PolicyTag(2));
        assert_eq!(state.flow_slot, 5);
    }

    #[test]
    fn return_traffic_piggybacks_state_in_dst() {
        // Simulate the Internet echoing the packet back: swap the tuple.
        let rw = rewriter();
        let mut buf = uplink_packet();
        let loc = LocIp::new(BaseStationId(99), UeId(3));
        rw.uplink_rewrite(&mut buf, loc, PolicyTag(7), 1).unwrap();
        let fwd = HeaderView::parse(&buf).unwrap();

        let ret = build_flow_packet(fwd.tuple.reverse(), 64, 0, b"resp");
        let ret_view = HeaderView::parse(&ret).unwrap();
        assert!(rw.is_downlink_locip(&ret_view));
        let state = rw.extract_downlink(&ret_view).unwrap();
        assert_eq!(state.loc, loc);
        assert_eq!(state.tag, PolicyTag(7));
    }

    #[test]
    fn downlink_restore_delivers_to_permanent_address() {
        let rw = rewriter();
        let mut buf = uplink_packet();
        let loc = LocIp::new(BaseStationId(5), UeId(1));
        rw.uplink_rewrite(&mut buf, loc, PolicyTag(0), 0).unwrap();
        let fwd = HeaderView::parse(&buf).unwrap();
        let mut ret = build_flow_packet(fwd.tuple.reverse(), 64, 0, b"resp");

        rw.downlink_restore(&mut ret, Ipv4Addr::new(100, 64, 0, 7), 50123)
            .unwrap();
        let view = HeaderView::parse(&ret).unwrap();
        assert_eq!(view.dst(), Ipv4Addr::new(100, 64, 0, 7));
        assert_eq!(view.dst_port(), 50123);
        assert!(Ipv4Packet::new_checked(&ret[..]).unwrap().verify_checksum());
    }

    #[test]
    fn udp_rewrite_works_too() {
        let rw = rewriter();
        let mut buf = build_flow_packet(
            FiveTuple {
                src: Ipv4Addr::new(100, 64, 0, 7),
                dst: Ipv4Addr::new(8, 8, 8, 8),
                src_port: 40000,
                dst_port: 53,
                proto: Protocol::Udp,
            },
            64,
            0,
            b"query",
        );
        let loc = LocIp::new(BaseStationId(1), UeId(2));
        rw.uplink_rewrite(&mut buf, loc, PolicyTag(3), 9).unwrap();
        let view = HeaderView::parse(&buf).unwrap();
        assert_eq!(rw.extract_uplink(&view).unwrap().loc, loc);
    }

    #[test]
    fn extract_rejects_non_locip() {
        let rw = rewriter();
        let buf = uplink_packet(); // src 100.64/10 is not under carrier 10/8
        let view = HeaderView::parse(&buf).unwrap();
        assert!(rw.extract_uplink(&view).is_err());
        assert!(!rw.is_downlink_locip(&view));
    }

    #[test]
    fn rewrite_rejects_truncated_packet() {
        let rw = rewriter();
        let mut short = vec![0x45u8; 21]; // valid-looking IP byte, no transport
        assert!(rw
            .uplink_rewrite(
                &mut short,
                LocIp::new(BaseStationId(0), UeId(0)),
                PolicyTag(0),
                0
            )
            .is_err());
    }

    proptest! {
        #[test]
        fn prop_embed_extract_round_trips(
            bs in 0u32..32768, ue in 0u16..512,
            tag in 0u16..1024, slot in 0u16..64,
        ) {
            let rw = rewriter();
            let mut buf = uplink_packet();
            let loc = LocIp::new(BaseStationId(bs), UeId(ue));
            rw.uplink_rewrite(&mut buf, loc, PolicyTag(tag), slot).unwrap();
            let view = HeaderView::parse(&buf).unwrap();
            let state = rw.extract_uplink(&view).unwrap();
            prop_assert_eq!(state.loc, loc);
            prop_assert_eq!(state.tag, PolicyTag(tag));
            prop_assert_eq!(state.flow_slot, slot);
            // and the checksum survives
            prop_assert!(Ipv4Packet::new_checked(&buf[..]).unwrap().verify_checksum());
        }
    }
}
