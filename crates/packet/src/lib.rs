//! Packet wire format for the SoftCell data plane.
//!
//! Follows the smoltcp idiom: a packet type is a thin wrapper around a byte
//! buffer (`Ipv4Packet<T: AsRef<[u8]>>`), validated once on construction
//! (`new_checked`) and then accessed through typed getters/setters. Mutable
//! buffers (`T: AsMut<[u8]>`) allow in-place rewriting, which is exactly
//! what SoftCell's access switches do: translate the permanent UE address
//! to the location-dependent address and push the policy tag into the
//! source port (paper §4.1, Fig. 4).
//!
//! Modules:
//! * [`ipv4`] — IPv4 header parsing/emission with checksums.
//! * [`transport`] — TCP segments and UDP datagrams (ports + the fields the
//!   simulator needs).
//! * [`flow`] — five-tuples and header views extracted from wire packets;
//!   what the switch pipeline matches on.
//! * [`embed`] — the access-edge rewrite: permanent address ⇄ LocIP, tag
//!   embedding, and the inverse for downlink delivery.
//! * [`nat`] — per-flow NAT at the gateway edge (paper §4.1 privacy
//!   discussion): a fresh public (address, port) per flow, uncorrelated
//!   with UE location.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod embed;
pub mod flow;
pub mod ipv4;
pub mod nat;
pub mod transport;

pub use embed::AccessRewriter;
pub use flow::{build_flow_packet, FiveTuple, HeaderView, Protocol};
pub use ipv4::Ipv4Packet;
pub use nat::{FlowNat, NatBinding};
pub use transport::{TcpSegment, UdpDatagram};
