//! Five-tuples and header views — what the data plane matches on.
//!
//! A [`HeaderView`] is the parsed summary of one wire packet (addresses,
//! ports, protocol, DSCP); switch pipelines match against it without
//! re-walking the byte buffer at every table. A [`FiveTuple`] identifies a
//! flow; its [`FiveTuple::reverse`] is the key property SoftCell leans on:
//! return traffic from the Internet carries the embedded LocIP + tag in
//! its *destination* fields, mirroring what the access edge put in the
//! *source* fields (paper §4.1).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

use softcell_types::{Error, Result};

use crate::ipv4::Ipv4Packet;
use crate::transport::{TcpSegment, UdpDatagram};

/// Transport protocol, restricted to what cellular service policies
/// classify on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Protocol {
    /// TCP (IP protocol 6).
    Tcp,
    /// UDP (IP protocol 17).
    Udp,
}

impl Protocol {
    /// IP protocol number.
    pub const fn number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
        }
    }

    /// From an IP protocol number.
    pub fn from_number(n: u8) -> Result<Self> {
        match n {
            6 => Ok(Protocol::Tcp),
            17 => Ok(Protocol::Udp),
            other => Err(Error::Malformed(format!("unsupported IP protocol {other}"))),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => write!(f, "tcp"),
            Protocol::Udp => write!(f, "udp"),
        }
    }
}

/// A transport five-tuple identifying one direction of a flow.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Protocol,
}

impl FiveTuple {
    /// The five-tuple of the opposite direction.
    pub fn reverse(&self) -> FiveTuple {
        FiveTuple {
            src: self.dst,
            dst: self.src,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// Direction-insensitive key: both directions of a connection map to
    /// the same value. Used to group flow state.
    pub fn canonical(&self) -> FiveTuple {
        let fwd = (self.src, self.src_port);
        let rev = (self.dst, self.dst_port);
        if fwd <= rev {
            *self
        } else {
            self.reverse()
        }
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{}",
            self.proto, self.src, self.src_port, self.dst, self.dst_port
        )
    }
}

/// The parsed header summary of one packet: everything any SoftCell table
/// (microflow, TCAM, exact-tag, LPM) can match on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct HeaderView {
    /// The five-tuple.
    pub tuple: FiveTuple,
    /// DSCP (QoS) marking.
    pub dscp: u8,
    /// TCP flags (zero for UDP).
    pub tcp_flags: u8,
}

impl HeaderView {
    /// Parses the headers of a wire packet (IPv4 + TCP/UDP).
    pub fn parse(buffer: &[u8]) -> Result<HeaderView> {
        let ip = Ipv4Packet::new_checked(buffer)?;
        let proto = Protocol::from_number(ip.protocol())?;
        let (src_port, dst_port, tcp_flags) = match proto {
            Protocol::Tcp => {
                let seg = TcpSegment::new_checked(ip.payload())?;
                (seg.src_port(), seg.dst_port(), seg.flags())
            }
            Protocol::Udp => {
                let dg = UdpDatagram::new_checked(ip.payload())?;
                (dg.src_port(), dg.dst_port(), 0)
            }
        };
        Ok(HeaderView {
            tuple: FiveTuple {
                src: ip.src_addr(),
                dst: ip.dst_addr(),
                src_port,
                dst_port,
                proto,
            },
            dscp: ip.dscp(),
            tcp_flags,
        })
    }

    /// Shorthand accessors used pervasively by match logic.
    pub fn src(&self) -> Ipv4Addr {
        self.tuple.src
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        self.tuple.dst
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        self.tuple.src_port
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        self.tuple.dst_port
    }
}

/// Builds a complete wire packet (IPv4 + transport header + payload) for a
/// five-tuple. The simulator's UEs and Internet hosts use this to source
/// traffic.
pub fn build_flow_packet(tuple: FiveTuple, ttl: u8, tcp_flags: u8, payload: &[u8]) -> Vec<u8> {
    let transport = match tuple.proto {
        Protocol::Tcp => {
            crate::transport::build_tcp(tuple.src_port, tuple.dst_port, 0, tcp_flags, payload)
        }
        Protocol::Udp => crate::transport::build_udp(tuple.src_port, tuple.dst_port, payload),
    };
    crate::ipv4::build_ipv4(tuple.src, tuple.dst, tuple.proto.number(), ttl, &transport)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tuple() -> FiveTuple {
        FiveTuple {
            src: Ipv4Addr::new(10, 0, 0, 10),
            dst: Ipv4Addr::new(93, 184, 216, 34),
            src_port: 49152,
            dst_port: 443,
            proto: Protocol::Tcp,
        }
    }

    #[test]
    fn reverse_is_involutive() {
        let t = tuple();
        assert_eq!(t.reverse().reverse(), t);
        assert_eq!(t.reverse().src, t.dst);
        assert_eq!(t.reverse().dst_port, t.src_port);
    }

    #[test]
    fn canonical_identifies_both_directions() {
        let t = tuple();
        assert_eq!(t.canonical(), t.reverse().canonical());
    }

    #[test]
    fn parse_tcp_packet() {
        let buf = build_flow_packet(tuple(), 64, crate::transport::tcp_flags::SYN, b"x");
        let view = HeaderView::parse(&buf).unwrap();
        assert_eq!(view.tuple, tuple());
        assert_eq!(view.tcp_flags, crate::transport::tcp_flags::SYN);
    }

    #[test]
    fn parse_udp_packet() {
        let t = FiveTuple {
            proto: Protocol::Udp,
            ..tuple()
        };
        let buf = build_flow_packet(t, 64, 0, &[]);
        let view = HeaderView::parse(&buf).unwrap();
        assert_eq!(view.tuple, t);
        assert_eq!(view.tcp_flags, 0);
    }

    #[test]
    fn parse_rejects_unknown_protocol() {
        let buf = crate::ipv4::build_ipv4(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            47, // GRE — not supported
            64,
            &[0u8; 20],
        );
        assert!(HeaderView::parse(&buf).is_err());
    }

    #[test]
    fn protocol_number_round_trips() {
        for p in [Protocol::Tcp, Protocol::Udp] {
            assert_eq!(Protocol::from_number(p.number()).unwrap(), p);
        }
        assert!(Protocol::from_number(1).is_err()); // ICMP unsupported
    }

    proptest! {
        #[test]
        fn prop_header_view_round_trips(
            src in any::<u32>(), dst in any::<u32>(),
            sp in any::<u16>(), dp in any::<u16>(),
            is_tcp in any::<bool>(),
        ) {
            let t = FiveTuple {
                src: Ipv4Addr::from(src),
                dst: Ipv4Addr::from(dst),
                src_port: sp,
                dst_port: dp,
                proto: if is_tcp { Protocol::Tcp } else { Protocol::Udp },
            };
            let buf = build_flow_packet(t, 64, 0, b"payload");
            prop_assert_eq!(HeaderView::parse(&buf).unwrap().tuple, t);
        }

        #[test]
        fn prop_canonical_is_direction_insensitive(
            src in any::<u32>(), dst in any::<u32>(),
            sp in any::<u16>(), dp in any::<u16>(),
        ) {
            let t = FiveTuple {
                src: Ipv4Addr::from(src), dst: Ipv4Addr::from(dst),
                src_port: sp, dst_port: dp, proto: Protocol::Udp,
            };
            prop_assert_eq!(t.canonical(), t.reverse().canonical());
        }
    }
}
