//! Per-flow NAT at the gateway edge.
//!
//! Embedding the LocIP in the source address leaks UE location to Internet
//! servers (an address change reveals a handoff). SoftCell's answer (paper
//! §4.1) is a gateway NAT that picks a **fresh public address and port for
//! every flow**, whether or not the UE moves, so public identifiers cannot
//! be correlated with location. [`FlowNat`] implements exactly that
//! contract: per-flow bindings drawn pseudo-randomly from a public pool,
//! with translation in both directions and explicit release.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use softcell_types::{Error, Ipv4Prefix, Result};

use crate::flow::{FiveTuple, HeaderView, Protocol};

/// One NAT binding: an inner (LocIP-side) flow mapped to a public
/// (address, port) facing the Internet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NatBinding {
    /// The inner five-tuple (source = LocIP + embedded port).
    pub inner: FiveTuple,
    /// The public source address presented to the Internet.
    pub public_addr: Ipv4Addr,
    /// The public source port presented to the Internet.
    pub public_port: u16,
}

/// Key identifying an inbound (Internet → UE) packet's binding.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct InboundKey {
    public_addr: Ipv4Addr,
    public_port: u16,
    remote: Ipv4Addr,
    remote_port: u16,
    proto: Protocol,
}

/// A flow-granularity NAT over a pool of public addresses.
///
/// Allocation is deterministic given the seed (reproducible simulations)
/// but *sequence-dependent*, so successive flows of one UE land on
/// unrelated public endpoints — the privacy property the paper requires.
#[derive(Debug)]
pub struct FlowNat {
    pool: Ipv4Prefix,
    rng_state: u64,
    outbound: HashMap<FiveTuple, NatBinding>,
    inbound: HashMap<InboundKey, NatBinding>,
}

impl FlowNat {
    /// Creates a NAT over `pool` (must hold at least 2 addresses to make
    /// correlation non-trivial) with a deterministic seed.
    pub fn new(pool: Ipv4Prefix, seed: u64) -> Result<Self> {
        if pool.len() > 30 {
            return Err(Error::Config(format!(
                "public pool {pool} too small for flow NAT"
            )));
        }
        Ok(FlowNat {
            pool,
            rng_state: seed | 1,
            outbound: HashMap::new(),
            inbound: HashMap::new(),
        })
    }

    /// Number of live bindings.
    pub fn active(&self) -> usize {
        self.outbound.len()
    }

    /// xorshift64* — small, deterministic, good enough for endpoint
    /// scattering (not security).
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Binds an outbound flow, allocating a fresh public endpoint. If the
    /// flow is already bound, the existing binding is returned (a NAT must
    /// be idempotent per flow).
    pub fn bind_outbound(&mut self, inner: FiveTuple) -> Result<NatBinding> {
        if let Some(b) = self.outbound.get(&inner) {
            return Ok(*b);
        }
        // Rejection-sample an unused (addr, port) pair. The pool is
        // vastly larger than the binding count in practice; cap attempts
        // so a pathological fill degrades to an error, not a spin.
        for _ in 0..1024 {
            let r = self.next_rand();
            let addr_off = (r >> 16) % self.pool.size();
            let public_addr = Ipv4Addr::from(self.pool.raw_bits() + addr_off as u32);
            // Ports below 1024 are left unused, as real CGNs do.
            let public_port = 1024 + (r as u16 % (u16::MAX - 1024));
            let key = InboundKey {
                public_addr,
                public_port,
                remote: inner.dst,
                remote_port: inner.dst_port,
                proto: inner.proto,
            };
            if self.inbound.contains_key(&key) {
                continue;
            }
            let binding = NatBinding {
                inner,
                public_addr,
                public_port,
            };
            self.outbound.insert(inner, binding);
            self.inbound.insert(key, binding);
            return Ok(binding);
        }
        Err(Error::Exhausted(format!(
            "no free public endpoint in {} after 1024 attempts ({} active)",
            self.pool,
            self.active()
        )))
    }

    /// Translates an outbound packet's source to its public endpoint,
    /// in place. Returns the binding used.
    pub fn translate_outbound(&mut self, buffer: &mut [u8]) -> Result<NatBinding> {
        let view = HeaderView::parse(buffer)?;
        let binding = self.bind_outbound(view.tuple)?;
        super::embed::rewrite_src_public(buffer, binding.public_addr, binding.public_port)?;
        Ok(binding)
    }

    /// Looks up the binding for an inbound packet (destination = public
    /// endpoint) without rewriting.
    pub fn lookup_inbound(&self, view: &HeaderView) -> Option<&NatBinding> {
        self.inbound.get(&InboundKey {
            public_addr: view.dst(),
            public_port: view.dst_port(),
            remote: view.src(),
            remote_port: view.src_port(),
            proto: view.tuple.proto,
        })
    }

    /// Translates an inbound packet's destination back to the inner
    /// (LocIP, embedded port), in place.
    pub fn translate_inbound(&self, buffer: &mut [u8]) -> Result<NatBinding> {
        let view = HeaderView::parse(buffer)?;
        let binding = *self.lookup_inbound(&view).ok_or_else(|| {
            Error::NotFound(format!(
                "no NAT binding for inbound {}:{}",
                view.dst(),
                view.dst_port()
            ))
        })?;
        super::embed::rewrite_dst_public(buffer, binding.inner.src, binding.inner.src_port)?;
        Ok(binding)
    }

    /// Releases a binding when its flow ends.
    pub fn release(&mut self, inner: &FiveTuple) -> bool {
        if let Some(b) = self.outbound.remove(inner) {
            self.inbound.remove(&InboundKey {
                public_addr: b.public_addr,
                public_port: b.public_port,
                remote: inner.dst,
                remote_port: inner.dst_port,
                proto: inner.proto,
            });
            true
        } else {
            false
        }
    }

    /// Rebinds every flow of a moved UE onto the same public endpoints but
    /// a new inner source — used when the controller re-homes in-progress
    /// flows. The Internet-visible endpoint must NOT change (that is the
    /// whole point of the NAT), so only the inner side is updated.
    pub fn rehome_inner(&mut self, old_src: Ipv4Addr, new_src: Ipv4Addr) -> usize {
        let moved: Vec<FiveTuple> = self
            .outbound
            .keys()
            .filter(|t| t.src == old_src)
            .copied()
            .collect();
        for old in &moved {
            let mut binding = self.outbound.remove(old).expect("key just listed");
            let new_inner = FiveTuple {
                src: new_src,
                ..*old
            };
            binding.inner = new_inner;
            let key = InboundKey {
                public_addr: binding.public_addr,
                public_port: binding.public_port,
                remote: old.dst,
                remote_port: old.dst_port,
                proto: old.proto,
            };
            self.inbound.insert(key, binding);
            self.outbound.insert(new_inner, binding);
        }
        moved.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::build_flow_packet;

    fn pool() -> Ipv4Prefix {
        "203.0.113.0/24".parse().unwrap()
    }

    fn inner_tuple(ue: u8, port: u16) -> FiveTuple {
        FiveTuple {
            src: Ipv4Addr::new(10, 0, 0, ue),
            dst: Ipv4Addr::new(93, 184, 216, 34),
            src_port: port,
            dst_port: 443,
            proto: Protocol::Tcp,
        }
    }

    #[test]
    fn binding_is_idempotent_per_flow() {
        let mut nat = FlowNat::new(pool(), 7).unwrap();
        let b1 = nat.bind_outbound(inner_tuple(1, 1000)).unwrap();
        let b2 = nat.bind_outbound(inner_tuple(1, 1000)).unwrap();
        assert_eq!(b1, b2);
        assert_eq!(nat.active(), 1);
    }

    #[test]
    fn different_flows_get_different_endpoints() {
        let mut nat = FlowNat::new(pool(), 7).unwrap();
        let b1 = nat.bind_outbound(inner_tuple(1, 1000)).unwrap();
        let b2 = nat.bind_outbound(inner_tuple(1, 1001)).unwrap();
        assert_ne!(
            (b1.public_addr, b1.public_port),
            (b2.public_addr, b2.public_port),
            "fresh endpoint per flow is the privacy contract"
        );
        assert!(pool().contains(b1.public_addr));
        assert!(b1.public_port >= 1024);
    }

    #[test]
    fn outbound_then_inbound_round_trips_packets() {
        let mut nat = FlowNat::new(pool(), 42).unwrap();
        let t = inner_tuple(9, 5555);
        let mut up = build_flow_packet(t, 64, 0, b"out");
        let binding = nat.translate_outbound(&mut up).unwrap();
        let up_view = HeaderView::parse(&up).unwrap();
        assert_eq!(up_view.src(), binding.public_addr);
        assert_eq!(up_view.src_port(), binding.public_port);

        // the server replies to what it saw
        let mut down = build_flow_packet(up_view.tuple.reverse(), 64, 0, b"in");
        let b2 = nat.translate_inbound(&mut down).unwrap();
        assert_eq!(b2.inner, t);
        let down_view = HeaderView::parse(&down).unwrap();
        assert_eq!(down_view.dst(), t.src);
        assert_eq!(down_view.dst_port(), t.src_port);
    }

    #[test]
    fn inbound_without_binding_is_rejected() {
        let nat = FlowNat::new(pool(), 1).unwrap();
        let mut stray = build_flow_packet(
            FiveTuple {
                src: Ipv4Addr::new(198, 51, 100, 1),
                dst: Ipv4Addr::new(203, 0, 113, 50),
                src_port: 80,
                dst_port: 2000,
                proto: Protocol::Tcp,
            },
            64,
            0,
            &[],
        );
        assert!(nat.translate_inbound(&mut stray).is_err());
    }

    #[test]
    fn release_frees_both_directions() {
        let mut nat = FlowNat::new(pool(), 3).unwrap();
        let t = inner_tuple(2, 7777);
        let b = nat.bind_outbound(t).unwrap();
        assert!(nat.release(&t));
        assert!(!nat.release(&t));
        assert_eq!(nat.active(), 0);
        let ret = FiveTuple {
            src: t.dst,
            dst: b.public_addr,
            src_port: t.dst_port,
            dst_port: b.public_port,
            proto: t.proto,
        };
        let view = HeaderView::parse(&build_flow_packet(ret, 64, 0, &[])).unwrap();
        assert!(nat.lookup_inbound(&view).is_none());
    }

    #[test]
    fn rehome_preserves_public_endpoint() {
        // UE moves: inner LocIP changes, public endpoint must not.
        let mut nat = FlowNat::new(pool(), 5).unwrap();
        let old = inner_tuple(1, 1000);
        let b_before = nat.bind_outbound(old).unwrap();
        let new_src = Ipv4Addr::new(10, 0, 4, 1);
        assert_eq!(nat.rehome_inner(old.src, new_src), 1);

        let new_inner = FiveTuple {
            src: new_src,
            ..old
        };
        let b_after = nat.bind_outbound(new_inner).unwrap();
        assert_eq!(b_after.public_addr, b_before.public_addr);
        assert_eq!(b_after.public_port, b_before.public_port);
        assert_eq!(nat.active(), 1);
    }

    #[test]
    fn deterministic_across_same_seed() {
        let mut a = FlowNat::new(pool(), 99).unwrap();
        let mut b = FlowNat::new(pool(), 99).unwrap();
        for port in 1000..1010 {
            let t = inner_tuple(1, port);
            assert_eq!(a.bind_outbound(t).unwrap(), b.bind_outbound(t).unwrap());
        }
    }

    #[test]
    fn tiny_pool_is_rejected() {
        assert!(FlowNat::new("203.0.113.0/31".parse().unwrap(), 1).is_err());
    }
}
