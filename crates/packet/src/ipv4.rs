//! IPv4 header parsing and emission.
//!
//! `Ipv4Packet` wraps a byte buffer in the smoltcp style: `new_checked`
//! validates length, version and header length once; accessors then read
//! and write fixed offsets. The header checksum is maintained explicitly —
//! `fill_checksum` after construction or mutation, `verify_checksum` on
//! receive. SoftCell access switches rewrite source/destination addresses
//! in place, so setters deliberately do *not* auto-update the checksum
//! (one final `fill_checksum` after a batch of edits is cheaper and makes
//! the dirty window explicit).

use std::fmt;
use std::net::Ipv4Addr;

use softcell_types::{Error, Result};

/// Minimum IPv4 header length (no options).
pub const HEADER_LEN: usize = 20;

/// Field offsets within the IPv4 header.
mod field {
    pub const VER_IHL: usize = 0;
    pub const DSCP_ECN: usize = 1;
    pub const LENGTH: std::ops::Range<usize> = 2..4;
    pub const IDENT: std::ops::Range<usize> = 4..6;
    pub const FLAGS_FRAG: std::ops::Range<usize> = 6..8;
    pub const TTL: usize = 8;
    pub const PROTOCOL: usize = 9;
    pub const CHECKSUM: std::ops::Range<usize> = 10..12;
    pub const SRC: std::ops::Range<usize> = 12..16;
    pub const DST: std::ops::Range<usize> = 16..20;
}

/// An IPv4 packet backed by a byte buffer.
#[derive(Clone, PartialEq, Eq)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wraps a buffer without validation. Use when the buffer is known to
    /// contain a packet this code just emitted.
    pub const fn new_unchecked(buffer: T) -> Self {
        Ipv4Packet { buffer }
    }

    /// Wraps and validates a buffer: length, IP version, header length and
    /// total-length consistency.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Ipv4Packet { buffer };
        packet.check()?;
        Ok(packet)
    }

    fn check(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Malformed(format!(
                "buffer {} bytes < 20-byte IPv4 header",
                data.len()
            )));
        }
        if data[field::VER_IHL] >> 4 != 4 {
            return Err(Error::Malformed(format!(
                "IP version {} != 4",
                data[field::VER_IHL] >> 4
            )));
        }
        let ihl = (data[field::VER_IHL] & 0x0f) as usize * 4;
        if ihl < HEADER_LEN {
            return Err(Error::Malformed(format!("IHL {ihl} < 20")));
        }
        if ihl > data.len() {
            return Err(Error::Malformed(format!(
                "IHL {ihl} exceeds buffer {}",
                data.len()
            )));
        }
        let total = u16::from_be_bytes([data[2], data[3]]) as usize;
        if total < ihl || total > data.len() {
            return Err(Error::Malformed(format!(
                "total length {total} inconsistent (ihl {ihl}, buffer {})",
                data.len()
            )));
        }
        Ok(())
    }

    /// Consumes the wrapper, returning the buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Header length in bytes.
    pub fn header_len(&self) -> usize {
        (self.buffer.as_ref()[field::VER_IHL] & 0x0f) as usize * 4
    }

    /// Total packet length from the header.
    pub fn total_len(&self) -> usize {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[2], d[3]]) as usize
    }

    /// DSCP (top 6 bits of the TOS byte) — SoftCell QoS actions mark this.
    pub fn dscp(&self) -> u8 {
        self.buffer.as_ref()[field::DSCP_ECN] >> 2
    }

    /// IP identification field.
    pub fn ident(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[4], d[5]])
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[field::TTL]
    }

    /// Transport protocol number (6 = TCP, 17 = UDP).
    pub fn protocol(&self) -> u8 {
        self.buffer.as_ref()[field::PROTOCOL]
    }

    /// Header checksum field.
    pub fn checksum(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[10], d[11]])
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Addr {
        let d = self.buffer.as_ref();
        Ipv4Addr::new(d[12], d[13], d[14], d[15])
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Addr {
        let d = self.buffer.as_ref();
        Ipv4Addr::new(d[16], d[17], d[18], d[19])
    }

    /// Verifies the header checksum. A header whose IHL is itself corrupt
    /// (too short, or pointing past the buffer) verifies as invalid rather
    /// than panicking — receive paths call this on untrusted bytes.
    pub fn verify_checksum(&self) -> bool {
        let data = self.buffer.as_ref();
        let ihl = self.header_len();
        if ihl < HEADER_LEN || ihl > data.len() {
            return false;
        }
        checksum(&data[..ihl]) == 0
    }

    /// The payload (transport header + data) following the IP header.
    pub fn payload(&self) -> &[u8] {
        let ihl = self.header_len();
        let total = self.total_len();
        &self.buffer.as_ref()[ihl..total]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Writes version 4 and a 20-byte header length.
    pub fn set_version_ihl(&mut self) {
        self.buffer.as_mut()[field::VER_IHL] = 0x45;
    }

    /// Sets the DSCP field (QoS marking).
    pub fn set_dscp(&mut self, dscp: u8) {
        let b = &mut self.buffer.as_mut()[field::DSCP_ECN];
        *b = (dscp << 2) | (*b & 0x03);
    }

    /// Sets the total length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&len.to_be_bytes());
    }

    /// Sets the identification field.
    pub fn set_ident(&mut self, ident: u16) {
        self.buffer.as_mut()[field::IDENT].copy_from_slice(&ident.to_be_bytes());
    }

    /// Clears flags/fragment offset (the simulator never fragments).
    pub fn clear_flags(&mut self) {
        self.buffer.as_mut()[field::FLAGS_FRAG].copy_from_slice(&[0, 0]);
    }

    /// Sets the TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[field::TTL] = ttl;
    }

    /// Decrements TTL, returning the new value (`None` if already zero —
    /// the packet must be dropped).
    pub fn decrement_ttl(&mut self) -> Option<u8> {
        let ttl = self.ttl().checked_sub(1)?;
        self.set_ttl(ttl);
        Some(ttl)
    }

    /// Sets the transport protocol number.
    pub fn set_protocol(&mut self, proto: u8) {
        self.buffer.as_mut()[field::PROTOCOL] = proto;
    }

    /// Sets the source address (does not update the checksum).
    pub fn set_src_addr(&mut self, addr: Ipv4Addr) {
        self.buffer.as_mut()[field::SRC].copy_from_slice(&addr.octets());
    }

    /// Sets the destination address (does not update the checksum).
    pub fn set_dst_addr(&mut self, addr: Ipv4Addr) {
        self.buffer.as_mut()[field::DST].copy_from_slice(&addr.octets());
    }

    /// Recomputes and writes the header checksum.
    pub fn fill_checksum(&mut self) {
        let ihl = self.header_len();
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let sum = checksum(&self.buffer.as_ref()[..ihl]);
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&sum.to_be_bytes());
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let ihl = self.header_len();
        let total = self.total_len();
        &mut self.buffer.as_mut()[ihl..total]
    }
}

impl<T: AsRef<[u8]>> fmt::Debug for Ipv4Packet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Ipv4Packet {{ {} -> {}, proto {}, ttl {}, len {} }}",
            self.src_addr(),
            self.dst_addr(),
            self.protocol(),
            self.ttl(),
            self.total_len()
        )
    }
}

/// RFC 1071 Internet checksum over `data` (returns the value to *store*,
/// i.e. the one's complement of the one's-complement sum).
pub fn checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u16::from_be_bytes([chunk[0], chunk[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Builds a fresh IPv4 packet with a 20-byte header and the given payload,
/// checksum filled.
pub fn build_ipv4(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, ttl: u8, payload: &[u8]) -> Vec<u8> {
    let total = HEADER_LEN + payload.len();
    let mut buf = vec![0u8; total];
    buf[HEADER_LEN..].copy_from_slice(payload);
    let mut packet = Ipv4Packet::new_unchecked(&mut buf[..]);
    packet.set_version_ihl();
    packet.set_total_len(total as u16);
    packet.clear_flags();
    packet.set_ttl(ttl);
    packet.set_protocol(protocol);
    packet.set_src_addr(src);
    packet.set_dst_addr(dst);
    packet.fill_checksum();
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Vec<u8> {
        build_ipv4(
            Ipv4Addr::new(192, 0, 2, 1),
            Ipv4Addr::new(198, 51, 100, 7),
            6,
            64,
            b"hello",
        )
    }

    #[test]
    fn build_then_parse_round_trips() {
        let buf = sample();
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.src_addr(), Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(p.dst_addr(), Ipv4Addr::new(198, 51, 100, 7));
        assert_eq!(p.protocol(), 6);
        assert_eq!(p.ttl(), 64);
        assert_eq!(p.total_len(), 25);
        assert_eq!(p.payload(), b"hello");
        assert!(p.verify_checksum());
    }

    #[test]
    fn checked_rejects_short_buffer() {
        assert!(Ipv4Packet::new_checked(&[0u8; 10][..]).is_err());
    }

    #[test]
    fn checked_rejects_wrong_version() {
        let mut buf = sample();
        buf[0] = 0x65; // version 6
        assert!(Ipv4Packet::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn checked_rejects_bad_ihl() {
        let mut buf = sample();
        buf[0] = 0x44; // IHL 16 < 20
        assert!(Ipv4Packet::new_checked(&buf[..]).is_err());
        let mut buf = sample();
        buf[0] = 0x4f; // IHL 60 > buffer
        assert!(Ipv4Packet::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn checked_rejects_inconsistent_total_len() {
        let mut buf = sample();
        buf[2] = 0xff;
        buf[3] = 0xff;
        assert!(Ipv4Packet::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn rewrite_invalidates_then_fill_restores_checksum() {
        let mut buf = sample();
        let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
        p.set_src_addr(Ipv4Addr::new(10, 0, 0, 10));
        assert!(!p.verify_checksum(), "rewrite must dirty the checksum");
        p.fill_checksum();
        assert!(p.verify_checksum());
        assert_eq!(p.src_addr(), Ipv4Addr::new(10, 0, 0, 10));
    }

    #[test]
    fn ttl_decrement_stops_at_zero() {
        let mut buf = build_ipv4(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            17,
            1,
            &[],
        );
        let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
        assert_eq!(p.decrement_ttl(), Some(0));
        assert_eq!(p.decrement_ttl(), None);
    }

    #[test]
    fn dscp_set_get() {
        let mut buf = sample();
        let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
        p.set_dscp(46); // expedited forwarding
        assert_eq!(p.dscp(), 46);
    }

    #[test]
    fn checksum_of_valid_header_is_zero() {
        let buf = sample();
        assert_eq!(checksum(&buf[..HEADER_LEN]), 0);
    }

    #[test]
    fn checksum_handles_odd_length() {
        // Regression guard for the trailing-byte path.
        assert_eq!(checksum(&[0xff]), !0xff00u16);
    }

    proptest! {
        #[test]
        fn prop_build_parse_round_trip(
            src in any::<u32>(), dst in any::<u32>(),
            proto in any::<u8>(), ttl in any::<u8>(),
            payload in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let buf = build_ipv4(Ipv4Addr::from(src), Ipv4Addr::from(dst), proto, ttl, &payload);
            let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
            prop_assert_eq!(p.src_addr(), Ipv4Addr::from(src));
            prop_assert_eq!(p.dst_addr(), Ipv4Addr::from(dst));
            prop_assert_eq!(p.protocol(), proto);
            prop_assert_eq!(p.ttl(), ttl);
            prop_assert_eq!(p.payload(), &payload[..]);
            prop_assert!(p.verify_checksum());
        }

        #[test]
        fn prop_corrupting_any_header_byte_breaks_checksum(
            byte in 0usize..HEADER_LEN, flip in 1u8..=255,
        ) {
            let mut buf = sample();
            buf[byte] ^= flip;
            let p = Ipv4Packet::new_unchecked(&buf[..]);
            // Every single-byte corruption of the header must be caught.
            prop_assert!(!p.verify_checksum());
        }
    }
}
