//! Synthetic cellular core topologies.
//!
//! [`CellularParams::build`] generates the three-layer topology of the
//! paper's large-scale simulations (§6.3), parameterized by `k`:
//!
//! * **access layer** — clusters of 10 base stations interconnected in a
//!   ring (backhaul-ring best practice, paper refs [19, 28]); one ring
//!   member uplinks to the aggregation layer;
//! * **aggregation layer** — `k` pods of `k` switches in full mesh; in
//!   each pod `k/2` switches face down to `k/2` clusters each, the other
//!   `k/2` face up to the core;
//! * **core layer** — `k²` switches in full mesh, all connected to a
//!   gateway switch.
//!
//! Total base stations: `k pods × k/2 × k/2 clusters × 10 = 10k³/4`
//! (k=8 → 1280, k=20 → 20 000, matching Fig. 7).
//!
//! Middleboxes: `k` kinds; one instance of each kind on a random switch of
//! each pod, plus two instances of each kind on random core switches.
//!
//! Base-station identifiers are assigned cluster-contiguously so that the
//! addressing scheme hands topologically-close stations numerically-close
//! prefixes — the precondition for location aggregation.
//!
//! [`small_topology`] is a hand-made 9-switch network mirroring the
//! paper's Figure 2, used by the examples and many tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use softcell_types::{Error, MiddleboxKind, Result};

use crate::graph::{SwitchRole, Topology, TopologyBuilder};

/// Parameters of the synthetic three-layer cellular topology.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CellularParams {
    /// The pod parameter `k` (even, ≥ 2). The network has `10k³/4` base
    /// stations.
    pub k: usize,
    /// Base stations per access ring (the paper uses 10).
    pub bs_per_cluster: usize,
    /// Number of distinct middlebox kinds (the paper uses `k`).
    pub mb_kinds: usize,
    /// RNG seed for middlebox placement.
    pub seed: u64,
}

impl CellularParams {
    /// The paper's base configuration for a given `k`: 10-station rings
    /// and `k` middlebox kinds.
    pub fn paper(k: usize) -> Self {
        CellularParams {
            k,
            bs_per_cluster: 10,
            mb_kinds: k,
            seed: 2013, // CoNEXT '13
        }
    }

    /// Number of access-ring clusters: `k³/4`.
    pub fn cluster_count(&self) -> usize {
        self.k * self.k * self.k / 4
    }

    /// Number of base stations: `bs_per_cluster · k³/4`.
    pub fn base_station_count(&self) -> usize {
        self.cluster_count() * self.bs_per_cluster
    }

    fn validate(&self) -> Result<()> {
        if self.k < 2 || !self.k.is_multiple_of(2) {
            return Err(Error::Config(format!(
                "k must be even and >= 2, got {}",
                self.k
            )));
        }
        if self.bs_per_cluster == 0 {
            return Err(Error::Config("bs_per_cluster must be positive".into()));
        }
        if self.mb_kinds == 0 {
            return Err(Error::Config("mb_kinds must be positive".into()));
        }
        Ok(())
    }

    /// Builds the topology.
    pub fn build(&self) -> Result<Topology> {
        self.validate()?;
        let k = self.k;
        let mut b = TopologyBuilder::new();
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Core layer: k² switches, full mesh, plus the gateway.
        let core: Vec<_> = (0..k * k).map(|_| b.add_switch(SwitchRole::Core)).collect();
        for i in 0..core.len() {
            for j in (i + 1)..core.len() {
                b.link(core[i], core[j])?;
            }
        }
        let gw = b.add_switch(SwitchRole::Gateway);
        for &c in &core {
            b.link(gw, c)?;
        }
        b.attach_gateway(gw)?;

        // Aggregation layer: k pods × k switches, full mesh per pod.
        // First k/2 of each pod face down (clusters), last k/2 face up.
        let half = k / 2;
        let mut pods: Vec<Vec<_>> = Vec::with_capacity(k);
        for p in 0..k {
            let pod: Vec<_> = (0..k)
                .map(|_| b.add_switch(SwitchRole::Aggregation))
                .collect();
            for i in 0..k {
                for j in (i + 1)..k {
                    b.link(pod[i], pod[j])?;
                }
            }
            // up-facing switches to core: spread deterministically so the
            // pod-core links cover the core mesh evenly
            for (j, &up) in pod[half..].iter().enumerate() {
                for c in 0..half {
                    let idx = ((p * half + j) * half + c) % core.len();
                    // the same core switch may be picked twice by the
                    // modular spread when k is small; skip duplicates
                    if b.link(up, core[idx]).is_err() {
                        let alt = (idx + 1 + c) % core.len();
                        let _ = b.link(up, core[alt]);
                    }
                }
            }
            pods.push(pod);
        }

        // Access layer: rings of base stations. Cluster c hangs off pod
        // (c / (half·half)), down-switch ((c / half) % half).
        for c in 0..self.cluster_count() {
            let pod = c / (half * half);
            let down = (c / half) % half;
            let uplink_sw = pods[pod][down];

            let ring: Vec<_> = (0..self.bs_per_cluster)
                .map(|_| b.add_switch(SwitchRole::Access))
                .collect();
            // ring links (a 2-ring is a single link; a 1-ring has none)
            match ring.len() {
                0 | 1 => {}
                2 => {
                    b.link(ring[0], ring[1])?;
                }
                n => {
                    for i in 0..n {
                        b.link(ring[i], ring[(i + 1) % n])?;
                    }
                }
            }
            // one ring member uplinks to the aggregation layer
            b.link(ring[0], uplink_sw)?;
            for &acc in &ring {
                b.attach_base_station(acc)?;
            }
        }

        // Middleboxes: one instance of each kind per pod, two per core.
        let kinds = MiddleboxKind::enumerate(self.mb_kinds);
        for pod in &pods {
            for &kind in &kinds {
                let sw = pod[rng.gen_range(0..pod.len())];
                b.attach_middlebox(kind, sw)?;
            }
        }
        for &kind in &kinds {
            for _ in 0..2 {
                let sw = core[rng.gen_range(0..core.len())];
                b.attach_middlebox(kind, sw)?;
            }
        }

        b.build()
    }
}

/// A small hand-made topology mirroring the paper's Figure 2: four base
/// stations in two 2-station clusters, two aggregation switches, two core
/// switches, one gateway, and four middleboxes (firewall and transcoder in
/// the core; echo canceller and web cache in aggregation).
///
/// ```text
///                 gw(0)
///                /     \
///      [fw] c1(1)       c2(2) [tc]
///            |  \      /  |
///            |    \  /    |
///            |    /  \    |
///  [ec] agg1(3)         agg2(4) [wc]
///        /   \           /   \
///   acc(5)  acc(6)  acc(7)  acc(8)
///    bs0     bs1     bs2     bs3
/// ```
pub fn small_topology() -> Topology {
    let mut b = TopologyBuilder::new();
    let gw = b.add_switch(SwitchRole::Gateway);
    let c1 = b.add_switch(SwitchRole::Core);
    let c2 = b.add_switch(SwitchRole::Core);
    let agg1 = b.add_switch(SwitchRole::Aggregation);
    let agg2 = b.add_switch(SwitchRole::Aggregation);
    let accs: Vec<_> = (0..4).map(|_| b.add_switch(SwitchRole::Access)).collect();

    b.link(gw, c1).unwrap();
    b.link(gw, c2).unwrap();
    b.link(c1, agg1).unwrap();
    b.link(c1, agg2).unwrap();
    b.link(c2, agg1).unwrap();
    b.link(c2, agg2).unwrap();
    b.link(agg1, accs[0]).unwrap();
    b.link(agg1, accs[1]).unwrap();
    b.link(agg2, accs[2]).unwrap();
    b.link(agg2, accs[3]).unwrap();

    b.attach_middlebox(MiddleboxKind::Firewall, c1).unwrap();
    b.attach_middlebox(MiddleboxKind::Transcoder, c2).unwrap();
    b.attach_middlebox(MiddleboxKind::EchoCanceller, agg1)
        .unwrap();
    b.attach_middlebox(MiddleboxKind::WebCache, agg2).unwrap();

    for acc in accs {
        b.attach_base_station(acc).unwrap();
    }
    b.attach_gateway(gw).unwrap();
    b.build().expect("small topology is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::ShortestPaths;
    use softcell_types::{BaseStationId, SwitchId};

    #[test]
    fn small_topology_shape() {
        let t = small_topology();
        assert_eq!(t.switch_count(), 9);
        assert_eq!(t.base_stations().len(), 4);
        assert_eq!(t.gateways().len(), 1);
        assert_eq!(t.middlebox_count(), 4);
        assert_eq!(t.instances_of(MiddleboxKind::Firewall).len(), 1);
    }

    #[test]
    fn paper_counts_for_k8() {
        let p = CellularParams::paper(8);
        assert_eq!(p.base_station_count(), 1280);
        assert_eq!(CellularParams::paper(20).base_station_count(), 20000);
        assert_eq!(CellularParams::paper(10).base_station_count(), 2500);
        assert_eq!(CellularParams::paper(12).base_station_count(), 4320);
        assert_eq!(CellularParams::paper(14).base_station_count(), 6860);
        assert_eq!(CellularParams::paper(16).base_station_count(), 10240);
        assert_eq!(CellularParams::paper(18).base_station_count(), 14580);
    }

    #[test]
    fn build_k2_minimal() {
        let t = CellularParams {
            k: 2,
            bs_per_cluster: 2,
            mb_kinds: 2,
            seed: 1,
        }
        .build()
        .unwrap();
        // k=2: core 4 + gw 1 + agg 2*2 + access 2*2/4*... clusters = 2,
        // stations = 4
        assert_eq!(t.base_stations().len(), 4);
        assert_eq!(t.gateways().len(), 1);
        // mb: 2 kinds * (2 pods + 2 core) = 8 instances
        assert_eq!(t.middlebox_count(), 8);
    }

    #[test]
    fn build_k4_full_shape() {
        let p = CellularParams::paper(4);
        let t = p.build().unwrap();
        assert_eq!(t.base_stations().len(), p.base_station_count());
        // switches: access 160 + agg 16 + core 16 + gw 1
        assert_eq!(t.switch_count(), 160 + 16 + 16 + 1);
        // every base station can reach the gateway
        let gw = t.default_gateway().switch;
        let mut sp = ShortestPaths::new(&t);
        for bs in 0..t.base_stations().len() {
            let acc = t.base_station(BaseStationId(bs as u32)).access_switch;
            assert!(sp.distance(acc, gw).is_some(), "bs{bs} cannot reach gw");
        }
    }

    #[test]
    fn cluster_station_ids_are_contiguous() {
        let p = CellularParams {
            k: 2,
            bs_per_cluster: 4,
            mb_kinds: 1,
            seed: 7,
        };
        let t = p.build().unwrap();
        // stations 0..4 form ring 0: their access switches must be
        // mutually close (ring + shared uplink), i.e. pairwise distance
        // ≤ 2 hops within the ring.
        let mut sp = ShortestPaths::new(&t);
        let a0 = t.base_station(BaseStationId(0)).access_switch;
        let a3 = t.base_station(BaseStationId(3)).access_switch;
        assert!(sp.distance(a0, a3).unwrap() <= 2);
    }

    #[test]
    fn rejects_odd_or_tiny_k() {
        assert!(CellularParams::paper(3).build().is_err());
        assert!(CellularParams::paper(0).build().is_err());
        assert!(CellularParams {
            k: 2,
            bs_per_cluster: 0,
            mb_kinds: 1,
            seed: 0
        }
        .build()
        .is_err());
    }

    #[test]
    fn middlebox_placement_is_seed_deterministic() {
        let a = CellularParams::paper(4).build().unwrap();
        let b = CellularParams::paper(4).build().unwrap();
        let hosts_a: Vec<SwitchId> = a.middleboxes().iter().map(|m| m.switch).collect();
        let hosts_b: Vec<SwitchId> = b.middleboxes().iter().map(|m| m.switch).collect();
        assert_eq!(hosts_a, hosts_b);
    }

    #[test]
    fn every_kind_has_pod_and_core_instances() {
        let t = CellularParams::paper(4).build().unwrap();
        for kind in MiddleboxKind::enumerate(4) {
            // 4 pods + 2 core instances
            assert_eq!(t.instances_of(kind).len(), 6, "{kind}");
        }
    }
}
