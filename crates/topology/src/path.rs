//! Shortest paths and policy-path routing.
//!
//! SoftCell computes a **policy path** for each (service-policy clause,
//! base station) pair: access switch → middlebox₁ → … → middleboxₘ →
//! gateway (paper §3.2, Algorithm 1 input). Routing between consecutive
//! waypoints uses deterministic BFS shortest paths. Determinism matters
//! twice over: experiments are reproducible, and paths from different
//! base stations to the same waypoint *converge* (BFS trees share
//! suffixes), which is what gives multi-dimensional aggregation its
//! leverage.
//!
//! [`ShortestPaths`] lazily builds one BFS tree per waypoint root and
//! caches it, so routing a million policy paths costs one tree per
//! middlebox/gateway plus O(path length) per path.

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};
use softcell_types::{BaseStationId, Error, MiddleboxId, Result, SwitchId};

use crate::graph::Topology;

/// One hop of a policy path: arrive at `switch`, optionally divert through
/// a middlebox attached to it, then continue towards the next hop.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Hop {
    /// The switch this hop occupies.
    pub switch: SwitchId,
    /// A middlebox (hosted on `switch`) the traffic must traverse before
    /// moving on. Traffic leaves to the middlebox port and re-enters on
    /// the same port; the re-entry rule matches on input port (paper §3.1
    /// footnote).
    pub mb_after: Option<MiddleboxId>,
}

/// Element-wise view of a policy path used in pretty-printing and tests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathElement {
    /// A switch hop.
    Switch(SwitchId),
    /// A middlebox traversal.
    Middlebox(MiddleboxId),
}

/// A fully-routed policy path from an access switch to a gateway.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct PolicyPath {
    /// The base station this path originates from.
    pub origin: BaseStationId,
    /// Hops from the access switch (first) to the gateway switch (last).
    pub hops: Vec<Hop>,
}

impl PolicyPath {
    /// The access switch (first hop).
    pub fn access_switch(&self) -> SwitchId {
        self.hops[0].switch
    }

    /// The gateway switch (last hop).
    pub fn gateway_switch(&self) -> SwitchId {
        self.hops[self.hops.len() - 1].switch
    }

    /// The middlebox instances traversed, in order.
    pub fn middleboxes(&self) -> Vec<MiddleboxId> {
        self.hops.iter().filter_map(|h| h.mb_after).collect()
    }

    /// Flattened element sequence (switches and middleboxes interleaved).
    pub fn elements(&self) -> Vec<PathElement> {
        let mut out = Vec::with_capacity(self.hops.len() * 2);
        for h in &self.hops {
            out.push(PathElement::Switch(h.switch));
            if let Some(mb) = h.mb_after {
                out.push(PathElement::Middlebox(mb));
            }
        }
        out
    }

    /// Number of switch-to-switch forwarding steps.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Whether the path has no hops (never true for validated paths).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Validates the path against a topology:
    /// * consecutive hops are adjacent switches (or the same switch when
    ///   the earlier hop diverts through a middlebox);
    /// * every `mb_after` names a middlebox hosted on that hop's switch;
    /// * the path starts at the origin's access switch.
    ///
    /// The terminal may be a gateway (Internet-bound paths) or another
    /// access switch (mobile-to-mobile paths, paper §7).
    pub fn validate(&self, topo: &Topology) -> Result<()> {
        if self.hops.is_empty() {
            return Err(Error::InvalidState("empty policy path".into()));
        }
        let access = topo.base_station(self.origin).access_switch;
        if self.access_switch() != access {
            return Err(Error::InvalidState(format!(
                "path starts at {} but {}'s access switch is {}",
                self.access_switch(),
                self.origin,
                access
            )));
        }
        let terminal = self.gateway_switch();
        let terminal_ok = topo.gateways().iter().any(|g| g.switch == terminal)
            || topo.base_station_at(terminal).is_some();
        if !terminal_ok {
            return Err(Error::InvalidState(format!(
                "path ends at {terminal}, which is neither a gateway nor an access switch"
            )));
        }
        for (i, h) in self.hops.iter().enumerate() {
            if let Some(mb) = h.mb_after {
                if topo.middlebox(mb).switch != h.switch {
                    return Err(Error::InvalidState(format!(
                        "{} is hosted on {} but hop {i} is {}",
                        mb,
                        topo.middlebox(mb).switch,
                        h.switch
                    )));
                }
            }
            if i + 1 < self.hops.len() {
                let next = self.hops[i + 1].switch;
                if h.switch == next {
                    // staying put is only allowed to chain middleboxes on
                    // one switch
                    if h.mb_after.is_none() {
                        return Err(Error::InvalidState(format!(
                            "hop {i} repeats {} without a middlebox traversal",
                            h.switch
                        )));
                    }
                } else if topo.port_towards(h.switch, next).is_none() {
                    return Err(Error::InvalidState(format!(
                        "hops {i}->{} are not adjacent ({} -> {next})",
                        i + 1,
                        h.switch
                    )));
                }
            }
        }
        Ok(())
    }
}

/// A BFS tree rooted at one switch: parents point towards the root.
#[derive(Clone, Debug)]
pub struct BfsTree {
    root: SwitchId,
    parent: Vec<Option<SwitchId>>,
    dist: Vec<u32>,
}

impl BfsTree {
    fn build(topo: &Topology, root: SwitchId) -> BfsTree {
        let n = topo.switch_count();
        let mut parent = vec![None; n];
        let mut dist = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        dist[root.index()] = 0;
        queue.push_back(root);
        while let Some(sw) = queue.pop_front() {
            let d = dist[sw.index()];
            for &(next, _, _) in topo.neighbors(sw) {
                if dist[next.index()] == u32::MAX {
                    dist[next.index()] = d + 1;
                    parent[next.index()] = Some(sw);
                    queue.push_back(next);
                }
            }
        }
        BfsTree { root, parent, dist }
    }

    /// The root switch.
    pub fn root(&self) -> SwitchId {
        self.root
    }

    /// Hop distance from `from` to the root (`None` if unreachable).
    pub fn distance(&self, from: SwitchId) -> Option<u32> {
        let d = self.dist[from.index()];
        (d != u32::MAX).then_some(d)
    }

    /// The switch sequence `from .. root` inclusive, or `None` if
    /// unreachable.
    pub fn path_to_root(&self, from: SwitchId) -> Option<Vec<SwitchId>> {
        self.distance(from)?;
        let mut path = Vec::with_capacity(self.dist[from.index()] as usize + 1);
        let mut cur = from;
        path.push(cur);
        while cur != self.root {
            cur = self.parent[cur.index()].expect("reachable node has parent chain");
            path.push(cur);
        }
        Some(path)
    }
}

/// Lazy, cached BFS shortest paths over a topology, plus the waypoint
/// routing that produces [`PolicyPath`]s.
pub struct ShortestPaths<'a> {
    topo: &'a Topology,
    trees: HashMap<SwitchId, BfsTree>,
}

impl<'a> ShortestPaths<'a> {
    /// Creates an empty cache over `topo`.
    pub fn new(topo: &'a Topology) -> Self {
        ShortestPaths {
            topo,
            trees: HashMap::new(),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &'a Topology {
        self.topo
    }

    /// The BFS tree rooted at `root`, computing it on first use.
    pub fn tree(&mut self, root: SwitchId) -> &BfsTree {
        self.trees
            .entry(root)
            .or_insert_with(|| BfsTree::build(self.topo, root))
    }

    /// Number of cached trees (for capacity planning in benches).
    pub fn cached_trees(&self) -> usize {
        self.trees.len()
    }

    /// Shortest switch sequence from `src` to `dst` inclusive.
    pub fn path(&mut self, src: SwitchId, dst: SwitchId) -> Result<Vec<SwitchId>> {
        self.tree(dst)
            .path_to_root(src)
            .ok_or_else(|| Error::NoPath(format!("{src} cannot reach {dst}")))
    }

    /// Hop distance from `src` to `dst`.
    pub fn distance(&mut self, src: SwitchId, dst: SwitchId) -> Option<u32> {
        self.tree(dst).distance(src)
    }

    /// Routes a policy path: origin base station → the given middlebox
    /// instances in order → the given gateway switch.
    pub fn route_policy_path(
        &mut self,
        origin: BaseStationId,
        middleboxes: &[MiddleboxId],
        gateway: SwitchId,
    ) -> Result<PolicyPath> {
        let access = self.topo.base_station(origin).access_switch;
        let mut hops: Vec<Hop> = Vec::new();
        let mut cursor = access;

        for &mb in middleboxes {
            let host = self.topo.middlebox(mb).switch;
            let segment = self.path(cursor, host)?;
            append_segment(&mut hops, &segment);
            // mark the middlebox traversal on the (single) host hop
            let last = hops.last_mut().expect("segment is non-empty");
            debug_assert_eq!(last.switch, host);
            if last.mb_after.is_some() {
                // chaining two middleboxes on one switch: add another hop
                // on the same switch
                hops.push(Hop {
                    switch: host,
                    mb_after: Some(mb),
                });
            } else {
                last.mb_after = Some(mb);
            }
            cursor = host;
        }

        let segment = self.path(cursor, gateway)?;
        append_segment(&mut hops, &segment);

        let path = PolicyPath { origin, hops };
        debug_assert!(path.validate(self.topo).is_ok());
        Ok(path)
    }
}

/// Appends a switch segment to a hop list, merging the joint switch (the
/// segment starts where the hop list currently ends).
fn append_segment(hops: &mut Vec<Hop>, segment: &[SwitchId]) {
    let mut iter = segment.iter();
    if let Some(&first) = iter.next() {
        match hops.last() {
            Some(last) if last.switch == first => {}
            _ => hops.push(Hop {
                switch: first,
                mb_after: None,
            }),
        }
    }
    for &sw in iter {
        hops.push(Hop {
            switch: sw,
            mb_after: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{SwitchRole, TopologyBuilder};
    use softcell_types::MiddleboxKind;

    /// A diamond fabric:
    ///
    /// ```text
    ///        gw(0)
    ///       /     \
    ///   c1(1)     c2(2)     fw on c1, tc on c2, ids on c1
    ///       \     /
    ///        agg(3)
    ///       /     \
    ///  acc1(4)   acc2(5)
    /// ```
    fn diamond() -> (Topology, Vec<MiddleboxId>) {
        let mut b = TopologyBuilder::new();
        let gw = b.add_switch(SwitchRole::Gateway);
        let c1 = b.add_switch(SwitchRole::Core);
        let c2 = b.add_switch(SwitchRole::Core);
        let agg = b.add_switch(SwitchRole::Aggregation);
        let a1 = b.add_switch(SwitchRole::Access);
        let a2 = b.add_switch(SwitchRole::Access);
        b.link(gw, c1).unwrap();
        b.link(gw, c2).unwrap();
        b.link(c1, agg).unwrap();
        b.link(c2, agg).unwrap();
        b.link(agg, a1).unwrap();
        b.link(agg, a2).unwrap();
        let fw = b.attach_middlebox(MiddleboxKind::Firewall, c1).unwrap();
        let tc = b.attach_middlebox(MiddleboxKind::Transcoder, c2).unwrap();
        let ids = b
            .attach_middlebox(MiddleboxKind::IntrusionDetection, c1)
            .unwrap();
        b.attach_base_station(a1).unwrap();
        b.attach_base_station(a2).unwrap();
        b.attach_gateway(gw).unwrap();
        (b.build().unwrap(), vec![fw, tc, ids])
    }

    #[test]
    fn bfs_tree_distances_and_paths() {
        let (t, _) = diamond();
        let mut sp = ShortestPaths::new(&t);
        assert_eq!(sp.distance(SwitchId(4), SwitchId(0)), Some(3));
        assert_eq!(sp.distance(SwitchId(0), SwitchId(0)), Some(0));
        let path = sp.path(SwitchId(4), SwitchId(0)).unwrap();
        assert_eq!(path.len(), 4);
        assert_eq!(path[0], SwitchId(4));
        assert_eq!(*path.last().unwrap(), SwitchId(0));
        // consecutive switches adjacent
        for w in path.windows(2) {
            assert!(t.port_towards(w[0], w[1]).is_some());
        }
    }

    #[test]
    fn trees_are_cached() {
        let (t, _) = diamond();
        let mut sp = ShortestPaths::new(&t);
        sp.path(SwitchId(4), SwitchId(0)).unwrap();
        sp.path(SwitchId(5), SwitchId(0)).unwrap();
        assert_eq!(sp.cached_trees(), 1);
    }

    #[test]
    fn paths_to_same_root_share_suffix() {
        // The aggregation property: two stations' paths to the gateway
        // converge at agg and share agg->...->gw.
        let (t, _) = diamond();
        let mut sp = ShortestPaths::new(&t);
        let p1 = sp.path(SwitchId(4), SwitchId(0)).unwrap();
        let p2 = sp.path(SwitchId(5), SwitchId(0)).unwrap();
        assert_eq!(p1[1..], p2[1..], "suffixes after the access hop coincide");
    }

    #[test]
    fn route_through_one_middlebox() {
        let (t, mbs) = diamond();
        let fw = mbs[0];
        let mut sp = ShortestPaths::new(&t);
        let path = sp
            .route_policy_path(BaseStationId(0), &[fw], SwitchId(0))
            .unwrap();
        path.validate(&t).unwrap();
        assert_eq!(path.access_switch(), SwitchId(4));
        assert_eq!(path.gateway_switch(), SwitchId(0));
        assert_eq!(path.middleboxes(), vec![fw]);
        // fw is on c1: acc1 -> agg -> c1(fw) -> gw
        let switches: Vec<SwitchId> = path.hops.iter().map(|h| h.switch).collect();
        assert_eq!(
            switches,
            vec![SwitchId(4), SwitchId(3), SwitchId(1), SwitchId(0)]
        );
        assert_eq!(path.hops[2].mb_after, Some(fw));
    }

    #[test]
    fn route_through_two_middleboxes_on_different_switches() {
        let (t, mbs) = diamond();
        let (fw, tc) = (mbs[0], mbs[1]);
        let mut sp = ShortestPaths::new(&t);
        let path = sp
            .route_policy_path(BaseStationId(0), &[fw, tc], SwitchId(0))
            .unwrap();
        path.validate(&t).unwrap();
        assert_eq!(path.middleboxes(), vec![fw, tc]);
        // fw on c1, tc on c2: path must go acc1,agg,c1(fw), then c1->? c2:
        // c1-c2 not adjacent; shortest c1->c2 via gw or agg (both len 2).
        let switches: Vec<SwitchId> = path.hops.iter().map(|h| h.switch).collect();
        assert_eq!(switches[..3], [SwitchId(4), SwitchId(3), SwitchId(1)]);
        assert_eq!(*switches.last().unwrap(), SwitchId(0));
    }

    #[test]
    fn route_chains_middleboxes_on_same_switch() {
        let (t, mbs) = diamond();
        let (fw, ids) = (mbs[0], mbs[2]); // both on c1
        let mut sp = ShortestPaths::new(&t);
        let path = sp
            .route_policy_path(BaseStationId(0), &[fw, ids], SwitchId(0))
            .unwrap();
        path.validate(&t).unwrap();
        assert_eq!(path.middleboxes(), vec![fw, ids]);
        // c1 appears twice, once per middlebox
        let c1_hops: Vec<&Hop> = path
            .hops
            .iter()
            .filter(|h| h.switch == SwitchId(1))
            .collect();
        assert_eq!(c1_hops.len(), 2);
        assert_eq!(c1_hops[0].mb_after, Some(fw));
        assert_eq!(c1_hops[1].mb_after, Some(ids));
    }

    #[test]
    fn route_with_no_middleboxes_is_plain_shortest_path() {
        let (t, _) = diamond();
        let mut sp = ShortestPaths::new(&t);
        let path = sp
            .route_policy_path(BaseStationId(1), &[], SwitchId(0))
            .unwrap();
        path.validate(&t).unwrap();
        assert!(path.middleboxes().is_empty());
        assert_eq!(path.len(), 4);
    }

    #[test]
    fn validate_rejects_corrupted_paths() {
        let (t, mbs) = diamond();
        let mut sp = ShortestPaths::new(&t);
        let good = sp
            .route_policy_path(BaseStationId(0), &[mbs[0]], SwitchId(0))
            .unwrap();

        // non-adjacent hops
        let mut bad = good.clone();
        bad.hops.remove(1);
        assert!(bad.validate(&t).is_err());

        // middlebox on wrong switch
        let mut bad = good.clone();
        bad.hops[1].mb_after = Some(mbs[0]); // fw hosted on c1, hop1 is agg
        assert!(bad.validate(&t).is_err());

        // wrong origin
        let mut bad = good.clone();
        bad.origin = BaseStationId(1);
        assert!(bad.validate(&t).is_err());

        // ends mid-fabric (neither gateway nor access switch)
        let mut bad = good;
        bad.hops.pop();
        assert!(bad.validate(&t).is_err());
    }

    #[test]
    fn elements_interleave_switches_and_middleboxes() {
        let (t, mbs) = diamond();
        let mut sp = ShortestPaths::new(&t);
        let path = sp
            .route_policy_path(BaseStationId(0), &[mbs[0]], SwitchId(0))
            .unwrap();
        let elems = path.elements();
        assert!(matches!(elems[0], PathElement::Switch(_)));
        assert!(elems.contains(&PathElement::Middlebox(mbs[0])));
    }
}
