//! The topology model: switches, links, middleboxes, base stations.
//!
//! Switches are the graph's nodes; links occupy a numbered port at each
//! end (port numbers matter: SoftCell identifies middlebox return traffic
//! by input port, paper §3.1 footnote). Base stations, middlebox
//! instances and the Internet uplink are *attachments* on switch ports,
//! not graph nodes, mirroring how the data plane sees them.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use softcell_types::{
    BaseStationId, Error, GatewayId, LinkId, MiddleboxId, MiddleboxKind, PortNo, Result, SwitchId,
};

/// The role a switch plays in the fabric.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SwitchRole {
    /// Software switch at a base station; runs the microflow table and
    /// hosts the local agent.
    Access,
    /// Aggregation-layer hardware switch (pod member).
    Aggregation,
    /// Core-layer hardware switch.
    Core,
    /// Gateway switch with an Internet-facing port.
    Gateway,
}

/// A switch node.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SwitchNode {
    /// This switch's identifier (== its index in [`Topology::switches`]).
    pub id: SwitchId,
    /// Fabric role.
    pub role: SwitchRole,
    /// Next free port number (ports are allocated sequentially; port 0 is
    /// the local/CPU port).
    next_port: u16,
}

impl SwitchNode {
    fn allocate_port(&mut self) -> PortNo {
        let p = PortNo(self.next_port);
        self.next_port += 1;
        p
    }

    /// Number of allocated ports (including the reserved CPU port 0).
    pub fn port_count(&self) -> u16 {
        self.next_port
    }
}

/// An undirected link between two switch ports.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Link {
    /// Link identifier (== index in [`Topology::links`]).
    pub id: LinkId,
    /// One endpoint.
    pub a: (SwitchId, PortNo),
    /// The other endpoint.
    pub b: (SwitchId, PortNo),
}

impl Link {
    /// Given one endpoint switch, returns the far endpoint.
    pub fn opposite(&self, from: SwitchId) -> Option<(SwitchId, PortNo)> {
        if self.a.0 == from {
            Some(self.b)
        } else if self.b.0 == from {
            Some(self.a)
        } else {
            None
        }
    }
}

/// A middlebox instance attached to a switch port.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Middlebox {
    /// Instance identifier.
    pub id: MiddleboxId,
    /// The function this instance performs.
    pub kind: MiddleboxKind,
    /// Host switch.
    pub switch: SwitchId,
    /// Port on the host switch where the instance hangs.
    pub port: PortNo,
}

/// A base station and its access switch (1:1 in SoftCell).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BaseStation {
    /// Base-station identifier.
    pub id: BaseStationId,
    /// The access switch co-located with this base station.
    pub access_switch: SwitchId,
    /// The port on the access switch facing the radio side.
    pub radio_port: PortNo,
}

/// A gateway's Internet-facing attachment.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GatewayUplink {
    /// Gateway identifier.
    pub id: GatewayId,
    /// The gateway switch.
    pub switch: SwitchId,
    /// The Internet-facing port.
    pub port: PortNo,
}

/// An immutable, validated network topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    switches: Vec<SwitchNode>,
    links: Vec<Link>,
    /// adjacency\[sw\] = (neighbor switch, out port on sw, in port on neighbor)
    adjacency: Vec<Vec<(SwitchId, PortNo, PortNo)>>,
    middleboxes: Vec<Middlebox>,
    base_stations: Vec<BaseStation>,
    gateways: Vec<GatewayUplink>,
    mb_by_kind: HashMap<MiddleboxKind, Vec<MiddleboxId>>,
    access_to_bs: HashMap<SwitchId, BaseStationId>,
}

impl Topology {
    /// All switches, indexed by [`SwitchId`].
    pub fn switches(&self) -> &[SwitchNode] {
        &self.switches
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// One switch.
    pub fn switch(&self, id: SwitchId) -> &SwitchNode {
        &self.switches[id.index()]
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Neighbors of a switch: `(neighbor, out_port_here, in_port_there)`,
    /// in deterministic (insertion) order — path computations rely on this
    /// determinism for reproducibility and for path sharing.
    pub fn neighbors(&self, sw: SwitchId) -> &[(SwitchId, PortNo, PortNo)] {
        &self.adjacency[sw.index()]
    }

    /// The output port on `from` that reaches `to`, if adjacent.
    pub fn port_towards(&self, from: SwitchId, to: SwitchId) -> Option<PortNo> {
        self.adjacency[from.index()]
            .iter()
            .find(|(n, _, _)| *n == to)
            .map(|(_, p, _)| *p)
    }

    /// All middlebox instances.
    pub fn middleboxes(&self) -> &[Middlebox] {
        &self.middleboxes
    }

    /// One middlebox instance.
    pub fn middlebox(&self, id: MiddleboxId) -> &Middlebox {
        &self.middleboxes[id.index()]
    }

    /// Instances of a given kind (possibly empty).
    pub fn instances_of(&self, kind: MiddleboxKind) -> &[MiddleboxId] {
        self.mb_by_kind.get(&kind).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All middlebox kinds present in this topology.
    pub fn middlebox_kinds(&self) -> impl Iterator<Item = MiddleboxKind> + '_ {
        self.mb_by_kind.keys().copied()
    }

    /// All base stations.
    pub fn base_stations(&self) -> &[BaseStation] {
        &self.base_stations
    }

    /// One base station.
    pub fn base_station(&self, id: BaseStationId) -> &BaseStation {
        &self.base_stations[id.index()]
    }

    /// The base station co-located with an access switch, if any.
    pub fn base_station_at(&self, sw: SwitchId) -> Option<BaseStationId> {
        self.access_to_bs.get(&sw).copied()
    }

    /// All gateway uplinks.
    pub fn gateways(&self) -> &[GatewayUplink] {
        &self.gateways
    }

    /// The default gateway (first registered).
    pub fn default_gateway(&self) -> &GatewayUplink {
        &self.gateways[0]
    }

    /// Total number of middlebox instances.
    pub fn middlebox_count(&self) -> usize {
        self.middleboxes.len()
    }
}

/// Incremental topology construction with validation at `build()`.
#[derive(Default, Debug)]
pub struct TopologyBuilder {
    switches: Vec<SwitchNode>,
    links: Vec<Link>,
    adjacency: Vec<Vec<(SwitchId, PortNo, PortNo)>>,
    middleboxes: Vec<Middlebox>,
    base_stations: Vec<BaseStation>,
    gateways: Vec<GatewayUplink>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a switch and returns its id.
    pub fn add_switch(&mut self, role: SwitchRole) -> SwitchId {
        let id = SwitchId(self.switches.len() as u32);
        self.switches.push(SwitchNode {
            id,
            role,
            next_port: 1, // port 0 reserved for CPU/local
        });
        self.adjacency.push(Vec::new());
        id
    }

    /// Links two switches, allocating a port at each end.
    pub fn link(&mut self, a: SwitchId, b: SwitchId) -> Result<LinkId> {
        if a == b {
            return Err(Error::Config(format!("self-link on {a}")));
        }
        if a.index() >= self.switches.len() || b.index() >= self.switches.len() {
            return Err(Error::NotFound(format!("link endpoints {a},{b} unknown")));
        }
        if self.adjacency[a.index()].iter().any(|(n, _, _)| *n == b) {
            return Err(Error::Config(format!("duplicate link {a}-{b}")));
        }
        let pa = self.switches[a.index()].allocate_port();
        let pb = self.switches[b.index()].allocate_port();
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id,
            a: (a, pa),
            b: (b, pb),
        });
        self.adjacency[a.index()].push((b, pa, pb));
        self.adjacency[b.index()].push((a, pb, pa));
        Ok(id)
    }

    /// Attaches a middlebox instance to a switch.
    pub fn attach_middlebox(&mut self, kind: MiddleboxKind, sw: SwitchId) -> Result<MiddleboxId> {
        if sw.index() >= self.switches.len() {
            return Err(Error::NotFound(format!("middlebox host {sw} unknown")));
        }
        let port = self.switches[sw.index()].allocate_port();
        let id = MiddleboxId(self.middleboxes.len() as u32);
        self.middleboxes.push(Middlebox {
            id,
            kind,
            switch: sw,
            port,
        });
        Ok(id)
    }

    /// Declares a switch to be the access switch of a new base station.
    pub fn attach_base_station(&mut self, sw: SwitchId) -> Result<BaseStationId> {
        if sw.index() >= self.switches.len() {
            return Err(Error::NotFound(format!("access switch {sw} unknown")));
        }
        if self.switches[sw.index()].role != SwitchRole::Access {
            return Err(Error::Config(format!(
                "{sw} is not an access switch; base stations attach to access switches"
            )));
        }
        if self.base_stations.iter().any(|b| b.access_switch == sw) {
            return Err(Error::Config(format!("{sw} already hosts a base station")));
        }
        let port = self.switches[sw.index()].allocate_port();
        let id = BaseStationId(self.base_stations.len() as u32);
        self.base_stations.push(BaseStation {
            id,
            access_switch: sw,
            radio_port: port,
        });
        Ok(id)
    }

    /// Declares a gateway switch's Internet uplink.
    pub fn attach_gateway(&mut self, sw: SwitchId) -> Result<GatewayId> {
        if sw.index() >= self.switches.len() {
            return Err(Error::NotFound(format!("gateway switch {sw} unknown")));
        }
        if self.switches[sw.index()].role != SwitchRole::Gateway {
            return Err(Error::Config(format!("{sw} is not a gateway switch")));
        }
        let port = self.switches[sw.index()].allocate_port();
        let id = GatewayId(self.gateways.len() as u32);
        self.gateways.push(GatewayUplink {
            id,
            switch: sw,
            port,
        });
        Ok(id)
    }

    /// Validates and freezes the topology. Requirements: at least one
    /// gateway, at least one base station, and full connectivity (every
    /// switch reachable from the first gateway).
    pub fn build(self) -> Result<Topology> {
        if self.gateways.is_empty() {
            return Err(Error::Config("topology has no gateway".into()));
        }
        if self.base_stations.is_empty() {
            return Err(Error::Config("topology has no base station".into()));
        }
        // connectivity check: BFS from the first gateway
        let n = self.switches.len();
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        let root = self.gateways[0].switch;
        seen[root.index()] = true;
        queue.push_back(root);
        let mut reached = 1usize;
        while let Some(sw) = queue.pop_front() {
            for &(next, _, _) in &self.adjacency[sw.index()] {
                if !seen[next.index()] {
                    seen[next.index()] = true;
                    reached += 1;
                    queue.push_back(next);
                }
            }
        }
        if reached != n {
            return Err(Error::Config(format!(
                "topology is disconnected: {reached}/{n} switches reachable from {root}"
            )));
        }

        let mut mb_by_kind: HashMap<MiddleboxKind, Vec<MiddleboxId>> = HashMap::new();
        for mb in &self.middleboxes {
            mb_by_kind.entry(mb.kind).or_default().push(mb.id);
        }
        let access_to_bs = self
            .base_stations
            .iter()
            .map(|b| (b.access_switch, b.id))
            .collect();

        Ok(Topology {
            switches: self.switches,
            links: self.links,
            adjacency: self.adjacency,
            middleboxes: self.middleboxes,
            base_stations: self.base_stations,
            gateways: self.gateways,
            mb_by_kind,
            access_to_bs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// gw — core — access(+bs), with a firewall on core
    fn tiny() -> Topology {
        let mut b = TopologyBuilder::new();
        let gw = b.add_switch(SwitchRole::Gateway);
        let core = b.add_switch(SwitchRole::Core);
        let acc = b.add_switch(SwitchRole::Access);
        b.link(gw, core).unwrap();
        b.link(core, acc).unwrap();
        b.attach_middlebox(MiddleboxKind::Firewall, core).unwrap();
        b.attach_base_station(acc).unwrap();
        b.attach_gateway(gw).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_consistent_graph() {
        let t = tiny();
        assert_eq!(t.switch_count(), 3);
        assert_eq!(t.links().len(), 2);
        assert_eq!(t.base_stations().len(), 1);
        assert_eq!(t.gateways().len(), 1);
        assert_eq!(t.instances_of(MiddleboxKind::Firewall).len(), 1);
        assert!(t.instances_of(MiddleboxKind::Transcoder).is_empty());
    }

    #[test]
    fn ports_are_distinct_per_switch() {
        let t = tiny();
        let core = SwitchId(1);
        // core has: link to gw, link to acc, firewall port → ports 1,2,3
        assert_eq!(t.switch(core).port_count(), 4);
        let mut ports: Vec<u16> = t
            .neighbors(core)
            .iter()
            .map(|(_, p, _)| p.0)
            .chain(
                t.middleboxes()
                    .iter()
                    .filter(|m| m.switch == core)
                    .map(|m| m.port.0),
            )
            .collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 3);
        assert!(!ports.contains(&0), "port 0 is reserved");
    }

    #[test]
    fn port_towards_matches_adjacency() {
        let t = tiny();
        let (gw, core) = (SwitchId(0), SwitchId(1));
        let p = t.port_towards(gw, core).unwrap();
        assert_eq!(
            t.neighbors(gw)
                .iter()
                .find(|(n, _, _)| *n == core)
                .unwrap()
                .1,
            p
        );
        assert!(t.port_towards(gw, SwitchId(2)).is_none());
    }

    #[test]
    fn link_opposite() {
        let t = tiny();
        let l = t.links()[0];
        assert_eq!(l.opposite(l.a.0).unwrap().0, l.b.0);
        assert_eq!(l.opposite(l.b.0).unwrap().0, l.a.0);
        assert!(l.opposite(SwitchId(99)).is_none());
    }

    #[test]
    fn rejects_self_and_duplicate_links() {
        let mut b = TopologyBuilder::new();
        let a = b.add_switch(SwitchRole::Core);
        let c = b.add_switch(SwitchRole::Core);
        assert!(b.link(a, a).is_err());
        b.link(a, c).unwrap();
        assert!(b.link(a, c).is_err());
        assert!(b.link(c, a).is_err());
    }

    #[test]
    fn rejects_base_station_on_non_access() {
        let mut b = TopologyBuilder::new();
        let core = b.add_switch(SwitchRole::Core);
        assert!(b.attach_base_station(core).is_err());
    }

    #[test]
    fn rejects_second_base_station_on_same_switch() {
        let mut b = TopologyBuilder::new();
        let acc = b.add_switch(SwitchRole::Access);
        b.attach_base_station(acc).unwrap();
        assert!(b.attach_base_station(acc).is_err());
    }

    #[test]
    fn build_rejects_disconnected() {
        let mut b = TopologyBuilder::new();
        let gw = b.add_switch(SwitchRole::Gateway);
        let acc = b.add_switch(SwitchRole::Access);
        // no link between them
        b.attach_base_station(acc).unwrap();
        b.attach_gateway(gw).unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn build_rejects_missing_gateway_or_bs() {
        let mut b = TopologyBuilder::new();
        let acc = b.add_switch(SwitchRole::Access);
        b.attach_base_station(acc).unwrap();
        assert!(b.build().is_err());

        let mut b = TopologyBuilder::new();
        let gw = b.add_switch(SwitchRole::Gateway);
        b.attach_gateway(gw).unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn base_station_lookup_by_access_switch() {
        let t = tiny();
        assert_eq!(t.base_station_at(SwitchId(2)), Some(BaseStationId(0)));
        assert_eq!(t.base_station_at(SwitchId(0)), None);
        let bs = t.base_station(BaseStationId(0));
        assert_eq!(bs.access_switch, SwitchId(2));
    }
}
