//! Network topology for the SoftCell core.
//!
//! A SoftCell network (paper Fig. 2) consists of:
//!
//! * **access switches**, one per base station — software switches at the
//!   low-bandwidth edge;
//! * **aggregation and core switches** — commodity hardware forming the
//!   fabric;
//! * **gateway switches** facing the Internet; and
//! * **middlebox instances** hanging off switches anywhere in the fabric.
//!
//! [`graph`] defines the mutable topology model and its builder;
//! [`cellular`] generates the synthetic three-layer topology of the
//! paper's large-scale simulations (§6.3: ring access clusters, `k` pods
//! of `k` full-mesh aggregation switches, `k²` full-mesh core switches, a
//! gateway — `10k³/4` base stations in total) plus a small hand-made
//! topology for examples; [`path`] provides deterministic BFS shortest
//! paths and the waypoint routing that turns "traverse firewall then
//! transcoder then exit" into a concrete [`path::PolicyPath`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cellular;
pub mod graph;
pub mod path;

pub use cellular::{small_topology, CellularParams};
pub use graph::{Link, Middlebox, SwitchNode, SwitchRole, Topology, TopologyBuilder};
pub use path::{PathElement, PolicyPath, ShortestPaths};
