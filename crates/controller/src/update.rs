//! Two-phase consistent updates (paper §3.2 installs rules "using
//! consistent updates techniques \[23\]" — Reitblatt et al.).
//!
//! The per-packet consistency guarantee: every packet is processed
//! entirely by the old rule set or entirely by the new one, never a mix.
//! Mechanism: rules are stamped with a configuration version; ingress
//! (access) switches stamp packets with their current version; interior
//! rules match only their version.
//!
//! 1. **Prepare** — install the new rules guarded by `version = v+1`
//!    alongside the old `v`-guarded rules. In-flight `v` packets are
//!    untouched.
//! 2. **Commit** — atomically flip the ingress stamp to `v+1`. From this
//!    instant new packets see only the new configuration.
//! 3. **Cleanup** — once no `v` packets can remain in flight (a network
//!    diameter's worth of time), garbage-collect the `v` rules.

use softcell_dataplane::Switch;
use softcell_types::{Error, Result, SwitchId};

use crate::ops::RuleOp;

/// A staged two-phase update across a set of switches.
#[derive(Debug)]
pub struct TwoPhaseUpdate {
    old_version: u32,
    new_version: u32,
    staged: Vec<RuleOp>,
    committed: bool,
}

impl TwoPhaseUpdate {
    /// Starts an update that transitions `old_version → old_version + 1`.
    pub fn new(old_version: u32) -> Self {
        TwoPhaseUpdate {
            old_version,
            new_version: old_version + 1,
            staged: Vec::new(),
            committed: false,
        }
    }

    /// The version new rules are guarded with.
    pub fn new_version(&self) -> u32 {
        self.new_version
    }

    /// Phase 1: installs `ops` with the new-version guard added to every
    /// matcher. Remove ops are deferred to cleanup (removing old rules
    /// early would break in-flight packets).
    pub fn prepare(&mut self, network: &mut [Switch], ops: Vec<RuleOp>) -> Result<()> {
        if self.committed {
            return Err(Error::InvalidState("update already committed".into()));
        }
        for op in ops {
            match op {
                RuleOp::Install {
                    switch,
                    priority,
                    matcher,
                    action,
                } => {
                    let guarded = matcher.with_version(self.new_version);
                    switch_mut(network, switch)?
                        .table
                        .install(priority, guarded, action)?;
                    self.staged.push(RuleOp::Install {
                        switch,
                        priority,
                        matcher: guarded,
                        action,
                    });
                }
                RuleOp::Remove { switch, matcher } => {
                    // the old rule dies at cleanup, not now
                    self.staged.push(RuleOp::Remove {
                        switch,
                        matcher: matcher.with_version(self.old_version),
                    });
                }
            }
        }
        Ok(())
    }

    /// Phase 2: flips the ingress stamp on the given access switches.
    /// This is the atomic cut-over point.
    pub fn commit(&mut self, network: &mut [Switch], ingress: &[SwitchId]) -> Result<()> {
        if self.committed {
            return Err(Error::InvalidState("update already committed".into()));
        }
        for &sw in ingress {
            switch_mut(network, sw)?.ingress_version = self.new_version;
        }
        self.committed = true;
        Ok(())
    }

    /// Phase 3: removes superseded old-version rules. Call once no
    /// old-version packet can still be in flight.
    pub fn cleanup(self, network: &mut [Switch]) -> Result<usize> {
        if !self.committed {
            return Err(Error::InvalidState(
                "cleanup before commit would break in-flight packets".into(),
            ));
        }
        let mut removed = 0;
        for op in &self.staged {
            if let RuleOp::Remove { switch, matcher } = op {
                removed += switch_mut(network, *switch)?
                    .table
                    .remove_where(|r| r.matcher == *matcher);
            }
        }
        Ok(removed)
    }
}

fn switch_mut(network: &mut [Switch], id: SwitchId) -> Result<&mut Switch> {
    network
        .get_mut(id.index())
        .ok_or_else(|| Error::NotFound(format!("{id} not in network")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use softcell_dataplane::matcher::LookupKey;
    use softcell_dataplane::{Action, ForwardDecision, Match};
    use softcell_packet::{build_flow_packet, FiveTuple, HeaderView, Protocol};
    use softcell_types::{PortNo, SimTime};
    use std::net::Ipv4Addr;

    fn network() -> Vec<Switch> {
        vec![Switch::access(SwitchId(0)), Switch::fabric(SwitchId(1))]
    }

    fn packet() -> Vec<u8> {
        build_flow_packet(
            FiveTuple {
                src: Ipv4Addr::new(10, 0, 0, 1),
                dst: Ipv4Addr::new(8, 8, 8, 8),
                src_port: 1000,
                dst_port: 80,
                proto: Protocol::Tcp,
            },
            64,
            0,
            &[],
        )
    }

    fn old_rule() -> RuleOp {
        RuleOp::Install {
            switch: SwitchId(1),
            priority: 100,
            matcher: Match::ANY,
            action: Action::Forward(PortNo(1)),
        }
    }

    fn install_v0(network: &mut [Switch]) {
        // the running configuration: version-0 rules
        let RuleOp::Install {
            priority,
            matcher,
            action,
            ..
        } = old_rule()
        else {
            unreachable!()
        };
        network[1]
            .table
            .install(priority, matcher.with_version(0), action)
            .unwrap();
    }

    #[test]
    fn packets_see_old_rules_until_commit() {
        let mut net = network();
        install_v0(&mut net);
        let mut upd = TwoPhaseUpdate::new(0);
        upd.prepare(
            &mut net,
            vec![
                RuleOp::Install {
                    switch: SwitchId(1),
                    priority: 100,
                    matcher: Match::ANY,
                    action: Action::Forward(PortNo(2)),
                },
                RuleOp::Remove {
                    switch: SwitchId(1),
                    matcher: Match::ANY,
                },
            ],
        )
        .unwrap();

        // a packet stamped with the (still current) version 0 follows old
        let mut buf = packet();
        let d = net[1]
            .process(&mut buf, PortNo(9), 0, SimTime::ZERO)
            .unwrap();
        assert_eq!(d, ForwardDecision::Out(PortNo(1)));

        // after commit, new packets are stamped 1 and follow the new rule
        upd.commit(&mut net, &[SwitchId(0)]).unwrap();
        let stamp = net[0].ingress_version;
        assert_eq!(stamp, 1);
        let mut buf = packet();
        let d = net[1]
            .process(&mut buf, PortNo(9), stamp, SimTime::ZERO)
            .unwrap();
        assert_eq!(d, ForwardDecision::Out(PortNo(2)));

        // in-flight version-0 packets still see the old rule (not yet GCed)
        let mut buf = packet();
        let d = net[1]
            .process(&mut buf, PortNo(9), 0, SimTime::ZERO)
            .unwrap();
        assert_eq!(d, ForwardDecision::Out(PortNo(1)));

        // cleanup removes exactly the superseded rule
        let removed = upd.cleanup(&mut net).unwrap();
        assert_eq!(removed, 1);
        let key = LookupKey {
            in_port: PortNo(9),
            view: HeaderView::parse(&packet()).unwrap(),
            version: 0,
        };
        assert!(net[1].table.peek(&key).is_none(), "v0 rules are gone");
    }

    #[test]
    fn cleanup_before_commit_is_refused() {
        let mut net = network();
        let mut upd = TwoPhaseUpdate::new(0);
        upd.prepare(&mut net, vec![old_rule()]).unwrap();
        assert!(upd.cleanup(&mut net).is_err());
    }

    #[test]
    fn double_commit_is_refused() {
        let mut net = network();
        let mut upd = TwoPhaseUpdate::new(0);
        upd.commit(&mut net, &[SwitchId(0)]).unwrap();
        assert!(upd.commit(&mut net, &[SwitchId(0)]).is_err());
        assert!(upd.prepare(&mut net, vec![]).is_err());
    }

    #[test]
    fn unknown_switch_is_an_error() {
        let mut net = network();
        let mut upd = TwoPhaseUpdate::new(0);
        let bad = RuleOp::Install {
            switch: SwitchId(99),
            priority: 1,
            matcher: Match::ANY,
            action: Action::Drop,
        };
        assert!(upd.prepare(&mut net, vec![bad]).is_err());
    }
}
