//! The controller's wire front-end and the agent's channel-backed proxy.
//!
//! This is where the southbound protocol (`softcell-ctlchan`) meets the
//! domain types. [`ControllerServer::serve`] runs one connection's
//! dispatch loop on its own thread: packet-in events are translated to
//! worker-pool [`Request`]s, and the answers go back as classifier
//! replies and flow-mod batches under the request's xid.
//! [`ChannelController`] is the other end — a [`ControllerApi`]
//! implementation the unchanged [`crate::agent::LocalAgent`] can run
//! against, so the same agent code drives an in-process controller or
//! one behind a loopback queue or TCP socket.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::bounded;

use softcell_ctlchan::{
    CtlChannel, Message, PacketIn, RetryPolicy, Transport, WireBatchGroup, WireClassifier,
    WireFlowMod, WirePathTags, WireUeRecord,
};
use softcell_policy::clause::ClauseId;
use softcell_policy::UeClassifier;
use softcell_telemetry::{Registry, ReqTrace, TraceContext};
use softcell_types::{
    shard_of_station, BaseStationId, Error, PortNo, Result, SimTime, UeId, UeImsi,
};

use crate::agent::ControllerApi;
use crate::core::{AttachGrant, PathTags};
use crate::server::{ControllerServer, Request, RequestRouter};
use crate::state::UeRecord;

impl From<UeRecord> for WireUeRecord {
    fn from(r: UeRecord) -> WireUeRecord {
        WireUeRecord {
            imsi: r.imsi,
            permanent_ip: r.permanent_ip,
            bs: r.bs,
            ue_id: r.ue_id,
            since: r.since,
        }
    }
}

impl From<WireUeRecord> for UeRecord {
    fn from(r: WireUeRecord) -> UeRecord {
        UeRecord {
            imsi: r.imsi,
            permanent_ip: r.permanent_ip,
            bs: r.bs,
            ue_id: r.ue_id,
            since: r.since,
        }
    }
}

impl From<PathTags> for WirePathTags {
    fn from(t: PathTags) -> WirePathTags {
        WirePathTags {
            uplink_entry: t.uplink_entry,
            uplink_exit: t.uplink_exit,
            downlink_final: t.downlink_final,
            access_out_port: t.access_out_port,
            qos: t.qos,
        }
    }
}

impl From<WirePathTags> for PathTags {
    fn from(t: WirePathTags) -> PathTags {
        PathTags {
            uplink_entry: t.uplink_entry,
            uplink_exit: t.uplink_exit,
            downlink_final: t.downlink_final,
            access_out_port: t.access_out_port,
            qos: t.qos,
        }
    }
}

/// Flattens a classifier for the wire.
pub fn classifier_to_wire(c: &UeClassifier) -> WireClassifier {
    WireClassifier {
        entries: c.entries().to_vec(),
        fallback: c.fallback(),
    }
}

/// Rebuilds a classifier from its wire form.
pub fn classifier_from_wire(w: WireClassifier) -> UeClassifier {
    UeClassifier::from_parts(w.entries, w.fallback)
}

impl ControllerServer {
    /// Serves one agent connection over `transport` on a dedicated
    /// thread, translating packet-in events to worker-pool requests.
    /// Returns when the agent disconnects. Spawn once per connection —
    /// concurrency across agents comes from one serve thread each, all
    /// feeding the same worker pool.
    pub fn serve<T: Transport + 'static>(&self, transport: T) -> JoinHandle<Result<()>> {
        let router = self.router();
        let sharded = self.is_sharded();
        let shared = self.shared_state();
        std::thread::spawn(move || {
            // One reply pair per kind, reused across requests: the serve
            // loop keeps at most one worker request outstanding.
            let (att_tx, att_rx) = bounded(1);
            let (det_tx, det_rx) = bounded(1);
            let (tag_tx, tag_rx) = bounded(1);
            shared.active_connections.add(1);
            let served = {
                let shared = Arc::clone(&shared);
                move || shared.served.get()
            };
            let shared_for_exit = Arc::clone(&shared);
            let options = softcell_ctlchan::ServeOptions {
                dedup_window: shared.dedup_window(),
            };
            let result = softcell_ctlchan::serve_with_options(
                transport,
                served,
                move |msg, ctx| {
                    let Message::PacketIn(pi) = msg else {
                        return None;
                    };
                    let reply = match *pi {
                        PacketIn::Attach {
                            imsi,
                            bs,
                            ue_id,
                            now,
                        } => (|| {
                            shared
                                .telemetry
                                .journal()
                                .record("attach", imsi.0, u64::from(bs.0));
                            route_packet_in(
                                &router,
                                &shared,
                                Request::Attach {
                                    imsi,
                                    bs,
                                    ue_id,
                                    now,
                                    reply: att_tx.clone(),
                                    trace: ReqTrace::at_enqueue(ctx),
                                },
                            )?;
                            let grant = att_rx.recv().map_err(|_| pool_gone())??;
                            Ok(Message::ClassifierReply {
                                record: grant.record.into(),
                                classifier: Some(classifier_to_wire(&grant.classifier)),
                            })
                        })(),
                        PacketIn::PathRequest { bs, clause } => (|| {
                            shared.telemetry.journal().record(
                                "policy_path",
                                u64::from(bs.0),
                                u64::from(clause.0),
                            );
                            route_packet_in(
                                &router,
                                &shared,
                                Request::PathTag {
                                    bs,
                                    clause,
                                    reply: tag_tx.clone(),
                                    trace: ReqTrace::at_enqueue(ctx),
                                },
                            )?;
                            let tag = tag_rx.recv().map_err(|_| pool_gone())??;
                            // same path stand-in as the worker pool: one tag
                            // end to end, first fabric port, no QoS
                            let tags = PathTags {
                                uplink_entry: tag,
                                uplink_exit: tag,
                                downlink_final: tag,
                                access_out_port: PortNo(1),
                                qos: None,
                            };
                            let mods = vec![WireFlowMod {
                                bs,
                                clause,
                                tags: tags.into(),
                            }];
                            // a sharded server answers with the ticketed,
                            // barrier-delimited batch form
                            Ok(if sharded {
                                let shard = shard_of_station(bs, router.domains()) as u16;
                                let mut batch_sp =
                                    Registry::global().tracer().span_in(ctx, "flow_mod_batch");
                                batch_sp.set_shard(shard as usize);
                                // AcqRel: the batch sequence number orders
                                // flow-mod batches across serve threads, so
                                // stamping it must not be reorderable against
                                // the batch contents it numbers.
                                let seq = shared.batch_seq.fetch_add(1, Ordering::AcqRel) as u32;
                                batch_sp.set_label(u64::from(seq));
                                shared.telemetry.journal().record(
                                    "flow_mod_batch",
                                    u64::from(shard),
                                    u64::from(seq),
                                );
                                Message::FlowModBatch {
                                    shard,
                                    seq,
                                    groups: vec![WireBatchGroup {
                                        bs,
                                        barrier: true,
                                        mods,
                                    }],
                                }
                            } else {
                                Message::FlowMod(mods)
                            })
                        })(),
                        PacketIn::Detach { imsi } => (|| {
                            shared.telemetry.journal().record("detach", imsi.0, 0);
                            route_packet_in(
                                &router,
                                &shared,
                                Request::Detach {
                                    imsi,
                                    reply: det_tx.clone(),
                                    trace: ReqTrace::at_enqueue(ctx),
                                },
                            )?;
                            let record = det_rx.recv().map_err(|_| pool_gone())??;
                            Ok(Message::ClassifierReply {
                                record: record.into(),
                                classifier: None,
                            })
                        })(),
                    };
                    Some(reply.unwrap_or_else(|e| Message::from_error(&e)))
                },
                options,
            );
            // Slot accounting: a dead agent frees its serve slot whether
            // it closed cleanly or tore the connection mid-frame, and the
            // server keeps accepting (re-)registrations on fresh
            // transports. The error is surfaced, not swallowed.
            shared_for_exit.active_connections.sub(1);
            shared_for_exit.disconnects.inc();
            if result.is_err() {
                shared_for_exit.connection_errors.inc();
            }
            result
        })
    }
}

fn pool_gone() -> Error {
    Error::InvalidState("controller worker pool gone".into())
}

/// Routes a packet-in without blocking the serve loop: a full domain
/// queue sheds the request — counted in `server_queue_rejected` and
/// answered with an error the agent can retry — instead of stalling
/// this connection's barrier and echo traffic behind the backlog (and
/// instead of the pre-telemetry behavior of discarding the overload
/// signal invisibly).
fn route_packet_in(
    router: &RequestRouter,
    shared: &crate::server::Shared,
    req: Request,
) -> Result<()> {
    if router.try_route(req)? {
        return Ok(());
    }
    shared.queue_rejected.inc();
    // rate-limited operator warning: the first shed request logs, then
    // one line per 4096 to keep a sustained overload from flooding
    // stderr (process-wide, deliberately coarse)
    static SHED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    // softcell-lint: allow(atomics-order) -- pure counter: only rate-limits a log line, no thread reads it for ordering
    let n = SHED.fetch_add(1, Ordering::Relaxed);
    if n.is_multiple_of(4096) {
        eprintln!(
            "softcell-controller: request queue full; shedding packet-in (seen {} since start)",
            n + 1
        );
    }
    Err(Error::Exhausted("controller request queue full".into()))
}

/// A [`ControllerApi`] that reaches the controller over a control
/// channel — the agent side of the southbound protocol. Each call is one
/// framed request/reply round trip.
///
/// With a [`RetryPolicy`] set, every request runs under a per-attempt
/// deadline and is retried (same xid, exponential backoff) on timeout;
/// the server's xid dedup window guarantees at-most-once application.
/// All three [`ControllerApi`] operations are safe to retry this way:
/// attach and path-request are idempotent upserts, and a retransmitted
/// detach is answered from the dedup cache instead of failing NotFound.
pub struct ChannelController<T: Transport> {
    chan: CtlChannel<T>,
    bs: BaseStationId,
    retry: Option<RetryPolicy>,
}

impl<T: Transport> ChannelController<T> {
    /// Performs the hello handshake over `transport` and returns the
    /// connected proxy. `bs` identifies this agent to the controller.
    pub fn connect(transport: T, bs: BaseStationId) -> Result<ChannelController<T>> {
        let mut chan = CtlChannel::new(transport);
        chan.hello(bs.0)?;
        Ok(ChannelController {
            chan,
            bs,
            retry: None,
        })
    }

    /// The underlying channel (barrier, echo, stats, counters).
    pub fn channel(&mut self) -> &mut CtlChannel<T> {
        &mut self.chan
    }

    /// The base station this proxy registered as.
    pub fn base_station(&self) -> BaseStationId {
        self.bs
    }

    /// Enables (or, with `None`, disables) timeout + retry on every
    /// subsequent request.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        self.retry = policy;
    }

    /// Replaces a dead transport with a freshly connected one, redoing
    /// the hello handshake. Correlation state restarts clean: stashed
    /// replies from the old connection are discarded with it.
    pub fn reconnect(&mut self, transport: T) -> Result<()> {
        let mut chan = CtlChannel::new(transport);
        chan.hello(self.bs.0)?;
        self.chan = chan;
        // agent-side lifecycle: reconnects happen wherever the agent
        // runs, so they land on the process-global registry
        let reg = softcell_telemetry::Registry::global();
        reg.counter("softcell_controller_reconnects_total").inc();
        reg.journal().record("reconnect", u64::from(self.bs.0), 0);
        Ok(())
    }

    /// Re-registers everything `agent` holds after a reconnect: each UE
    /// is re-attached over the wire (the controller upserts, keeping
    /// permanent addresses), the classifier set is re-fetched, the agent
    /// rebuilt from the fresh grants via the failover machinery
    /// ([`crate::agent::LocalAgent::restart_from`]), and the agent-side
    /// microflow snapshot (per-UE flow records) re-adopted so ongoing
    /// connections survive the resync. Returns the number of UEs
    /// re-registered.
    pub fn resync(&mut self, agent: &mut crate::agent::LocalAgent, now: SimTime) -> Result<usize> {
        let snapshot: Vec<(UeImsi, UeId, Vec<crate::agent::AgentFlow>)> = agent
            .attached()
            .map(|ue| (ue.imsi, ue.ue_id, ue.flows.clone()))
            .collect();
        let bs = self.bs;
        let mut grants = Vec::with_capacity(snapshot.len());
        for (imsi, ue_id, _) in &snapshot {
            let grant = self.attach_ue(*imsi, bs, *ue_id, now)?;
            grants.push((grant.record, grant.classifier));
        }
        let n = agent.restart_from(grants)?;
        for (imsi, _, flows) in snapshot {
            if !flows.is_empty() {
                agent.adopt_flows(imsi, flows)?;
            }
        }
        let reg = softcell_telemetry::Registry::global();
        reg.counter("softcell_controller_resyncs_total").inc();
        reg.journal().record("resync", u64::from(bs.0), n as u64);
        Ok(n)
    }

    fn round_trip(&mut self, pi: PacketIn) -> Result<Message<'static>> {
        // Each agent operation is a trace root: when sampled, the
        // channel ships this context on the request frame and the
        // controller's serve/worker spans land in the same trace.
        let kind = match pi {
            PacketIn::Attach { .. } => "agent_attach",
            PacketIn::PathRequest { .. } => "agent_path_request",
            PacketIn::Detach { .. } => "agent_detach",
        };
        let sp = Registry::global().tracer().root(kind);
        self.chan.set_trace(sp.ctx());
        let result = (|| {
            let msg = Message::PacketIn(pi);
            let raw = match &self.retry {
                Some(policy) => self.chan.request_with_retry(&msg, policy)?,
                None => self.chan.request(&msg)?,
            };
            let frame = softcell_ctlchan::Frame::new_checked(raw.as_slice())?;
            let msg = frame.message()?;
            if let Some(e) = msg.as_error() {
                return Err(e);
            }
            Ok(msg.into_static())
        })();
        self.chan.set_trace(TraceContext::NONE);
        drop(sp);
        result
    }
}

impl<T: Transport> ControllerApi for ChannelController<T> {
    fn attach_ue(
        &mut self,
        imsi: UeImsi,
        bs: BaseStationId,
        ue_id: UeId,
        now: SimTime,
    ) -> Result<AttachGrant> {
        match self.round_trip(PacketIn::Attach {
            imsi,
            bs,
            ue_id,
            now,
        })? {
            Message::ClassifierReply {
                record,
                classifier: Some(c),
            } => Ok(AttachGrant {
                record: record.into(),
                classifier: classifier_from_wire(c),
            }),
            other => Err(softcell_ctlchan::channel::unexpected(
                "classifier reply",
                &other,
            )),
        }
    }

    fn request_policy_path(&mut self, bs: BaseStationId, clause: ClauseId) -> Result<PathTags> {
        // a classic server answers `flow_mod`, a sharded one the
        // ticketed `flow_mod_batch` — the agent accepts both
        let mods: Vec<WireFlowMod> = match self.round_trip(PacketIn::PathRequest { bs, clause })? {
            Message::FlowMod(mods) => mods,
            Message::FlowModBatch { groups, .. } => groups
                .into_iter()
                .filter(|g| g.bs == bs)
                .flat_map(|g| g.mods)
                .collect(),
            other => Err(softcell_ctlchan::channel::unexpected("flow mod", &other))?,
        };
        mods.iter()
            .find(|m| m.bs == bs && m.clause == clause)
            .map(|m| m.tags.into())
            .ok_or_else(|| {
                Error::InvalidState(format!(
                    "flow-mod batch missing entry for ({bs}, {clause:?})"
                ))
            })
    }

    fn detach_ue(&mut self, imsi: UeImsi) -> Result<UeRecord> {
        match self.round_trip(PacketIn::Detach { imsi })? {
            Message::ClassifierReply {
                record,
                classifier: None,
            } => Ok(record.into()),
            other => Err(softcell_ctlchan::channel::unexpected(
                "detach reply",
                &other,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softcell_ctlchan::loopback_pair;
    use softcell_policy::{ServicePolicy, SubscriberAttributes};
    use std::net::Ipv4Addr;

    fn subscribers(n: u64) -> Vec<SubscriberAttributes> {
        (0..n)
            .map(|i| SubscriberAttributes::default_home(UeImsi(i)))
            .collect()
    }

    #[test]
    fn attach_detach_over_the_wire() {
        let server =
            ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers(4), 2)
                .unwrap();
        let (agent_end, controller_end) = loopback_pair();
        let serve = server.serve(controller_end);

        let mut ctl = ChannelController::connect(agent_end, BaseStationId(0)).unwrap();
        let grant = ctl
            .attach_ue(UeImsi(1), BaseStationId(0), UeId(0), SimTime::ZERO)
            .unwrap();
        assert_eq!(grant.record.imsi, UeImsi(1));
        assert!(!grant.classifier.entries().is_empty());

        // a re-attach keeps the permanent address
        let again = ctl
            .attach_ue(UeImsi(1), BaseStationId(1), UeId(3), SimTime(50))
            .unwrap();
        assert_eq!(again.record.permanent_ip, grant.record.permanent_ip);
        assert_eq!(again.record.bs, BaseStationId(1));

        let rec = ctl.detach_ue(UeImsi(1)).unwrap();
        assert_eq!(rec.permanent_ip, grant.record.permanent_ip);
        assert_eq!(
            ctl.detach_ue(UeImsi(1)).unwrap_err(),
            Error::NotFound("imsi1 not attached".into())
        );

        drop(ctl);
        serve.join().unwrap().unwrap();
        server.shutdown();
    }

    #[test]
    fn unknown_subscriber_error_crosses_the_wire() {
        let server =
            ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers(1), 1)
                .unwrap();
        let (agent_end, controller_end) = loopback_pair();
        let serve = server.serve(controller_end);
        let mut ctl = ChannelController::connect(agent_end, BaseStationId(0)).unwrap();
        let err = ctl
            .attach_ue(UeImsi(99), BaseStationId(0), UeId(0), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, Error::NotFound(_)), "got {err:?}");
        drop(ctl);
        serve.join().unwrap().unwrap();
        server.shutdown();
    }

    #[test]
    fn path_request_returns_stable_tags() {
        let server =
            ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers(1), 4)
                .unwrap();
        let (agent_end, controller_end) = loopback_pair();
        let serve = server.serve(controller_end);
        let mut ctl = ChannelController::connect(agent_end, BaseStationId(2)).unwrap();
        let t1 = ctl
            .request_policy_path(BaseStationId(2), ClauseId(5))
            .unwrap();
        let t2 = ctl
            .request_policy_path(BaseStationId(2), ClauseId(5))
            .unwrap();
        assert_eq!(t1, t2, "idempotent per (bs, clause)");
        drop(ctl);
        serve.join().unwrap().unwrap();
        server.shutdown();
    }

    #[test]
    fn agent_runs_unchanged_over_the_wire() {
        use crate::agent::{FlowSetup, LocalAgent};
        use softcell_dataplane::Switch;
        use softcell_packet::{build_flow_packet, FiveTuple, HeaderView, Protocol};
        use softcell_types::{AddressingScheme, PortEmbedding, SwitchId};

        let server =
            ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers(4), 2)
                .unwrap();
        let (agent_end, controller_end) = loopback_pair();
        let serve = server.serve(controller_end);
        let mut ctl = ChannelController::connect(agent_end, BaseStationId(0)).unwrap();

        let mut agent = LocalAgent::new(
            BaseStationId(0),
            PortNo(2),
            AddressingScheme::default_scheme(),
            PortEmbedding::default_embedding(),
        );
        let mut switch = Switch::access(SwitchId(0));
        let rec = agent
            .handle_attach(UeImsi(0), &mut ctl, SimTime::ZERO)
            .unwrap();
        let tuple = FiveTuple {
            src: rec.permanent_ip,
            dst: Ipv4Addr::new(93, 184, 216, 34),
            src_port: 50_000,
            dst_port: 443,
            proto: Protocol::Tcp,
        };
        let view = HeaderView::parse(&build_flow_packet(tuple, 64, 0, &[])).unwrap();
        let setup = agent
            .handle_new_flow(&view, &mut ctl, &mut switch, SimTime::ZERO)
            .unwrap();
        assert!(
            matches!(
                setup,
                FlowSetup::Allowed {
                    cache_hit: false,
                    ..
                }
            ),
            "first flow escalates over the wire: {setup:?}"
        );
        // transport counters saw the attach and the path request
        let stats = ctl.channel().stats().unwrap();
        assert!(stats.rx_msgs >= 3, "hello + attach + path + stats");
        drop(ctl);
        serve.join().unwrap().unwrap();
        server.shutdown();
    }

    #[test]
    fn sharded_server_replies_with_flow_mod_batches() {
        use crate::agent::{FlowSetup, LocalAgent};
        use softcell_dataplane::Switch;
        use softcell_packet::{build_flow_packet, FiveTuple, HeaderView, Protocol};
        use softcell_types::{AddressingScheme, PortEmbedding, SwitchId};

        let server =
            ControllerServer::start_sharded(ServicePolicy::example_carrier_a(1), subscribers(8), 4)
                .unwrap();

        // raw channel: a path request must come back as the ticketed
        // flow_mod_batch form, one barrier-fenced group for the station
        let (agent_end, controller_end) = loopback_pair();
        let serve = server.serve(controller_end);
        let mut chan = CtlChannel::new(agent_end);
        chan.hello(0).unwrap();
        let raw = chan
            .request(&Message::PacketIn(PacketIn::PathRequest {
                bs: BaseStationId(0),
                clause: ClauseId(2),
            }))
            .unwrap();
        let frame = softcell_ctlchan::Frame::new_checked(raw.as_slice()).unwrap();
        let Message::FlowModBatch { shard, groups, .. } = frame.message().unwrap() else {
            panic!("sharded server must answer flow_mod_batch");
        };
        assert_eq!(shard as usize, shard_of_station(BaseStationId(0), 4));
        assert_eq!(groups.len(), 1);
        assert!(groups[0].barrier);
        assert_eq!(groups[0].bs, BaseStationId(0));
        assert_eq!(groups[0].mods.len(), 1);
        assert_eq!(groups[0].mods[0].clause, ClauseId(2));
        drop(chan);
        serve.join().unwrap().unwrap();

        // and the unchanged agent consumes those replies transparently
        let (agent_end, controller_end) = loopback_pair();
        let serve = server.serve(controller_end);
        let mut ctl = ChannelController::connect(agent_end, BaseStationId(1)).unwrap();
        let mut agent = LocalAgent::new(
            BaseStationId(1),
            PortNo(2),
            AddressingScheme::default_scheme(),
            PortEmbedding::default_embedding(),
        );
        let mut switch = Switch::access(SwitchId(1));
        let rec = agent
            .handle_attach(UeImsi(3), &mut ctl, SimTime::ZERO)
            .unwrap();
        let tuple = FiveTuple {
            src: rec.permanent_ip,
            dst: Ipv4Addr::new(93, 184, 216, 34),
            src_port: 50_000,
            dst_port: 443,
            proto: Protocol::Tcp,
        };
        let view = HeaderView::parse(&build_flow_packet(tuple, 64, 0, &[])).unwrap();
        let setup = agent
            .handle_new_flow(&view, &mut ctl, &mut switch, SimTime::ZERO)
            .unwrap();
        assert!(
            matches!(
                setup,
                FlowSetup::Allowed {
                    cache_hit: false,
                    ..
                }
            ),
            "first flow escalates over the wire: {setup:?}"
        );
        let again = agent
            .handle_new_flow(&view, &mut ctl, &mut switch, SimTime(1))
            .is_err();
        assert!(!again, "repeat flow must not fail");
        drop(ctl);
        serve.join().unwrap().unwrap();
        server.shutdown();
    }

    #[test]
    fn server_survives_midframe_disconnect_and_accepts_reregistration() {
        use softcell_ctlchan::{FaultConfig, FaultTransport};

        let server =
            ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers(4), 2)
                .unwrap();
        let (agent_end, controller_end) = loopback_pair();
        let serve = server.serve(controller_end);

        // the third frame this agent sends is cut mid-frame
        let faulty = FaultTransport::new(
            agent_end,
            FaultConfig {
                disconnect_every: Some(3),
                ..FaultConfig::default()
            },
        );
        let mut ctl = ChannelController::connect(faulty, BaseStationId(0)).unwrap();
        let grant = ctl
            .attach_ue(UeImsi(1), BaseStationId(0), UeId(0), SimTime::ZERO)
            .unwrap();
        assert_eq!(server.active_connections(), 1);

        // hello + attach used two sends; this one injects the cut
        let err = ctl.detach_ue(UeImsi(1)).unwrap_err();
        assert!(matches!(err, Error::InvalidState(_)), "got {err:?}");

        // the serve thread exits with a clean error (torn frame), the
        // slot is freed, and the counters record an errored disconnect
        assert!(serve.join().unwrap().is_err());
        assert_eq!(server.active_connections(), 0);
        assert_eq!(server.disconnects(), 1);
        assert_eq!(server.connection_errors(), 1);

        // re-registration on a fresh transport: same identity, state kept
        let (agent_end, controller_end) = loopback_pair();
        let serve2 = server.serve(controller_end);
        ctl.reconnect(FaultTransport::new(agent_end, FaultConfig::default()))
            .unwrap();
        let again = ctl
            .attach_ue(UeImsi(1), BaseStationId(2), UeId(5), SimTime(9))
            .unwrap();
        assert_eq!(again.record.permanent_ip, grant.record.permanent_ip);
        assert_eq!(again.record.bs, BaseStationId(2));
        assert_eq!(server.active_connections(), 1);

        drop(ctl);
        serve2.join().unwrap().unwrap();
        assert_eq!(server.disconnects(), 2);
        assert_eq!(server.connection_errors(), 1, "clean close is not an error");
        server.shutdown();
    }

    #[test]
    fn resync_replays_agent_state_after_reconnect() {
        use crate::agent::LocalAgent;
        use softcell_dataplane::Switch;
        use softcell_packet::{build_flow_packet, FiveTuple, HeaderView, Protocol};
        use softcell_types::{AddressingScheme, PortEmbedding, SwitchId};

        let server =
            ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers(4), 2)
                .unwrap();
        let (agent_end, controller_end) = loopback_pair();
        let serve = server.serve(controller_end);
        let mut ctl = ChannelController::connect(agent_end, BaseStationId(0)).unwrap();

        let mut agent = LocalAgent::new(
            BaseStationId(0),
            PortNo(2),
            AddressingScheme::default_scheme(),
            PortEmbedding::default_embedding(),
        );
        let mut switch = Switch::access(SwitchId(0));
        let rec0 = agent
            .handle_attach(UeImsi(0), &mut ctl, SimTime::ZERO)
            .unwrap();
        let _rec1 = agent
            .handle_attach(UeImsi(1), &mut ctl, SimTime::ZERO)
            .unwrap();
        let tuple = FiveTuple {
            src: rec0.permanent_ip,
            dst: Ipv4Addr::new(93, 184, 216, 34),
            src_port: 50_000,
            dst_port: 443,
            proto: Protocol::Tcp,
        };
        let view = HeaderView::parse(&build_flow_packet(tuple, 64, 0, &[])).unwrap();
        agent
            .handle_new_flow(&view, &mut ctl, &mut switch, SimTime::ZERO)
            .unwrap();
        let flows_before = agent.flows_of(UeImsi(0)).unwrap().to_vec();
        assert!(!flows_before.is_empty());

        // the connection dies; the server survives and the agent comes
        // back on a new transport and replays its state (reconnect drops
        // the old channel, which the first serve thread observes as a
        // clean close)
        let (agent_end, controller_end) = loopback_pair();
        let serve2 = server.serve(controller_end);
        ctl.reconnect(agent_end).unwrap();
        let n = ctl.resync(&mut agent, SimTime(100)).unwrap();
        assert_eq!(n, 2, "both UEs re-registered");

        // agent state is intact: same UEs, same flow records
        assert_eq!(agent.attached().count(), 2);
        assert_eq!(agent.flows_of(UeImsi(0)).unwrap(), &flows_before[..]);
        // controller state is intact: permanent address survived resync
        let again = ctl
            .attach_ue(UeImsi(0), BaseStationId(0), UeId(0), SimTime(101))
            .unwrap();
        assert_eq!(again.record.permanent_ip, rec0.permanent_ip);

        drop(ctl);
        let _ = serve.join().unwrap();
        serve2.join().unwrap().unwrap();
        server.shutdown();
    }
}
