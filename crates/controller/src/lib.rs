//! The SoftCell controller — the paper's primary contribution.
//!
//! The controller realizes high-level service policies by installing
//! switch rules that steer traffic through middlebox chains, while
//! keeping switch tables small via **multi-dimensional aggregation**
//! (paper §3) and keeping itself off the data path via the **local
//! agents** at base stations (paper §4.2).
//!
//! Module map:
//!
//! * [`shadow`] — the controller's model of every switch's forwarding
//!   state (per-tag next-hop tables with prefix aggregation); Algorithm 1
//!   computes against these and emits deltas.
//! * [`install`] — **Algorithm 1**: per-path tag selection (argmin of new
//!   rules over candidate tags), rule installation with contiguous-prefix
//!   aggregation, and loop disambiguation via tag swapping.
//! * [`ops`] — the concrete rule operations (install/remove on a switch)
//!   the controller emits towards the data plane.
//! * [`state`] — central controller state: subscriber attributes, UE
//!   registry, installed policy paths (the slow-changing, strongly
//!   consistent part of §5.2).
//! * [`core`] — the central controller façade: attach/detach/handoff,
//!   classifier computation, policy-path requests, middlebox instance
//!   selection.
//! * [`agent`] — the local agent at each base station: classifier cache,
//!   UE-ID allocation, microflow rule installation, controller escalation
//!   on cache miss.
//! * [`mobility`] — policy consistency under handoff: base-station
//!   tunnels, microflow-rule copying, shortcut paths (§5.1).
//! * [`offline`] — the §3.2 offline recompute: replay all live paths in
//!   chain-grouped order into a fresh rule set, migrating the fabric.
//! * [`failover`] — replicated control state and recovery: controller
//!   replicas rebuild UE locations from agents; agents refetch from the
//!   controller (§5.2).
//! * [`sharded`] — the UE-partitioned controller core: N worker shards
//!   over a ticket-sequenced shared path engine, cross-shard rendezvous
//!   for handoffs, batched flow-mod emission; differentially verified
//!   against the single-threaded controller (`tests/shard_oracle.rs`).
//! * [`server`] — a threaded controller front-end processing
//!   packet-in/classifier requests, used by the §6.2 micro-benchmarks.
//! * [`wire`] — the southbound control channel front-end: serves
//!   `softcell-ctlchan` connections against the worker pool, and
//!   [`wire::ChannelController`], the framed-transport
//!   [`agent::ControllerApi`] proxy agents run against.
//! * [`update`] — two-phase consistent updates (version stamping at the
//!   ingress edge) for rule transitions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod core;
pub mod failover;
pub mod install;
pub mod mobility;
pub mod offline;
pub mod ops;
pub mod server;
pub mod shadow;
pub mod sharded;
pub mod state;
pub mod update;
pub mod wire;

pub use agent::LocalAgent;
pub use core::{CentralController, ControllerConfig, InstanceSelection};
pub use install::{InstallReport, PathInstaller, TagPolicy};
pub use ops::{RuleOp, RuleSink};
pub use shadow::{Divergence, DivergenceKind, Entry, NextHop, ShadowSwitch, ShadowTables};
pub use sharded::{ShardEvent, ShardEventKind, ShardedController, ShardedRun, ShardedStats};
pub use state::ControllerState;
