//! Threaded controller front-end for the §6.2 micro-benchmarks.
//!
//! The paper benchmarks its Floodlight-based controller with Cbench: 1000
//! emulated switches (= local agents) flood packet-in events and the
//! controller answers with packet classifiers, reaching 2.2 M
//! requests/second with 15 threads. [`ControllerServer`] is the Rust
//! analogue: a worker pool over a crossbeam channel computing per-UE
//! classifiers (attach handling) and policy-tag answers (path requests)
//! against shared, mostly-read state.
//!
//! Two pool shapes are supported:
//!
//! * **Classic** ([`ControllerServer::start`]): one request queue fanned
//!   out to M workers sharing all mutable state (the path map behind a
//!   mutex, permanent addresses from an atomic counter).
//! * **Sharded** ([`ControllerServer::start_sharded`]): N single-worker
//!   domains, one queue each. The [`RequestRouter`] sends every request
//!   to the domain owning its key — UE-scoped requests by
//!   [`shard_of_ue`], station-scoped ones by [`shard_of_station`] — so
//!   each domain's path map needs no lock at all, and the finite
//!   identifier spaces (policy tags, permanent addresses) are split into
//!   per-domain [`ShardRange`]s over shared [`RangePool`]s, with
//!   exhausted domains stealing ranges other domains spilled.

use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::{Mutex, RwLock};

use softcell_policy::clause::ClauseId;
use softcell_policy::{AppClassifier, ServicePolicy, SubscriberAttributes, UeClassifier};
use softcell_telemetry::{trace, Counter, Gauge, Histogram, Registry, ReqTrace, Stopwatch};
use softcell_types::{
    shard_of_station, shard_of_ue, BaseStationId, Error, PolicyTag, RangePool, Result, ShardRange,
    SimTime, Striped, UeId, UeImsi,
};

use crate::core::AttachGrant;
use crate::state::UeRecord;

/// Default request-queue depth. Bounded so a flood of packet-in events
/// exerts backpressure on agents instead of growing controller memory
/// without limit (the paper's Cbench setup saturates the controller the
/// same way).
pub const DEFAULT_QUEUE_DEPTH: usize = 4096;

/// Base of the permanent-address pool wire attaches allocate from
/// (100.64.0.0/10, matching [`crate::core::ControllerConfig::simulation`]).
pub(crate) const PERMANENT_POOL_BASE: u32 = 0x6440_0000;

/// Size of the permanent-address offset space a sharded server splits
/// into per-domain ranges.
const PERMANENT_SPACE: u32 = 1 << 20;

/// Size of the policy-tag space (mirrors the classic pool's `% 1024`).
const TAG_SPACE: u32 = 1024;

/// Identifier block handed to a domain at a time; small enough that the
/// stealing path is exercised under modest churn.
const RANGE_BLOCK: u32 = 64;

/// A request from a local agent.
pub enum Request {
    /// Worker-shutdown sentinel (sent by [`ControllerServer::shutdown`];
    /// each worker consumes exactly one and exits).
    Shutdown,
    /// A UE attached: compute and return its packet classifiers.
    Classifier {
        /// The subscriber.
        imsi: UeImsi,
        /// Where to send the answer.
        reply: Sender<Result<UeClassifier>>,
        /// Trace context + enqueue stamp ([`ReqTrace::NONE`] when
        /// untraced).
        trace: ReqTrace,
    },
    /// A UE attached over the wire: allocate (or keep) its permanent
    /// address, record its location and return the full grant.
    Attach {
        /// The subscriber.
        imsi: UeImsi,
        /// The station it attached at.
        bs: BaseStationId,
        /// Its station-local id.
        ue_id: UeId,
        /// Attach time.
        now: SimTime,
        /// Where to send the answer.
        reply: Sender<Result<AttachGrant>>,
        /// Trace context + enqueue stamp.
        trace: ReqTrace,
    },
    /// A UE detached over the wire: drop its record (returning it) and,
    /// in sharded mode, release its permanent address to the owning
    /// domain's range.
    Detach {
        /// The subscriber.
        imsi: UeImsi,
        /// Where to send the answer.
        reply: Sender<Result<UeRecord>>,
        /// Trace context + enqueue stamp.
        trace: ReqTrace,
    },
    /// A tag-cache miss: return (installing if needed) the policy tag of
    /// a (base station, clause) path.
    PathTag {
        /// Origin station.
        bs: BaseStationId,
        /// The clause.
        clause: ClauseId,
        /// Where to send the answer.
        reply: Sender<Result<PolicyTag>>,
        /// Trace context + enqueue stamp.
        trace: ReqTrace,
    },
}

impl Request {
    /// The span kind a worker opens while serving this request.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Shutdown => "shutdown",
            Request::Classifier { .. } => "handle_classifier",
            Request::Attach { .. } => "handle_attach",
            Request::Detach { .. } => "handle_detach",
            Request::PathTag { .. } => "handle_path_tag",
        }
    }

    /// The trace carried by this request.
    pub fn trace(&self) -> ReqTrace {
        match self {
            Request::Shutdown => ReqTrace::NONE,
            Request::Classifier { trace, .. }
            | Request::Attach { trace, .. }
            | Request::Detach { trace, .. }
            | Request::PathTag { trace, .. } => *trace,
        }
    }
}

/// Routes requests to the domain owning their key: UE-scoped requests
/// ([`Request::Classifier`], [`Request::Attach`], [`Request::Detach`])
/// by [`shard_of_ue`], station-scoped ones ([`Request::PathTag`]) by
/// [`shard_of_station`]. Over a classic server (one queue) every request
/// lands on the single queue, so callers can use the router uniformly.
#[derive(Clone)]
pub struct RequestRouter {
    txs: Arc<[Sender<Request>]>,
}

impl RequestRouter {
    /// Number of domains this router spreads requests over.
    pub fn domains(&self) -> usize {
        self.txs.len()
    }

    /// The domain a request belongs to.
    pub fn shard_of(&self, req: &Request) -> usize {
        let n = self.txs.len();
        match req {
            Request::Shutdown => 0,
            Request::Classifier { imsi, .. }
            | Request::Attach { imsi, .. }
            | Request::Detach { imsi, .. } => shard_of_ue(*imsi, n),
            Request::PathTag { bs, .. } => shard_of_station(*bs, n),
        }
    }

    /// Sends a request to its owning domain (blocking on a full queue,
    /// like the classic handle).
    pub fn route(&self, req: Request) -> Result<()> {
        let i = self.shard_of(&req);
        self.txs[i]
            .send(req)
            .map_err(|_| Error::InvalidState("controller worker pool gone".into()))
    }

    /// Non-blocking route: `Ok(true)` enqueued, `Ok(false)` the owning
    /// domain's queue is full and the request was shed (the caller must
    /// account for it — see the wire front-end's
    /// `server_queue_rejected` counter), `Err` the pool is gone.
    pub fn try_route(&self, req: Request) -> Result<bool> {
        let i = self.shard_of(&req);
        match self.txs[i].try_send(req) {
            Ok(()) => Ok(true),
            Err(TrySendError::Full(_)) => Ok(false),
            Err(TrySendError::Disconnected(_)) => {
                Err(Error::InvalidState("controller worker pool gone".into()))
            }
        }
    }
}

/// One sharded domain's private state: its path map (no lock — routing
/// guarantees single ownership of every (bs, clause) key) and its slices
/// of the shared tag and permanent-address spaces.
struct Domain {
    paths: std::collections::HashMap<(BaseStationId, ClauseId), PolicyTag>,
    tags: ShardRange,
    permanent: ShardRange,
}

/// Shared controller state behind the worker pool.
pub(crate) struct Shared {
    policy: RwLock<ServicePolicy>,
    apps: AppClassifier,
    subscribers: RwLock<std::collections::HashMap<UeImsi, SubscriberAttributes>>,
    /// (bs, clause) → tag; the path-installation critical section.
    paths: Mutex<std::collections::HashMap<(BaseStationId, ClauseId), PolicyTag>>,
    next_tag: AtomicU64,
    /// This server's metric registry — per instance, so tests running
    /// many servers in parallel never see each other's numbers.
    pub(crate) telemetry: Arc<Registry>,
    /// Packet-in requests served (`softcell_controller_packet_in_total`).
    pub(crate) served: Arc<Counter>,
    /// UE records registered over the wire front-end ([`crate::wire`]),
    /// striped by IMSI so domains touching different UEs never contend
    /// (one global mutex here serialized every attach/detach across the
    /// whole pool and flattened throughput past ~8 shards).
    pub(crate) ues: Striped<std::collections::HashMap<UeImsi, crate::state::UeRecord>>,
    /// Permanent-address allocator for wire attaches (offsets into the
    /// carrier-grade NAT pool 100.64/10, like the simulation config).
    pub(crate) next_permanent: std::sync::atomic::AtomicU32,
    /// Wire connections currently being served ([`crate::wire`]).
    pub(crate) active_connections: Arc<Gauge>,
    /// Wire connections that ended, cleanly or not.
    pub(crate) disconnects: Arc<Counter>,
    /// The subset of disconnects that ended with a channel error (torn
    /// frame, version mismatch, transport failure) rather than a clean
    /// peer close.
    pub(crate) connection_errors: Arc<Counter>,
    /// Packet-in events shed because a domain queue was full
    /// ([`crate::wire`] front-end; the queue-full path replies with an
    /// error instead of discarding invisibly).
    pub(crate) queue_rejected: Arc<Counter>,
    /// Ticket counter stamped onto `flow_mod_batch` replies in sharded
    /// mode ([`crate::wire`]).
    pub(crate) batch_seq: AtomicU64,
    /// Simulated southbound install fence, in microseconds (benchmark
    /// knob, default 0). When set, a worker blocks this long wherever
    /// the real controller would wait for a switch to ack a rule
    /// install: per attach (the UE classifier lands at its access
    /// station) and per path-tag miss (the path's rules land in the
    /// fabric). Domains overlap these waits — the scaling a sharded
    /// control plane buys when its bottleneck is fabric round trips,
    /// not CPU.
    install_latency_us: AtomicU64,
    /// Per-connection xid-dedup window for the wire front-end's serve
    /// loops (see `softcell_ctlchan::ServeOptions`). Defaults to the
    /// protocol default; widened for deployments where a re-homing
    /// storm can replay more in-flight xids than the default covers.
    dedup_window: AtomicU64,
}

impl Shared {
    /// The xid-dedup window new serve loops start with.
    pub(crate) fn dedup_window(&self) -> usize {
        // softcell-lint: allow(atomics-order) -- pure config knob: readers snapshot it once per connection
        self.dedup_window.load(Ordering::Relaxed) as usize
    }

    fn install_fence(&self) {
        // softcell-lint: allow(atomics-order) -- pure config knob: a stale read only mistimes the simulated fence
        let us = self.install_latency_us.load(Ordering::Relaxed);
        if us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
    }
}

/// A running worker pool — classic (one queue, M workers) or sharded
/// (N single-worker domains).
pub struct ControllerServer {
    txs: Arc<[Sender<Request>]>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    sharded: bool,
}

impl ControllerServer {
    /// Starts `threads` workers over the given policy and subscriber
    /// base, with the default request-queue depth
    /// ([`DEFAULT_QUEUE_DEPTH`]).
    pub fn start(
        policy: ServicePolicy,
        subscribers: impl IntoIterator<Item = SubscriberAttributes>,
        threads: usize,
    ) -> Result<ControllerServer> {
        Self::start_with_depth(policy, subscribers, threads, DEFAULT_QUEUE_DEPTH)
    }

    /// Starts `threads` workers with an explicit request-queue depth.
    /// Senders block once `depth` requests are in flight.
    pub fn start_with_depth(
        policy: ServicePolicy,
        subscribers: impl IntoIterator<Item = SubscriberAttributes>,
        threads: usize,
        depth: usize,
    ) -> Result<ControllerServer> {
        if threads == 0 {
            return Err(Error::Config("server needs at least one worker".into()));
        }
        if depth == 0 {
            return Err(Error::Config("request queue needs depth >= 1".into()));
        }
        let shared = Self::new_shared(policy, subscribers, threads);
        let (tx, rx) = bounded::<Request>(depth);
        let workers = (0..threads)
            .map(|_| {
                let rx: Receiver<Request> = rx.clone();
                let shared = Arc::clone(&shared);
                // classic workers share one queue, so they share the
                // shard=0 metric family too
                let wm = WorkerMetrics::new(&shared.telemetry, 0);
                std::thread::spawn(move || worker_loop(rx, shared, None, wm))
            })
            .collect();
        Ok(ControllerServer {
            txs: Arc::from(vec![tx]),
            workers,
            shared,
            sharded: false,
        })
    }

    /// Starts a sharded pool: `shards` single-worker domains, one
    /// request queue each, with per-domain path maps and per-domain
    /// ranges of the tag and permanent-address spaces. Requests must be
    /// submitted through the [`RequestRouter`] ([`Self::router`]) so
    /// every key reaches its owning domain.
    pub fn start_sharded(
        policy: ServicePolicy,
        subscribers: impl IntoIterator<Item = SubscriberAttributes>,
        shards: usize,
    ) -> Result<ControllerServer> {
        if shards == 0 {
            return Err(Error::Config("server needs at least one shard".into()));
        }
        let shared = Self::new_shared(policy, subscribers, shards);
        let tag_pool = RangePool::new(TAG_SPACE, RANGE_BLOCK);
        let perm_pool = RangePool::new(PERMANENT_SPACE, RANGE_BLOCK);
        let mut txs = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = bounded::<Request>(DEFAULT_QUEUE_DEPTH);
            let shared = Arc::clone(&shared);
            let domain = Domain {
                paths: std::collections::HashMap::new(),
                tags: ShardRange::new(Arc::clone(&tag_pool)),
                permanent: ShardRange::new(Arc::clone(&perm_pool)),
            };
            let wm = WorkerMetrics::new(&shared.telemetry, shard);
            txs.push(tx);
            workers.push(std::thread::spawn(move || {
                worker_loop(rx, shared, Some(domain), wm)
            }));
        }
        Ok(ControllerServer {
            txs: Arc::from(txs),
            workers,
            shared,
            sharded: true,
        })
    }

    fn new_shared(
        policy: ServicePolicy,
        subscribers: impl IntoIterator<Item = SubscriberAttributes>,
        stripes: usize,
    ) -> Arc<Shared> {
        let telemetry = Registry::new();
        Arc::new(Shared {
            policy: RwLock::new(policy),
            apps: AppClassifier::default(),
            subscribers: RwLock::new(subscribers.into_iter().map(|a| (a.imsi, a)).collect()),
            paths: Mutex::new(std::collections::HashMap::new()),
            next_tag: AtomicU64::new(0),
            served: telemetry.counter("softcell_controller_packet_in_total"),
            ues: Striped::new(stripes),
            next_permanent: std::sync::atomic::AtomicU32::new(0),
            active_connections: telemetry.gauge("softcell_controller_active_connections"),
            disconnects: telemetry.counter("softcell_controller_disconnects_total"),
            connection_errors: telemetry.counter("softcell_controller_connection_errors_total"),
            queue_rejected: telemetry.counter("softcell_controller_server_queue_rejected_total"),
            batch_seq: AtomicU64::new(0),
            install_latency_us: AtomicU64::new(0),
            dedup_window: AtomicU64::new(softcell_ctlchan::DEDUP_WINDOW as u64),
            telemetry,
        })
    }

    /// Sets the simulated per-install switch round trip the workers
    /// block on (benchmark knob; zero disables, the default).
    pub fn set_install_latency(&self, d: std::time::Duration) {
        self.shared
            .install_latency_us
            // softcell-lint: allow(atomics-order) -- pure config knob: no reader orders other memory against it
            .store(d.as_micros() as u64, Ordering::Relaxed);
    }

    /// Sets the per-connection xid-dedup window used by serve loops
    /// started *after* this call (live connections keep the window they
    /// started with). `window` must cover the largest burst of retried
    /// xids a client can replay — size it to at least the in-flight
    /// request budget of a re-homing storm. Values are clamped to 1 at
    /// the serve loop; see `softcell_ctlchan::ServeOptions`.
    pub fn set_dedup_window(&self, window: usize) {
        self.shared
            .dedup_window
            // softcell-lint: allow(atomics-order) -- pure config knob: no reader orders other memory against it
            .store(window as u64, Ordering::Relaxed);
    }

    /// A handle for submitting requests (cloneable across client
    /// threads). On a sharded server this reaches only domain 0 — use
    /// [`Self::router`] instead.
    pub fn handle(&self) -> Sender<Request> {
        self.txs[0].clone()
    }

    /// A router sending each request to its owning domain. Over a
    /// classic server the router degenerates to the single queue, so
    /// front-ends can use it unconditionally.
    pub fn router(&self) -> RequestRouter {
        RequestRouter {
            txs: Arc::clone(&self.txs),
        }
    }

    /// Whether this server runs in sharded mode (and thus answers path
    /// requests with `flow_mod_batch` messages over the wire).
    pub fn is_sharded(&self) -> bool {
        self.sharded
    }

    /// Number of domains (sharded) or 1 (classic).
    pub fn domains(&self) -> usize {
        self.txs.len()
    }

    /// The shared state, for the wire front-end ([`crate::wire`]).
    pub(crate) fn shared_state(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    /// This server's metric registry, for snapshot/export. Per instance:
    /// two servers in one process never share numbers.
    pub fn telemetry(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.telemetry)
    }

    /// Requests served so far (thin shim over
    /// `softcell_controller_packet_in_total`).
    pub fn served(&self) -> u64 {
        self.shared.served.get()
    }

    /// Wire connections currently being served (thin shim over the
    /// `softcell_controller_active_connections` gauge).
    pub fn active_connections(&self) -> u64 {
        self.shared.active_connections.get()
    }

    /// Wire connections that have ended, cleanly or with an error (thin
    /// shim over `softcell_controller_disconnects_total`).
    pub fn disconnects(&self) -> u64 {
        self.shared.disconnects.get()
    }

    /// Wire connections that ended with a channel error rather than a
    /// clean close (thin shim over
    /// `softcell_controller_connection_errors_total`).
    pub fn connection_errors(&self) -> u64 {
        self.shared.connection_errors.get()
    }

    /// Packet-in events shed because a domain queue was full (thin shim
    /// over `softcell_controller_server_queue_rejected_total`).
    pub fn queue_rejected(&self) -> u64 {
        self.shared.queue_rejected.get()
    }

    /// Registers another subscriber while running.
    pub fn put_subscriber(&self, attrs: SubscriberAttributes) {
        self.shared.subscribers.write().insert(attrs.imsi, attrs);
    }

    /// Stops the workers and waits for them. Robust against outstanding
    /// cloned handles: one shutdown sentinel is sent per worker (classic
    /// workers share one queue; sharded domains get one each).
    pub fn shutdown(self) {
        if self.txs.len() == 1 {
            for _ in 0..self.workers.len() {
                let _ = self.txs[0].send(Request::Shutdown);
            }
        } else {
            for tx in self.txs.iter() {
                let _ = tx.send(Request::Shutdown);
            }
        }
        drop(self.txs);
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Per-worker telemetry handles, interned once at spawn so the request
/// loop touches only atomics. Classic workers share the `shard=0`
/// family (they share one queue); sharded domains get one family each.
struct WorkerMetrics {
    /// `softcell_controller_shard_served_total{shard=i}`.
    served: Arc<Counter>,
    /// `softcell_controller_packet_in_latency_ns` — service time from
    /// dequeue to reply, all workers into one histogram.
    latency: Arc<Histogram>,
    /// `softcell_controller_shard_queue_depth_hwm{shard=i}` — high-water
    /// mark of requests waiting behind the one being served.
    queue_hwm: Arc<Gauge>,
    /// `softcell_controller_path_cache_hits_total{shard=i}`.
    path_hits: Arc<Counter>,
    /// `softcell_controller_path_cache_misses_total{shard=i}`.
    path_misses: Arc<Counter>,
    /// `softcell_controller_range_steals_total{shard=i}` — identifier
    /// blocks this domain stole from other domains' spills (recorded at
    /// shutdown; see [`ShardRange::steals`]).
    steals: Arc<Counter>,
    /// The shard index, stamped onto trace spans.
    shard: usize,
}

impl WorkerMetrics {
    fn new(registry: &Registry, shard: usize) -> WorkerMetrics {
        let label = format!("shard={shard}");
        WorkerMetrics {
            shard,
            served: registry.counter_with("softcell_controller_shard_served_total", &label),
            latency: registry.histogram("softcell_controller_packet_in_latency_ns"),
            queue_hwm: registry.gauge_with("softcell_controller_shard_queue_depth_hwm", &label),
            path_hits: registry.counter_with("softcell_controller_path_cache_hits_total", &label),
            path_misses: registry
                .counter_with("softcell_controller_path_cache_misses_total", &label),
            steals: registry.counter_with("softcell_controller_range_steals_total", &label),
        }
    }
}

fn compile_classifier(shared: &Shared, imsi: UeImsi) -> Result<UeClassifier> {
    let subs = shared.subscribers.read();
    let attrs = subs
        .get(&imsi)
        .ok_or_else(|| Error::NotFound(format!("unknown subscriber {imsi}")))?;
    let policy = shared.policy.read();
    Ok(UeClassifier::compile(&policy, &shared.apps, attrs))
}

fn worker_loop(
    rx: Receiver<Request>,
    shared: Arc<Shared>,
    mut domain: Option<Domain>,
    wm: WorkerMetrics,
) {
    while let Ok(req) = rx.recv() {
        // requests still queued behind the one just taken
        wm.queue_hwm.record_max(rx.len() as u64);
        let sw = Stopwatch::start();
        // Traced requests: close the cross-thread queue_wait interval
        // stamped at enqueue, then serve under a per-kind span (the
        // handler's own spans — engine tiers, install fences — nest in
        // it via the thread-local context).
        let rt = req.trace();
        let tracer = Registry::global().tracer();
        if rt.ctx.is_active() {
            tracer.record_span(
                rt.ctx,
                "queue_wait",
                rt.enqueued_us,
                trace::now_us(),
                wm.shard as i64,
                0,
            );
        }
        let mut sp = tracer.span_in(rt.ctx, req.kind());
        sp.set_shard(wm.shard);
        match req {
            Request::Shutdown => {
                // the domain's ranges die with the worker; bank their
                // steal counts first
                if let Some(d) = domain.as_ref() {
                    wm.steals.add(d.tags.steals() + d.permanent.steals());
                }
                return;
            }
            Request::Classifier { imsi, reply, .. } => {
                let out = compile_classifier(&shared, imsi);
                // count before replying so a client that has its answer
                // never observes a stale served() total
                shared.served.inc();
                wm.served.inc();
                sw.record(&wm.latency);
                let _ = reply.send(out);
            }
            Request::Attach {
                imsi,
                bs,
                ue_id,
                now,
                reply,
                ..
            } => {
                let out = (|| {
                    let classifier = compile_classifier(&shared, imsi)?;
                    let mut ues = shared.ues.for_ue(imsi);
                    // permanent addresses never change (§3.1): a
                    // re-attach keeps the one first assigned
                    let permanent_ip = match ues.get(&imsi) {
                        Some(r) => r.permanent_ip,
                        None => match domain.as_mut() {
                            // sharded: draw from this domain's range —
                            // routing by imsi guarantees the matching
                            // detach releases to the same range
                            Some(d) => {
                                let off = d.permanent.allocate().ok_or_else(|| {
                                    Error::Exhausted("permanent-address space".into())
                                })?;
                                Ipv4Addr::from(PERMANENT_POOL_BASE + 1 + off)
                            }
                            // classic: a shared monotone counter
                            None => {
                                // softcell-lint: allow(atomics-order) -- pure counter: fetch_add uniqueness is ordering-independent
                                let n = shared.next_permanent.fetch_add(1, Ordering::Relaxed) + 1;
                                Ipv4Addr::from(PERMANENT_POOL_BASE + n)
                            }
                        },
                    };
                    let record = UeRecord {
                        imsi,
                        permanent_ip,
                        bs,
                        ue_id,
                        since: now,
                    };
                    ues.insert(imsi, record);
                    drop(ues);
                    // the classifier install at the access station fences
                    shared.install_fence();
                    Ok(AttachGrant { record, classifier })
                })();
                shared.served.inc();
                wm.served.inc();
                sw.record(&wm.latency);
                let _ = reply.send(out);
            }
            Request::Detach { imsi, reply, .. } => {
                let out = shared
                    .ues
                    .for_ue(imsi)
                    .remove(&imsi)
                    .ok_or_else(|| Error::NotFound(format!("{imsi} not attached")));
                if let (Ok(record), Some(d)) = (&out, domain.as_mut()) {
                    let off = u32::from(record.permanent_ip) - PERMANENT_POOL_BASE - 1;
                    d.permanent.release(off);
                }
                shared.served.inc();
                wm.served.inc();
                sw.record(&wm.latency);
                let _ = reply.send(out);
            }
            Request::PathTag {
                bs, clause, reply, ..
            } => {
                let out = match domain.as_mut() {
                    // sharded: this domain owns every (bs, clause) it is
                    // ever asked about, so its map needs no lock and the
                    // tag comes from its private range
                    Some(d) => match d.paths.get(&(bs, clause)) {
                        Some(t) => {
                            wm.path_hits.inc();
                            Ok(*t)
                        }
                        None => d
                            .tags
                            .allocate()
                            .map(|v| {
                                wm.path_misses.inc();
                                let t = PolicyTag(v as u16);
                                d.paths.insert((bs, clause), t);
                                // the path's fabric rules fence
                                shared.install_fence();
                                t
                            })
                            .ok_or_else(|| Error::Exhausted("policy-tag space".into())),
                    },
                    None => {
                        let mut paths = shared.paths.lock();
                        if let Some(t) = paths.get(&(bs, clause)) {
                            wm.path_hits.inc();
                            Ok(*t)
                        } else {
                            wm.path_misses.inc();
                            // Path installation stand-in: allocate a tag
                            // and record the path. (The full Algorithm 1
                            // runs in the single-threaded controller;
                            // this server measures control-plane request
                            // throughput, where the paper's bottleneck is
                            // the request fan-in, not the argmin.)
                            let t = PolicyTag(
                                // softcell-lint: allow(atomics-order) -- pure counter: fetch_add uniqueness is ordering-independent
                                (shared.next_tag.fetch_add(1, Ordering::Relaxed)
                                    % u64::from(TAG_SPACE)) as u16,
                            );
                            paths.insert((bs, clause), t);
                            shared.install_fence();
                            Ok(t)
                        }
                    }
                };
                shared.served.inc();
                wm.served.inc();
                sw.record(&wm.latency);
                let _ = reply.send(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    fn subscribers(n: u64) -> Vec<SubscriberAttributes> {
        (0..n)
            .map(|i| SubscriberAttributes::default_home(UeImsi(i)))
            .collect()
    }

    #[test]
    fn classifier_requests_round_trip() {
        let server =
            ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers(10), 2)
                .unwrap();
        let h = server.handle();
        let (tx, rx) = bounded(1);
        h.send(Request::Classifier {
            imsi: UeImsi(3),
            reply: tx,
            trace: ReqTrace::NONE,
        })
        .unwrap();
        let classifier = rx.recv().unwrap().unwrap();
        assert!(!classifier.entries().is_empty());
        assert_eq!(server.served(), 1);
        server.shutdown();
    }

    #[test]
    fn dedup_window_defaults_and_reconfigures() {
        let server =
            ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers(1), 1)
                .unwrap();
        assert_eq!(
            server.shared_state().dedup_window(),
            softcell_ctlchan::DEDUP_WINDOW
        );
        server.set_dedup_window(4096);
        assert_eq!(server.shared_state().dedup_window(), 4096);
        server.shutdown();
    }

    #[test]
    fn unknown_subscriber_errors() {
        let server =
            ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers(1), 1)
                .unwrap();
        let (tx, rx) = bounded(1);
        server
            .handle()
            .send(Request::Classifier {
                imsi: UeImsi(99),
                reply: tx,
                trace: ReqTrace::NONE,
            })
            .unwrap();
        assert!(rx.recv().unwrap().is_err());
        server.shutdown();
    }

    #[test]
    fn path_tags_are_stable_per_station_clause() {
        let server =
            ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers(1), 4)
                .unwrap();
        let h = server.handle();
        let ask = |bs: u32, clause: u16| {
            let (tx, rx) = bounded(1);
            h.send(Request::PathTag {
                bs: BaseStationId(bs),
                clause: ClauseId(clause),
                reply: tx,
                trace: ReqTrace::NONE,
            })
            .unwrap();
            rx.recv().unwrap().unwrap()
        };
        let t1 = ask(5, 0);
        let t2 = ask(5, 0);
        let t3 = ask(6, 0);
        assert_eq!(t1, t2, "idempotent per (bs, clause)");
        let _ = t3;
        server.shutdown();
    }

    #[test]
    fn many_threads_many_requests() {
        let server =
            ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers(100), 4)
                .unwrap();
        let h = server.handle();
        let clients: Vec<_> = (0..4)
            .map(|c| {
                let h = h.clone();
                std::thread::spawn(move || {
                    let (tx, rx) = bounded(1);
                    for i in 0..250u64 {
                        h.send(Request::Classifier {
                            imsi: UeImsi((c * 25 + i) % 100),
                            reply: tx.clone(),
                            trace: ReqTrace::NONE,
                        })
                        .unwrap();
                        rx.recv().unwrap().unwrap();
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        assert_eq!(server.served(), 1000);
        server.shutdown();
    }

    #[test]
    fn sharded_server_routes_by_key_and_round_trips() {
        let server = ControllerServer::start_sharded(
            ServicePolicy::example_carrier_a(1),
            subscribers(32),
            4,
        )
        .unwrap();
        assert!(server.is_sharded());
        assert_eq!(server.domains(), 4);
        let router = server.router();

        // attach every subscriber through the router; addresses must be
        // pairwise distinct even though four domains allocate them from
        // private ranges
        let (tx, rx) = bounded(1);
        let mut ips = std::collections::HashSet::new();
        for i in 0..32u64 {
            router
                .route(Request::Attach {
                    imsi: UeImsi(i),
                    bs: BaseStationId((i % 7) as u32),
                    ue_id: softcell_types::UeId(0),
                    now: SimTime::ZERO,
                    reply: tx.clone(),
                    trace: ReqTrace::NONE,
                })
                .unwrap();
            let grant = rx.recv().unwrap().unwrap();
            assert!(!grant.classifier.entries().is_empty());
            assert!(ips.insert(grant.record.permanent_ip), "duplicate address");
        }

        // path tags are stable per (bs, clause) and distinct across keys
        // within a domain
        let (ttx, trx) = bounded(1);
        let ask = |bs: u32, clause: u16| {
            router
                .route(Request::PathTag {
                    bs: BaseStationId(bs),
                    clause: ClauseId(clause),
                    reply: ttx.clone(),
                    trace: ReqTrace::NONE,
                })
                .unwrap();
            trx.recv().unwrap().unwrap()
        };
        let t1 = ask(5, 0);
        let t2 = ask(5, 0);
        assert_eq!(t1, t2, "idempotent per (bs, clause)");
        assert_ne!(ask(5, 1), t1, "distinct clause gets a distinct tag");

        // detach releases records; a re-attach then gets a fresh address
        let (dtx, drx) = bounded(1);
        router
            .route(Request::Detach {
                imsi: UeImsi(3),
                reply: dtx.clone(),
                trace: ReqTrace::NONE,
            })
            .unwrap();
        let rec = drx.recv().unwrap().unwrap();
        assert!(ips.contains(&rec.permanent_ip));
        router
            .route(Request::Detach {
                imsi: UeImsi(3),
                reply: dtx.clone(),
                trace: ReqTrace::NONE,
            })
            .unwrap();
        assert!(drx.recv().unwrap().is_err(), "double detach fails");
        server.shutdown();
    }

    #[test]
    fn sharded_addresses_stay_unique_under_churn() {
        // attach/detach churn across many UEs drives the per-domain
        // ranges through release, spill and steal; no two concurrently
        // attached UEs may ever share a permanent address
        let server = ControllerServer::start_sharded(
            ServicePolicy::example_carrier_a(1),
            subscribers(256),
            4,
        )
        .unwrap();
        let router = server.router();
        let (atx, arx) = bounded(1);
        let (dtx, drx) = bounded(1);
        let mut live: std::collections::HashMap<u64, std::net::Ipv4Addr> = Default::default();
        for round in 0..8u64 {
            for i in 0..256u64 {
                if (i + round) % 3 == 0 {
                    if live.contains_key(&i) {
                        router
                            .route(Request::Detach {
                                imsi: UeImsi(i),
                                reply: dtx.clone(),
                                trace: ReqTrace::NONE,
                            })
                            .unwrap();
                        drx.recv().unwrap().unwrap();
                        live.remove(&i);
                    }
                } else if !live.contains_key(&i) {
                    router
                        .route(Request::Attach {
                            imsi: UeImsi(i),
                            bs: BaseStationId((i % 5) as u32),
                            ue_id: softcell_types::UeId(0),
                            now: SimTime(round),
                            reply: atx.clone(),
                            trace: ReqTrace::NONE,
                        })
                        .unwrap();
                    let grant = arx.recv().unwrap().unwrap();
                    let ip = grant.record.permanent_ip;
                    assert!(
                        !live.values().any(|v| *v == ip),
                        "round {round}: {ip} live twice"
                    );
                    live.insert(i, ip);
                }
            }
        }
        server.shutdown();
    }

    #[test]
    fn sharded_concurrent_clients_spread_across_domains() {
        let server = ControllerServer::start_sharded(
            ServicePolicy::example_carrier_a(1),
            subscribers(100),
            4,
        )
        .unwrap();
        let router = server.router();
        let clients: Vec<_> = (0..4u64)
            .map(|c| {
                let router = router.clone();
                std::thread::spawn(move || {
                    let (tx, rx) = bounded(1);
                    for i in 0..250u64 {
                        router
                            .route(Request::Classifier {
                                imsi: UeImsi((c * 25 + i) % 100),
                                reply: tx.clone(),
                                trace: ReqTrace::NONE,
                            })
                            .unwrap();
                        rx.recv().unwrap().unwrap();
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        assert_eq!(server.served(), 1000);
        server.shutdown();
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(ControllerServer::start_sharded(
            ServicePolicy::example_carrier_a(1),
            subscribers(1),
            0
        )
        .is_err());
    }

    #[test]
    fn zero_workers_rejected() {
        assert!(
            ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers(1), 0)
                .is_err()
        );
    }

    #[test]
    fn zero_depth_rejected() {
        assert!(ControllerServer::start_with_depth(
            ServicePolicy::example_carrier_a(1),
            subscribers(1),
            1,
            0
        )
        .is_err());
    }

    #[test]
    fn shallow_queue_still_serves() {
        let server = ControllerServer::start_with_depth(
            ServicePolicy::example_carrier_a(1),
            subscribers(10),
            1,
            1,
        )
        .unwrap();
        let h = server.handle();
        let (tx, rx) = bounded(1);
        for i in 0..20u64 {
            h.send(Request::Classifier {
                imsi: UeImsi(i % 10),
                reply: tx.clone(),
                trace: ReqTrace::NONE,
            })
            .unwrap();
            rx.recv().unwrap().unwrap();
        }
        assert_eq!(server.served(), 20);
        server.shutdown();
    }
}
