//! Threaded controller front-end for the §6.2 micro-benchmarks.
//!
//! The paper benchmarks its Floodlight-based controller with Cbench: 1000
//! emulated switches (= local agents) flood packet-in events and the
//! controller answers with packet classifiers, reaching 2.2 M
//! requests/second with 15 threads. [`ControllerServer`] is the Rust
//! analogue: a worker pool over a crossbeam channel computing per-UE
//! classifiers (attach handling) and policy-tag answers (path requests)
//! against shared, mostly-read state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use softcell_policy::clause::ClauseId;
use softcell_policy::{AppClassifier, ServicePolicy, SubscriberAttributes, UeClassifier};
use softcell_types::{BaseStationId, Error, PolicyTag, Result, UeImsi};

/// Default request-queue depth. Bounded so a flood of packet-in events
/// exerts backpressure on agents instead of growing controller memory
/// without limit (the paper's Cbench setup saturates the controller the
/// same way).
pub const DEFAULT_QUEUE_DEPTH: usize = 4096;

/// A request from a local agent.
pub enum Request {
    /// Worker-shutdown sentinel (sent by [`ControllerServer::shutdown`];
    /// each worker consumes exactly one and exits).
    Shutdown,
    /// A UE attached: compute and return its packet classifiers.
    Classifier {
        /// The subscriber.
        imsi: UeImsi,
        /// Where to send the answer.
        reply: Sender<Result<UeClassifier>>,
    },
    /// A tag-cache miss: return (installing if needed) the policy tag of
    /// a (base station, clause) path.
    PathTag {
        /// Origin station.
        bs: BaseStationId,
        /// The clause.
        clause: ClauseId,
        /// Where to send the answer.
        reply: Sender<Result<PolicyTag>>,
    },
}

/// Shared controller state behind the worker pool.
pub(crate) struct Shared {
    policy: RwLock<ServicePolicy>,
    apps: AppClassifier,
    subscribers: RwLock<std::collections::HashMap<UeImsi, SubscriberAttributes>>,
    /// (bs, clause) → tag; the path-installation critical section.
    paths: Mutex<std::collections::HashMap<(BaseStationId, ClauseId), PolicyTag>>,
    next_tag: AtomicU64,
    pub(crate) served: AtomicU64,
    /// UE records registered over the wire front-end ([`crate::wire`]).
    pub(crate) ues: Mutex<std::collections::HashMap<UeImsi, crate::state::UeRecord>>,
    /// Permanent-address allocator for wire attaches (offsets into the
    /// carrier-grade NAT pool 100.64/10, like the simulation config).
    pub(crate) next_permanent: std::sync::atomic::AtomicU32,
    /// Wire connections currently being served ([`crate::wire`]).
    pub(crate) active_connections: AtomicU64,
    /// Wire connections that ended, cleanly or not.
    pub(crate) disconnects: AtomicU64,
    /// The subset of disconnects that ended with a channel error (torn
    /// frame, version mismatch, transport failure) rather than a clean
    /// peer close.
    pub(crate) connection_errors: AtomicU64,
}

/// A running worker pool.
pub struct ControllerServer {
    tx: Sender<Request>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ControllerServer {
    /// Starts `threads` workers over the given policy and subscriber
    /// base, with the default request-queue depth
    /// ([`DEFAULT_QUEUE_DEPTH`]).
    pub fn start(
        policy: ServicePolicy,
        subscribers: impl IntoIterator<Item = SubscriberAttributes>,
        threads: usize,
    ) -> Result<ControllerServer> {
        Self::start_with_depth(policy, subscribers, threads, DEFAULT_QUEUE_DEPTH)
    }

    /// Starts `threads` workers with an explicit request-queue depth.
    /// Senders block once `depth` requests are in flight.
    pub fn start_with_depth(
        policy: ServicePolicy,
        subscribers: impl IntoIterator<Item = SubscriberAttributes>,
        threads: usize,
        depth: usize,
    ) -> Result<ControllerServer> {
        if threads == 0 {
            return Err(Error::Config("server needs at least one worker".into()));
        }
        if depth == 0 {
            return Err(Error::Config("request queue needs depth >= 1".into()));
        }
        let shared = Arc::new(Shared {
            policy: RwLock::new(policy),
            apps: AppClassifier::default(),
            subscribers: RwLock::new(subscribers.into_iter().map(|a| (a.imsi, a)).collect()),
            paths: Mutex::new(std::collections::HashMap::new()),
            next_tag: AtomicU64::new(0),
            served: AtomicU64::new(0),
            ues: Mutex::new(std::collections::HashMap::new()),
            next_permanent: std::sync::atomic::AtomicU32::new(0),
            active_connections: AtomicU64::new(0),
            disconnects: AtomicU64::new(0),
            connection_errors: AtomicU64::new(0),
        });
        let (tx, rx) = bounded::<Request>(depth);
        let workers = (0..threads)
            .map(|_| {
                let rx: Receiver<Request> = rx.clone();
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(rx, shared))
            })
            .collect();
        Ok(ControllerServer {
            tx,
            workers,
            shared,
        })
    }

    /// A handle for submitting requests (cloneable across client
    /// threads).
    pub fn handle(&self) -> Sender<Request> {
        self.tx.clone()
    }

    /// The shared state, for the wire front-end ([`crate::wire`]).
    pub(crate) fn shared_state(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Wire connections currently being served.
    pub fn active_connections(&self) -> u64 {
        self.shared.active_connections.load(Ordering::Relaxed)
    }

    /// Wire connections that have ended (cleanly or with an error).
    pub fn disconnects(&self) -> u64 {
        self.shared.disconnects.load(Ordering::Relaxed)
    }

    /// Wire connections that ended with a channel error rather than a
    /// clean close.
    pub fn connection_errors(&self) -> u64 {
        self.shared.connection_errors.load(Ordering::Relaxed)
    }

    /// Registers another subscriber while running.
    pub fn put_subscriber(&self, attrs: SubscriberAttributes) {
        self.shared.subscribers.write().insert(attrs.imsi, attrs);
    }

    /// Stops the workers and waits for them. Robust against outstanding
    /// cloned handles: one shutdown sentinel is sent per worker.
    pub fn shutdown(self) {
        for _ in 0..self.workers.len() {
            let _ = self.tx.send(Request::Shutdown);
        }
        drop(self.tx);
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(rx: Receiver<Request>, shared: Arc<Shared>) {
    while let Ok(req) = rx.recv() {
        match req {
            Request::Shutdown => return,
            Request::Classifier { imsi, reply } => {
                let out = (|| {
                    let subs = shared.subscribers.read();
                    let attrs = subs
                        .get(&imsi)
                        .ok_or_else(|| Error::NotFound(format!("unknown subscriber {imsi}")))?;
                    let policy = shared.policy.read();
                    Ok(UeClassifier::compile(&policy, &shared.apps, attrs))
                })();
                // count before replying so a client that has its answer
                // never observes a stale served() total
                shared.served.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(out);
            }
            Request::PathTag { bs, clause, reply } => {
                let out = (|| {
                    let mut paths = shared.paths.lock();
                    if let Some(t) = paths.get(&(bs, clause)) {
                        return Ok(*t);
                    }
                    // Path installation stand-in: allocate a tag and
                    // record the path. (The full Algorithm 1 runs in the
                    // single-threaded controller; this server measures
                    // control-plane request throughput, where the paper's
                    // bottleneck is the request fan-in, not the argmin.)
                    let t =
                        PolicyTag((shared.next_tag.fetch_add(1, Ordering::Relaxed) % 1024) as u16);
                    paths.insert((bs, clause), t);
                    Ok(t)
                })();
                shared.served.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    fn subscribers(n: u64) -> Vec<SubscriberAttributes> {
        (0..n)
            .map(|i| SubscriberAttributes::default_home(UeImsi(i)))
            .collect()
    }

    #[test]
    fn classifier_requests_round_trip() {
        let server =
            ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers(10), 2)
                .unwrap();
        let h = server.handle();
        let (tx, rx) = bounded(1);
        h.send(Request::Classifier {
            imsi: UeImsi(3),
            reply: tx,
        })
        .unwrap();
        let classifier = rx.recv().unwrap().unwrap();
        assert!(!classifier.entries().is_empty());
        assert_eq!(server.served(), 1);
        server.shutdown();
    }

    #[test]
    fn unknown_subscriber_errors() {
        let server =
            ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers(1), 1)
                .unwrap();
        let (tx, rx) = bounded(1);
        server
            .handle()
            .send(Request::Classifier {
                imsi: UeImsi(99),
                reply: tx,
            })
            .unwrap();
        assert!(rx.recv().unwrap().is_err());
        server.shutdown();
    }

    #[test]
    fn path_tags_are_stable_per_station_clause() {
        let server =
            ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers(1), 4)
                .unwrap();
        let h = server.handle();
        let ask = |bs: u32, clause: u16| {
            let (tx, rx) = bounded(1);
            h.send(Request::PathTag {
                bs: BaseStationId(bs),
                clause: ClauseId(clause),
                reply: tx,
            })
            .unwrap();
            rx.recv().unwrap().unwrap()
        };
        let t1 = ask(5, 0);
        let t2 = ask(5, 0);
        let t3 = ask(6, 0);
        assert_eq!(t1, t2, "idempotent per (bs, clause)");
        let _ = t3;
        server.shutdown();
    }

    #[test]
    fn many_threads_many_requests() {
        let server =
            ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers(100), 4)
                .unwrap();
        let h = server.handle();
        let clients: Vec<_> = (0..4)
            .map(|c| {
                let h = h.clone();
                std::thread::spawn(move || {
                    let (tx, rx) = bounded(1);
                    for i in 0..250u64 {
                        h.send(Request::Classifier {
                            imsi: UeImsi((c * 25 + i) % 100),
                            reply: tx.clone(),
                        })
                        .unwrap();
                        rx.recv().unwrap().unwrap();
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        assert_eq!(server.served(), 1000);
        server.shutdown();
    }

    #[test]
    fn zero_workers_rejected() {
        assert!(
            ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers(1), 0)
                .is_err()
        );
    }

    #[test]
    fn zero_depth_rejected() {
        assert!(ControllerServer::start_with_depth(
            ServicePolicy::example_carrier_a(1),
            subscribers(1),
            1,
            0
        )
        .is_err());
    }

    #[test]
    fn shallow_queue_still_serves() {
        let server = ControllerServer::start_with_depth(
            ServicePolicy::example_carrier_a(1),
            subscribers(10),
            1,
            1,
        )
        .unwrap();
        let h = server.handle();
        let (tx, rx) = bounded(1);
        for i in 0..20u64 {
            h.send(Request::Classifier {
                imsi: UeImsi(i % 10),
                reply: tx.clone(),
            })
            .unwrap();
            rx.recv().unwrap().unwrap();
        }
        assert_eq!(server.served(), 20);
        server.shutdown();
    }
}
