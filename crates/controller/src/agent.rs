//! The local agent at each base station (paper §4.2).
//!
//! "SoftCell introduces a local software agent running at each base
//! station to scale the control plane." The agent:
//!
//! * assigns local UE identifiers and registers attaches with the
//!   central controller;
//! * caches the per-UE packet classifiers the controller computes;
//! * on each new flow, classifies it locally and installs the microflow
//!   rules in the access switch (uplink LocIP/tag rewrite, downlink
//!   permanent-address restore);
//! * contacts the controller **only** when no policy tag exists yet for
//!   the flow's (clause, base station) — everything else is a cache hit.
//!
//! The controller is reached through [`ControllerApi`] so the same agent
//! code runs against a direct in-process controller (simulator) or a
//! channel-backed threaded one (the §6.2 micro-benchmarks).

use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

use softcell_dataplane::{MicroflowAction, Switch};
use softcell_packet::{FiveTuple, HeaderView};
use softcell_policy::clause::{AccessControl, ClauseId};
use softcell_policy::UeClassifier;
use softcell_types::{
    AddressingScheme, BaseStationId, Error, LocIp, PortEmbedding, PortNo, Result, SimTime, UeId,
    UeImsi,
};

use crate::core::{AttachGrant, PathTags};
use crate::state::UeRecord;

/// The controller operations an agent needs. Implemented directly by
/// [`crate::core::CentralController`] and by channel-backed proxies.
pub trait ControllerApi {
    /// Registers an attach; returns the grant (record + classifier).
    fn attach_ue(
        &mut self,
        imsi: UeImsi,
        bs: BaseStationId,
        ue_id: UeId,
        now: SimTime,
    ) -> Result<AttachGrant>;

    /// Requests (installing if necessary) the policy path of a clause
    /// from this base station.
    fn request_policy_path(&mut self, bs: BaseStationId, clause: ClauseId) -> Result<PathTags>;

    /// Detaches a UE.
    fn detach_ue(&mut self, imsi: UeImsi) -> Result<UeRecord>;
}

impl ControllerApi for crate::core::CentralController<'_> {
    fn attach_ue(
        &mut self,
        imsi: UeImsi,
        bs: BaseStationId,
        ue_id: UeId,
        now: SimTime,
    ) -> Result<AttachGrant> {
        // fully-qualified call picks the inherent method, not this one
        crate::core::CentralController::attach_ue(self, imsi, bs, ue_id, now)
    }

    fn request_policy_path(&mut self, bs: BaseStationId, clause: ClauseId) -> Result<PathTags> {
        crate::core::CentralController::request_policy_path(self, bs, clause)
    }

    fn detach_ue(&mut self, imsi: UeImsi) -> Result<UeRecord> {
        crate::core::CentralController::detach_ue(self, imsi)
    }
}

/// One attached UE as the agent sees it.
#[derive(Clone, Debug)]
pub struct AgentUe {
    /// Subscriber identity.
    pub imsi: UeImsi,
    /// Local identifier (and low bits of the LocIP).
    pub ue_id: UeId,
    /// Permanent address (what the UE itself sources from).
    pub permanent_ip: Ipv4Addr,
    /// The cached classifier.
    pub classifier: UeClassifier,
    next_slot: u16,
    active_slots: HashSet<u16>,
    /// Active flows — needed for handoff rule copying (§5.1).
    pub flows: Vec<AgentFlow>,
}

/// One active flow as the agent tracks it across moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AgentFlow {
    /// The uplink five-tuple as the UE sends it (permanent source).
    pub uplink: FiveTuple,
    /// The downlink tuple as it *currently* arrives (after any mobility
    /// tunnel re-keyed its tag bits).
    pub downlink: FiveTuple,
    /// The downlink tuple as it was originally keyed at the anchor
    /// station — needed when the UE returns home and delivery reverts to
    /// the original key.
    pub downlink_original: FiveTuple,
}

/// What handling a new flow produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlowSetup {
    /// Rules installed; traffic flows.
    Allowed {
        /// The clause applied.
        clause: ClauseId,
        /// The rewritten uplink source the fabric will see.
        loc_source: (Ipv4Addr, u16),
        /// Whether the tag cache had to escalate to the controller.
        cache_hit: bool,
    },
    /// The clause denies this traffic; a drop rule was installed.
    Denied {
        /// The denying clause.
        clause: ClauseId,
    },
}

/// Running counters (Table 2 measures the hit/miss split).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AgentStats {
    /// Flows processed.
    pub flows: u64,
    /// Tag-cache hits (handled without the controller).
    pub cache_hits: u64,
    /// Tag-cache misses (controller round trip).
    pub cache_misses: u64,
    /// Flows denied by policy.
    pub denied: u64,
}

/// The local agent of one base station.
pub struct LocalAgent {
    bs: BaseStationId,
    radio_port: PortNo,
    scheme: AddressingScheme,
    ports: PortEmbedding,
    ues: HashMap<UeImsi, AgentUe>,
    by_permanent: HashMap<Ipv4Addr, UeImsi>,
    next_ue_id: u16,
    free_ue_ids: Vec<UeId>,
    /// Cached policy tags per clause — "the current policy tags" of §4.2.
    tag_cache: HashMap<ClauseId, PathTags>,
    stats: AgentStats,
    /// Idle timeout handed to microflow entries.
    pub microflow_idle: softcell_types::SimDuration,
}

impl LocalAgent {
    /// Creates the agent for a base station.
    pub fn new(
        bs: BaseStationId,
        radio_port: PortNo,
        scheme: AddressingScheme,
        ports: PortEmbedding,
    ) -> Self {
        LocalAgent {
            bs,
            radio_port,
            scheme,
            ports,
            ues: HashMap::new(),
            by_permanent: HashMap::new(),
            next_ue_id: 0,
            free_ue_ids: Vec::new(),
            tag_cache: HashMap::new(),
            stats: AgentStats::default(),
            microflow_idle: softcell_types::SimDuration::from_secs(30),
        }
    }

    /// This agent's base station.
    pub fn base_station(&self) -> BaseStationId {
        self.bs
    }

    /// The radio-facing port of the access switch.
    pub fn radio_port(&self) -> PortNo {
        self.radio_port
    }

    /// The addressing scheme in use.
    pub fn scheme(&self) -> &AddressingScheme {
        &self.scheme
    }

    /// The port embedding in use.
    pub fn ports(&self) -> &PortEmbedding {
        &self.ports
    }

    /// Counters.
    pub fn stats(&self) -> AgentStats {
        self.stats
    }

    /// Attached UEs.
    pub fn attached(&self) -> impl Iterator<Item = &AgentUe> {
        self.ues.values()
    }

    /// One attached UE.
    pub fn ue(&self, imsi: UeImsi) -> Result<&AgentUe> {
        self.ues
            .get(&imsi)
            .ok_or_else(|| Error::NotFound(format!("{imsi} not attached here")))
    }

    /// Clears the tag cache (tests and failover drills).
    pub fn clear_tag_cache(&mut self) {
        self.tag_cache.clear();
    }

    /// Evicts a single clause's tags from the cache — the next flow of
    /// that clause escalates to the controller. Benchmarks use this to
    /// pin an exact hit ratio (Table 2).
    pub fn invalidate_clause(&mut self, clause: ClauseId) {
        self.tag_cache.remove(&clause);
    }

    /// Reserves the next local UE id this agent would hand out —
    /// exposed for handoff drivers that must pick the arriving UE's id
    /// with the same discipline as an attach (free-list LIFO, then the
    /// next fresh id), and for the sharded controller's station-owner
    /// mirror of that discipline. The id is allocated: pass it to
    /// [`adopt`](Self::adopt) (which keeps it out of the free list) or
    /// hand it back via a later detach.
    pub fn reserve_ue_id(&mut self) -> Result<UeId> {
        self.allocate_ue_id()
    }

    fn allocate_ue_id(&mut self) -> Result<UeId> {
        if let Some(id) = self.free_ue_ids.pop() {
            return Ok(id);
        }
        if u32::from(self.next_ue_id) >= self.scheme.max_ues_per_station() {
            return Err(Error::Exhausted(format!(
                "base station {} out of UE ids",
                self.bs
            )));
        }
        let id = UeId(self.next_ue_id);
        self.next_ue_id += 1;
        Ok(id)
    }

    /// Handles a UE attach: assigns a local id, registers with the
    /// controller, caches the classifier. Returns the new record.
    pub fn handle_attach(
        &mut self,
        imsi: UeImsi,
        ctl: &mut dyn ControllerApi,
        now: SimTime,
    ) -> Result<UeRecord> {
        if self.ues.contains_key(&imsi) {
            return Err(Error::InvalidState(format!("{imsi} already attached")));
        }
        let ue_id = self.allocate_ue_id()?;
        let grant = match ctl.attach_ue(imsi, self.bs, ue_id, now) {
            Ok(g) => g,
            Err(e) => {
                self.free_ue_ids.push(ue_id);
                return Err(e);
            }
        };
        let record = grant.record;
        self.by_permanent.insert(record.permanent_ip, imsi);
        self.ues.insert(
            imsi,
            AgentUe {
                imsi,
                ue_id,
                permanent_ip: record.permanent_ip,
                classifier: grant.classifier,
                next_slot: 0,
                active_slots: HashSet::new(),
                flows: Vec::new(),
            },
        );
        Ok(record)
    }

    /// Adopts an already-attached UE (handoff arrival or agent restart):
    /// the controller supplies the record and classifier; the local id
    /// was chosen by whoever initiated the move.
    pub fn adopt(&mut self, record: UeRecord, classifier: UeClassifier) -> Result<()> {
        if record.bs != self.bs {
            return Err(Error::InvalidState(format!(
                "record for {} adopted at {}",
                record.bs, self.bs
            )));
        }
        self.by_permanent.insert(record.permanent_ip, record.imsi);
        // the adopted id must not be handed out again
        if record.ue_id.0 >= self.next_ue_id {
            self.next_ue_id = record.ue_id.0 + 1;
        }
        self.free_ue_ids.retain(|id| *id != record.ue_id);
        self.ues.insert(
            record.imsi,
            AgentUe {
                imsi: record.imsi,
                ue_id: record.ue_id,
                permanent_ip: record.permanent_ip,
                classifier,
                next_slot: 0,
                active_slots: HashSet::new(),
                flows: Vec::new(),
            },
        );
        Ok(())
    }

    /// Records carried-over flows for an adopted UE (handoff arrival),
    /// so a further handoff can move them again. The flows' slots are
    /// marked active so new flows do not collide with them.
    pub fn adopt_flows(&mut self, imsi: UeImsi, flows: Vec<AgentFlow>) -> Result<()> {
        let ue = self
            .ues
            .get_mut(&imsi)
            .ok_or_else(|| Error::NotFound(format!("{imsi} not attached here")))?;
        for f in &flows {
            let (_, slot) = self.ports.decode(f.downlink.dst_port);
            ue.active_slots.insert(slot);
        }
        ue.flows.extend(flows);
        Ok(())
    }

    /// Removes a UE locally without touching the controller — the UE
    /// moved away (handoff); the controller's record already points at
    /// the new station. The local UE id is *not* recycled immediately:
    /// the old location-dependent address stays reserved until the
    /// mobility transition expires (§5.1).
    pub fn evict(&mut self, imsi: UeImsi) -> Result<()> {
        let ue = self
            .ues
            .remove(&imsi)
            .ok_or_else(|| Error::NotFound(format!("{imsi} not attached here")))?;
        self.by_permanent.remove(&ue.permanent_ip);
        Ok(())
    }

    /// Detaches a UE at the controller, then locally.
    ///
    /// The controller is told first: a wire failure leaves the UE in
    /// place so the detach can simply be retried once the channel
    /// recovers. A `NotFound` from the controller means a previous
    /// attempt's reply was lost in transit — the detach already
    /// happened, so it counts as success.
    pub fn handle_detach(&mut self, imsi: UeImsi, ctl: &mut dyn ControllerApi) -> Result<()> {
        if !self.ues.contains_key(&imsi) {
            return Err(Error::NotFound(format!("{imsi} not attached here")));
        }
        match ctl.detach_ue(imsi) {
            Ok(_) | Err(Error::NotFound(_)) => {}
            Err(e) => return Err(e),
        }
        let ue = self.ues.remove(&imsi).expect("checked above");
        self.by_permanent.remove(&ue.permanent_ip);
        self.free_ue_ids.push(ue.ue_id);
        Ok(())
    }

    /// Handles the first packet of a new uplink flow (punted by the
    /// access switch): classifies, fetches/reuses the policy tag,
    /// installs both microflow rules. `view` is the packet as the UE sent
    /// it (permanent source address).
    pub fn handle_new_flow(
        &mut self,
        view: &HeaderView,
        ctl: &mut dyn ControllerApi,
        switch: &mut Switch,
        now: SimTime,
    ) -> Result<FlowSetup> {
        self.stats.flows += 1;
        let imsi = *self
            .by_permanent
            .get(&view.src())
            .ok_or_else(|| Error::NotFound(format!("no attached UE owns {}", view.src())))?;

        // classify against the cached per-UE classifier
        let (clause, access) = {
            let ue = self.ues.get(&imsi).expect("by_permanent is consistent");
            let entry = ue
                .classifier
                .classify(view.tuple.proto, view.dst_port())
                .ok_or_else(|| {
                    Error::InvalidState("policy matches nothing for this flow".into())
                })?;
            (entry.clause, entry.access)
        };

        if access == AccessControl::Deny {
            self.stats.denied += 1;
            let deadline = now + self.microflow_idle;
            switch
                .microflow
                .install(view.tuple, MicroflowAction::Drop, deadline)?;
            return Ok(FlowSetup::Denied { clause });
        }

        // tag cache: §4.2 — only the first flow needing this policy path
        // at this base station reaches the controller
        let (tags, cache_hit) = match self.tag_cache.get(&clause) {
            Some(t) => {
                self.stats.cache_hits += 1;
                (*t, true)
            }
            None => {
                self.stats.cache_misses += 1;
                let t = ctl.request_policy_path(self.bs, clause)?;
                self.tag_cache.insert(clause, t);
                (t, false)
            }
        };

        let ue = self.ues.get_mut(&imsi).expect("checked above");
        let loc = LocIp::new(self.bs, ue.ue_id);
        let loc_addr = self.scheme.encode(loc)?;

        // allocate a flow slot unique among this UE's active flows
        let slots = self.ports.flow_slots();
        let mut slot = ue.next_slot % slots;
        let mut tries = 0;
        while ue.active_slots.contains(&slot) {
            slot = (slot + 1) % slots;
            tries += 1;
            if tries >= slots {
                return Err(Error::Exhausted(format!(
                    "UE {imsi} has all {slots} flow slots active"
                )));
            }
        }
        ue.next_slot = slot + 1;
        ue.active_slots.insert(slot);

        let up_port = self.ports.encode(tags.uplink_entry, slot)?;
        let down_port = self.ports.encode(tags.downlink_final, slot)?;
        let deadline = now + self.microflow_idle;

        // uplink: permanent tuple → rewrite source to (LocIP, tag|slot),
        // applying the clause's QoS marking (paper §2.2) at the edge
        switch.microflow.install(
            view.tuple,
            MicroflowAction::RewriteSrc {
                addr: loc_addr,
                port: up_port,
                out: tags.access_out_port,
                dscp: tags.qos.map(|q| q.dscp),
            },
            deadline,
        )?;

        // downlink: as arriving from the fabric (server echoes the
        // embedding; downlink swaps may have changed the tag bits)
        let down_tuple = FiveTuple {
            src: view.dst(),
            dst: loc_addr,
            src_port: view.dst_port(),
            dst_port: down_port,
            proto: view.tuple.proto,
        };
        switch.microflow.install(
            down_tuple,
            MicroflowAction::RewriteDst {
                addr: ue.permanent_ip,
                port: view.src_port(),
                out: self.radio_port,
            },
            deadline,
        )?;

        ue.flows.push(AgentFlow {
            uplink: view.tuple,
            downlink: down_tuple,
            downlink_original: down_tuple,
        });

        Ok(FlowSetup::Allowed {
            clause,
            loc_source: (loc_addr, up_port),
            cache_hit,
        })
    }

    /// The active flows of a UE (for handoff rule copying).
    pub fn flows_of(&self, imsi: UeImsi) -> Result<&[AgentFlow]> {
        Ok(&self.ue(imsi)?.flows)
    }

    /// Marks a flow finished, freeing its slot.
    pub fn flow_finished(&mut self, imsi: UeImsi, uplink: &FiveTuple) -> Result<()> {
        let ue = self
            .ues
            .get_mut(&imsi)
            .ok_or_else(|| Error::NotFound(format!("{imsi} not attached here")))?;
        if let Some(pos) = ue.flows.iter().position(|f| f.uplink == *uplink) {
            let flow = ue.flows.remove(pos);
            let (_, slot) = self.ports.decode(flow.downlink.dst_port);
            ue.active_slots.remove(&slot);
        }
        Ok(())
    }

    /// Retires flow records whose microflow entries are gone from the
    /// access switch (idle-expired or evicted), freeing their slots.
    /// Returns the number of flows retired.
    ///
    /// Without this, a long-attached UE leaks flow slots: microflow
    /// entries age out of the switch after `microflow_idle`, but the
    /// agent-side [`AgentFlow`] record — and its slot in the 6-bit slot
    /// space — lives until [`Self::flow_finished`] or detach. A UE that
    /// opens more than `flow_slots()` sequential flows over one long
    /// attachment then hits `Error::Exhausted` even though none of its
    /// flows are live. Call this alongside `microflow.expire_idle` at
    /// housekeeping boundaries.
    pub fn retire_expired_flows(&mut self, switch: &Switch) -> usize {
        let mut retired = 0;
        for ue in self.ues.values_mut() {
            let mut i = 0;
            while i < ue.flows.len() {
                let f = ue.flows[i];
                let live = switch.microflow.peek(&f.uplink).is_some()
                    || switch.microflow.peek(&f.downlink).is_some()
                    || switch.microflow.peek(&f.downlink_original).is_some();
                if live {
                    i += 1;
                } else {
                    let flow = ue.flows.remove(i);
                    let (_, slot) = self.ports.decode(flow.downlink.dst_port);
                    ue.active_slots.remove(&slot);
                    retired += 1;
                }
            }
        }
        retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{CentralController, ControllerConfig};
    use softcell_packet::{build_flow_packet, Protocol};
    use softcell_policy::{ServicePolicy, SubscriberAttributes};
    use softcell_topology::small_topology;
    use softcell_types::SwitchId;

    fn setup(topo: &softcell_topology::Topology) -> (CentralController<'_>, LocalAgent, Switch) {
        let mut ctl = CentralController::new(
            topo,
            ControllerConfig::simulation(),
            ServicePolicy::example_carrier_a(1),
        );
        for i in 0..4 {
            ctl.put_subscriber(SubscriberAttributes::default_home(UeImsi(i)));
        }
        let bs = topo.base_station(BaseStationId(0));
        let agent = LocalAgent::new(
            BaseStationId(0),
            bs.radio_port,
            ctl.config().scheme,
            ctl.config().ports,
        );
        let switch = Switch::access(bs.access_switch);
        (ctl, agent, switch)
    }

    fn flow_view(src: Ipv4Addr, dst_port: u16) -> HeaderView {
        let t = FiveTuple {
            src,
            dst: Ipv4Addr::new(93, 184, 216, 34),
            src_port: 50000,
            dst_port,
            proto: Protocol::Tcp,
        };
        HeaderView::parse(&build_flow_packet(t, 64, 0, &[])).unwrap()
    }

    #[test]
    fn attach_assigns_sequential_ue_ids() {
        let topo = small_topology();
        let (mut ctl, mut agent, _sw) = setup(&topo);
        let r0 = agent
            .handle_attach(UeImsi(0), &mut ctl, SimTime::ZERO)
            .unwrap();
        let r1 = agent
            .handle_attach(UeImsi(1), &mut ctl, SimTime::ZERO)
            .unwrap();
        assert_eq!(r0.ue_id, UeId(0));
        assert_eq!(r1.ue_id, UeId(1));
        assert!(agent
            .handle_attach(UeImsi(0), &mut ctl, SimTime::ZERO)
            .is_err());
    }

    #[test]
    fn first_flow_misses_then_hits() {
        let topo = small_topology();
        let (mut ctl, mut agent, mut sw) = setup(&topo);
        let rec = agent
            .handle_attach(UeImsi(0), &mut ctl, SimTime::ZERO)
            .unwrap();

        let v1 = flow_view(rec.permanent_ip, 443);
        let s1 = agent
            .handle_new_flow(&v1, &mut ctl, &mut sw, SimTime::ZERO)
            .unwrap();
        let FlowSetup::Allowed { cache_hit, .. } = s1 else {
            panic!("web flow is allowed");
        };
        assert!(!cache_hit, "first flow of the clause escalates");

        let v2 = flow_view(rec.permanent_ip, 80); // same catch-all clause
        let s2 = agent
            .handle_new_flow(&v2, &mut ctl, &mut sw, SimTime::ZERO)
            .unwrap();
        let FlowSetup::Allowed { cache_hit, .. } = s2 else {
            panic!()
        };
        assert!(cache_hit, "same clause is served from the tag cache");
        assert_eq!(agent.stats().cache_misses, 1);
        assert_eq!(agent.stats().cache_hits, 1);
        // two flows → four microflow entries (up + down each)
        assert_eq!(sw.microflow.len(), 4);
    }

    #[test]
    fn flow_rewrite_embeds_loc_and_tag() {
        let topo = small_topology();
        let (mut ctl, mut agent, mut sw) = setup(&topo);
        let rec = agent
            .handle_attach(UeImsi(0), &mut ctl, SimTime::ZERO)
            .unwrap();
        let v = flow_view(rec.permanent_ip, 443);
        let FlowSetup::Allowed { loc_source, .. } = agent
            .handle_new_flow(&v, &mut ctl, &mut sw, SimTime::ZERO)
            .unwrap()
        else {
            panic!()
        };
        let scheme = AddressingScheme::default_scheme();
        let loc = scheme.decode(loc_source.0).unwrap();
        assert_eq!(loc.base_station, BaseStationId(0));
        assert_eq!(loc.ue, rec.ue_id);
    }

    #[test]
    fn foreign_subscriber_flow_is_denied() {
        let topo = small_topology();
        let (mut ctl, mut agent, mut sw) = setup(&topo);
        let mut attrs = SubscriberAttributes::default_home(UeImsi(9));
        attrs.provider = softcell_policy::Provider::Foreign(3);
        ctl.put_subscriber(attrs);
        let rec = agent
            .handle_attach(UeImsi(9), &mut ctl, SimTime::ZERO)
            .unwrap();
        let v = flow_view(rec.permanent_ip, 443);
        let s = agent
            .handle_new_flow(&v, &mut ctl, &mut sw, SimTime::ZERO)
            .unwrap();
        assert!(matches!(s, FlowSetup::Denied { .. }));
        assert_eq!(agent.stats().denied, 1);
        // the drop rule is in place
        assert_eq!(
            sw.microflow.peek(&v.tuple).unwrap().action,
            MicroflowAction::Drop
        );
    }

    #[test]
    fn unknown_source_is_rejected() {
        let topo = small_topology();
        let (mut ctl, mut agent, mut sw) = setup(&topo);
        let v = flow_view(Ipv4Addr::new(1, 2, 3, 4), 443);
        assert!(agent
            .handle_new_flow(&v, &mut ctl, &mut sw, SimTime::ZERO)
            .is_err());
    }

    #[test]
    fn flow_slots_are_unique_and_recycled() {
        let topo = small_topology();
        let (mut ctl, mut agent, mut sw) = setup(&topo);
        let rec = agent
            .handle_attach(UeImsi(0), &mut ctl, SimTime::ZERO)
            .unwrap();
        let mut seen = HashSet::new();
        let mut first_tuple = None;
        for i in 0..10 {
            let t = FiveTuple {
                src: rec.permanent_ip,
                dst: Ipv4Addr::new(93, 184, 216, 34),
                src_port: 50000 + i,
                dst_port: 443,
                proto: Protocol::Tcp,
            };
            let v = HeaderView::parse(&build_flow_packet(t, 64, 0, &[])).unwrap();
            let FlowSetup::Allowed { loc_source, .. } = agent
                .handle_new_flow(&v, &mut ctl, &mut sw, SimTime::ZERO)
                .unwrap()
            else {
                panic!()
            };
            assert!(seen.insert(loc_source.1), "slots must be unique per UE");
            first_tuple.get_or_insert(t);
        }
        assert_eq!(agent.flows_of(UeImsi(0)).unwrap().len(), 10);
        agent
            .flow_finished(UeImsi(0), &first_tuple.unwrap())
            .unwrap();
        assert_eq!(agent.flows_of(UeImsi(0)).unwrap().len(), 9);
    }

    #[test]
    fn detach_frees_ue_id() {
        let topo = small_topology();
        let (mut ctl, mut agent, _sw) = setup(&topo);
        agent
            .handle_attach(UeImsi(0), &mut ctl, SimTime::ZERO)
            .unwrap();
        agent.handle_detach(UeImsi(0), &mut ctl).unwrap();
        let r = agent
            .handle_attach(UeImsi(1), &mut ctl, SimTime::ZERO)
            .unwrap();
        assert_eq!(r.ue_id, UeId(0), "freed id is recycled");
    }

    #[test]
    fn adopt_respects_foreign_ue_ids() {
        let topo = small_topology();
        let (mut ctl, mut agent, _sw) = setup(&topo);
        // UE arrives by handoff with id 5 chosen elsewhere
        let grant = ctl
            .attach_ue(UeImsi(2), BaseStationId(0), UeId(5), SimTime::ZERO)
            .unwrap();
        agent.adopt(grant.record, grant.classifier).unwrap();
        // the next locally assigned id must skip past 5
        let r = agent
            .handle_attach(UeImsi(3), &mut ctl, SimTime::ZERO)
            .unwrap();
        assert_eq!(r.ue_id, UeId(6));
    }

    #[test]
    fn adopt_rejects_wrong_station() {
        let topo = small_topology();
        let (mut ctl, mut agent, _sw) = setup(&topo);
        let grant = ctl
            .attach_ue(UeImsi(2), BaseStationId(1), UeId(0), SimTime::ZERO)
            .unwrap();
        assert!(agent.adopt(grant.record, grant.classifier).is_err());
        let _ = SwitchId(0); // silence unused import in some cfgs
    }

    #[test]
    fn idle_expired_flows_release_slots_via_retire() {
        let topo = small_topology();
        let (mut ctl, mut agent, mut sw) = setup(&topo);
        let rec = agent
            .handle_attach(UeImsi(0), &mut ctl, SimTime::ZERO)
            .unwrap();
        let slots = agent.ports().flow_slots();
        // fill every slot with sequential (now-finished) flows
        for i in 0..slots {
            let t = FiveTuple {
                src: rec.permanent_ip,
                dst: Ipv4Addr::new(93, 184, 216, 34),
                src_port: 40000 + i,
                dst_port: 443,
                proto: Protocol::Tcp,
            };
            let v = build_flow_packet(t, 64, 0, &[]);
            let view = HeaderView::parse(&v).unwrap();
            agent
                .handle_new_flow(&view, &mut ctl, &mut sw, SimTime::ZERO)
                .unwrap();
        }
        // their microflow entries idle out of the switch...
        let late = SimTime::from_secs(3600);
        sw.microflow.expire_idle(late);
        assert_eq!(sw.microflow.len(), 0);
        // ...but the agent-side records still pin every slot: leak
        let v = flow_view(rec.permanent_ip, 443);
        let err = agent
            .handle_new_flow(&v, &mut ctl, &mut sw, late)
            .unwrap_err();
        assert!(matches!(err, Error::Exhausted(_)), "{err}");
        // retiring dead flows reclaims the slots; the flow now succeeds
        assert_eq!(agent.retire_expired_flows(&sw), slots as usize);
        agent.handle_new_flow(&v, &mut ctl, &mut sw, late).unwrap();
        assert_eq!(agent.flows_of(UeImsi(0)).unwrap().len(), 1);
        // live flows are never retired
        assert_eq!(agent.retire_expired_flows(&sw), 0);
    }
}
