//! Rule operations: the controller's output towards physical switches.
//!
//! Algorithm 1 computes on the shadow tables; every shadow delta is
//! lowered to a [`RuleOp`] — a concrete install/remove of a prioritized
//! match/action rule on one switch. A [`RuleSink`] receives the stream:
//! the end-to-end simulator applies it to real [`softcell_dataplane`]
//! switches, while the large-scale rule-counting experiments use
//! [`NullSink`] (the shadow itself carries the counts).

use softcell_dataplane::matcher::{conventional_priority, Direction};
use softcell_dataplane::{Action, Match, PortField};
use softcell_topology::Topology;
use softcell_types::{Error, PolicyTag, PortEmbedding, PortNo, Result, SwitchId};

use crate::shadow::{Entry, NextHop, ShadowDelta};

/// One concrete data-plane operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RuleOp {
    /// Install a rule.
    Install {
        /// Target switch.
        switch: SwitchId,
        /// Rule priority.
        priority: u16,
        /// Match.
        matcher: Match,
        /// Action.
        action: Action,
    },
    /// Remove the rule with this exact matcher.
    Remove {
        /// Target switch.
        switch: SwitchId,
        /// Matcher of the rule to remove.
        matcher: Match,
    },
}

impl RuleOp {
    /// The switch this operation targets.
    pub fn switch(&self) -> SwitchId {
        match self {
            RuleOp::Install { switch, .. } | RuleOp::Remove { switch, .. } => *switch,
        }
    }
}

/// A barrier-delimited batch of operations for one switch.
///
/// The sharded controller and the `flow_mod_batch` wire message group a
/// drained op stream per target switch. Within one batch the ops keep
/// their original relative order (the per-switch ordering invariant of
/// [`crate::core::CentralController::drain_ops`]), and `barrier` marks
/// the batch boundary: a switch must fully apply the batch before
/// touching any op of a later batch. Because ops for *different*
/// switches are never order-dependent (each op names exactly one
/// switch, and switch state is disjoint), per-switch batches with
/// barriers are sufficient for consistency — no cross-switch fence is
/// needed.
#[derive(Clone, Debug, PartialEq)]
pub struct SwitchBatch {
    /// The target switch.
    pub switch: SwitchId,
    /// The ops, in drain order.
    pub ops: Vec<RuleOp>,
    /// Whether the batch ends with a barrier (always true for batches
    /// built by [`batch_by_switch`]; the field exists so a future
    /// streaming path can split one logical batch across messages).
    pub barrier: bool,
}

/// An order-preserving per-switch op journal: ops append into one lane
/// per switch, lanes ordered by first appearance. This is the canonical
/// incremental form of [`batch_by_switch`] — a journal fed one op at a
/// time produces exactly the batches a one-shot grouping of the full
/// stream would, so the sharded controller can journal each ticket's
/// ops outside the engine lock without perturbing the merged stream.
#[derive(Debug, Default)]
pub struct OpJournal {
    lanes: Vec<SwitchBatch>,
    /// switch -> lane index (the linear scan in the original grouping
    /// was O(switches) per op; drains of large merges made that visible)
    index: softcell_types::FxHashMap<SwitchId, usize>,
}

impl OpJournal {
    /// Appends one op to its switch's lane.
    pub fn push(&mut self, op: RuleOp) {
        let sw = op.switch();
        match self.index.entry(sw) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.lanes[*e.get()].ops.push(op);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.lanes.len());
                self.lanes.push(SwitchBatch {
                    switch: sw,
                    ops: vec![op],
                    barrier: true,
                });
            }
        }
    }

    /// Appends a sequence of ops (drain order preserved).
    pub fn extend(&mut self, ops: impl IntoIterator<Item = RuleOp>) {
        for op in ops {
            self.push(op);
        }
    }

    /// Whether the journal holds no ops.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Finishes the journal into barrier-delimited batches, lanes in
    /// first-appearance order.
    pub fn into_batches(self) -> Vec<SwitchBatch> {
        self.lanes
    }
}

/// Groups a drained op stream into per-switch batches, preserving each
/// switch's relative op order. Batch order follows each switch's first
/// appearance in the stream, so replaying batches in sequence applies
/// every per-switch subsequence exactly as drained.
pub fn batch_by_switch(ops: Vec<RuleOp>) -> Vec<SwitchBatch> {
    let mut journal = OpJournal::default();
    journal.extend(ops);
    journal.into_batches()
}

/// Receives the controller's rule operations.
pub trait RuleSink {
    /// Applies one operation.
    fn apply(&mut self, op: RuleOp);
}

/// Discards operations (rule-counting experiments).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl RuleSink for NullSink {
    fn apply(&mut self, _op: RuleOp) {}
}

/// Buffers operations (tests and batch application).
#[derive(Debug, Default, Clone)]
pub struct VecSink(pub Vec<RuleOp>);

impl RuleSink for VecSink {
    fn apply(&mut self, op: RuleOp) {
        self.0.push(op);
    }
}

impl<F: FnMut(RuleOp)> RuleSink for F {
    fn apply(&mut self, op: RuleOp) {
        self(op);
    }
}

/// Lowers one shadow delta to a concrete rule operation.
///
/// The shadow speaks in logical terms (entries, tags, next hops); the
/// physical rule needs ports and masked port matches. `dir` selects which
/// header fields carry the tag and prefix (source on the uplink,
/// destination on the downlink — paper §4.1).
pub fn lower_delta(
    topo: &Topology,
    ports: &PortEmbedding,
    carrier: softcell_types::Ipv4Prefix,
    dir: Direction,
    sw: SwitchId,
    delta: &ShadowDelta,
) -> Result<RuleOp> {
    let m_dir = dir;
    let entry_port = |entry: &Entry| -> Result<Option<PortNo>> {
        match entry {
            Entry::Ingress => Ok(None),
            Entry::FromMb(mb) => Ok(Some(topo.middlebox(*mb).port)),
            Entry::FromSwitch(prev) => topo
                .port_towards(sw, *prev)
                .map(Some)
                .ok_or_else(|| Error::NotFound(format!("{sw} has no link to {prev}"))),
        }
    };
    let build_match = |entry: &Entry, tag: PolicyTag, prefix| -> Result<Match> {
        // Tag-only rules carry the carrier prefix as a guard: the tag
        // bits live in a transport port, and a remote server's port
        // (e.g. 443) can alias a tag value. Requiring the
        // direction-side address to be a LocIP disambiguates — only
        // SoftCell-embedded packets have one (paper §4.1).
        let mut m = match prefix {
            Some(p) => Match::tag_and_prefix(m_dir, tag, p, ports),
            None => Match::tag_and_prefix(m_dir, tag, carrier, ports),
        };
        if let Some(p) = entry_port(entry)? {
            m = m.from_port(p);
        }
        Ok(m)
    };
    let action = |nh: &NextHop| -> Result<Action> {
        let towards = |next: SwitchId| -> Result<PortNo> {
            topo.port_towards(sw, next)
                .ok_or_else(|| Error::NotFound(format!("{sw} has no link to {next}")))
        };
        Ok(match nh {
            NextHop::Switch(next) => Action::Forward(towards(*next)?),
            NextHop::Middlebox(mb) => Action::Forward(topo.middlebox(*mb).port),
            NextHop::Uplink => {
                let gw = topo
                    .gateways()
                    .iter()
                    .find(|g| g.switch == sw)
                    .ok_or_else(|| Error::NotFound(format!("{sw} is not a gateway")))?;
                Action::Forward(gw.port)
            }
            NextHop::Radio => {
                let bs = topo
                    .base_station_at(sw)
                    .ok_or_else(|| Error::NotFound(format!("{sw} hosts no base station")))?;
                Action::Forward(topo.base_station(bs).radio_port)
            }
            NextHop::SwapTag(to, next) => {
                let (value, mask) = ports.tag_match(*to);
                Action::RewritePortBitsForward {
                    field: tag_field(dir),
                    value,
                    mask,
                    out: towards(*next)?,
                }
            }
            NextHop::SwapTagMb(to, mb) => {
                let (value, mask) = ports.tag_match(*to);
                Action::RewritePortBitsForward {
                    field: tag_field(dir),
                    value,
                    mask,
                    out: topo.middlebox(*mb).port,
                }
            }
        })
    };

    match delta {
        ShadowDelta::SetDefault { entry, tag, nh } => {
            let matcher = build_match(entry, *tag, None)?;
            Ok(RuleOp::Install {
                switch: sw,
                priority: conventional_priority(&matcher),
                matcher,
                action: action(nh)?,
            })
        }
        ShadowDelta::AddPrefix {
            entry,
            tag,
            prefix,
            nh,
        } => {
            let matcher = build_match(entry, *tag, Some(*prefix))?;
            Ok(RuleOp::Install {
                switch: sw,
                priority: conventional_priority(&matcher),
                matcher,
                action: action(nh)?,
            })
        }
        ShadowDelta::RemovePrefix { entry, tag, prefix } => Ok(RuleOp::Remove {
            switch: sw,
            matcher: build_match(entry, *tag, Some(*prefix))?,
        }),
    }
}

/// Which transport-port field carries the tag in a direction.
pub fn tag_field(dir: Direction) -> PortField {
    match dir {
        Direction::Uplink => PortField::Src,
        Direction::Downlink => PortField::Dst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softcell_topology::small_topology;
    use softcell_types::Ipv4Prefix;

    #[test]
    fn lower_default_delta_to_tag_rule() {
        let topo = small_topology();
        let ports = PortEmbedding::default_embedding();
        // gw(sw0) forwards tag 3 downlink traffic to c1(sw1)
        let delta = ShadowDelta::SetDefault {
            entry: Entry::Ingress,
            tag: PolicyTag(3),
            nh: NextHop::Switch(SwitchId(1)),
        };
        let carrier: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let op = lower_delta(
            &topo,
            &ports,
            carrier,
            Direction::Downlink,
            SwitchId(0),
            &delta,
        )
        .unwrap();
        let RuleOp::Install {
            matcher, action, ..
        } = op
        else {
            panic!("expected install");
        };
        assert!(matcher.dst_port.is_some(), "downlink tag lives in dst port");
        assert_eq!(
            matcher.dst_prefix,
            Some(carrier),
            "tag-only rules carry the carrier guard"
        );
        assert_eq!(
            action.out_port(),
            topo.port_towards(SwitchId(0), SwitchId(1))
        );
    }

    #[test]
    fn lower_prefix_delta_with_mb_entry() {
        let topo = small_topology();
        let ports = PortEmbedding::default_embedding();
        let fw = topo.middleboxes()[0]; // firewall on c1 = sw1
        let prefix: Ipv4Prefix = "10.0.0.0/23".parse().unwrap();
        let delta = ShadowDelta::AddPrefix {
            entry: Entry::FromMb(fw.id),
            tag: PolicyTag(7),
            prefix,
            nh: NextHop::Switch(SwitchId(0)),
        };
        let carrier: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let op = lower_delta(
            &topo,
            &ports,
            carrier,
            Direction::Downlink,
            fw.switch,
            &delta,
        )
        .unwrap();
        let RuleOp::Install { matcher, .. } = op else {
            panic!("expected install");
        };
        assert_eq!(matcher.in_port, Some(fw.port));
        assert_eq!(matcher.dst_prefix, Some(prefix));
    }

    #[test]
    fn lower_swap_delta_to_port_rewrite() {
        let topo = small_topology();
        let ports = PortEmbedding::default_embedding();
        let delta = ShadowDelta::SetDefault {
            entry: Entry::Ingress,
            tag: PolicyTag(1),
            nh: NextHop::SwapTag(PolicyTag(2), SwitchId(1)),
        };
        let carrier: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let op = lower_delta(
            &topo,
            &ports,
            carrier,
            Direction::Uplink,
            SwitchId(0),
            &delta,
        )
        .unwrap();
        let RuleOp::Install { action, .. } = op else {
            panic!("expected install");
        };
        match action {
            Action::RewritePortBitsForward {
                field, value, mask, ..
            } => {
                assert_eq!(field, PortField::Src, "uplink tag lives in src port");
                assert_eq!((value, mask), ports.tag_match(PolicyTag(2)));
            }
            other => panic!("expected swap action, got {other}"),
        }
    }

    #[test]
    fn lower_uplink_exit_at_gateway() {
        let topo = small_topology();
        let ports = PortEmbedding::default_embedding();
        let delta = ShadowDelta::SetDefault {
            entry: Entry::Ingress,
            tag: PolicyTag(1),
            nh: NextHop::Uplink,
        };
        let carrier: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let op = lower_delta(
            &topo,
            &ports,
            carrier,
            Direction::Uplink,
            SwitchId(0),
            &delta,
        )
        .unwrap();
        let RuleOp::Install { action, .. } = op else {
            panic!()
        };
        assert_eq!(action.out_port(), Some(topo.default_gateway().port));
        // non-gateway switch cannot exit
        assert!(lower_delta(
            &topo,
            &ports,
            carrier,
            Direction::Uplink,
            SwitchId(1),
            &delta
        )
        .is_err());
    }

    #[test]
    fn vec_sink_buffers_in_order() {
        let mut sink = VecSink::default();
        let op = RuleOp::Remove {
            switch: SwitchId(1),
            matcher: Match::ANY,
        };
        sink.apply(op);
        assert_eq!(sink.0.len(), 1);
        assert_eq!(sink.0[0], op);
    }

    #[test]
    fn batching_preserves_per_switch_order() {
        let rm = |sw: u32| RuleOp::Remove {
            switch: SwitchId(sw),
            matcher: Match::ANY,
        };
        let inst = |sw: u32, prio: u16| RuleOp::Install {
            switch: SwitchId(sw),
            priority: prio,
            matcher: Match::ANY,
            action: Action::Drop,
        };
        let ops = vec![inst(2, 1), inst(1, 1), rm(2), inst(2, 2), rm(1)];
        let batches = batch_by_switch(ops);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].switch, SwitchId(2), "first-appearance order");
        assert_eq!(batches[0].ops, vec![inst(2, 1), rm(2), inst(2, 2)]);
        assert_eq!(batches[1].ops, vec![inst(1, 1), rm(1)]);
        assert!(batches.iter().all(|b| b.barrier));
    }

    #[test]
    fn incremental_journal_matches_one_shot_batching() {
        // feeding a journal op-by-op across many "tickets" must produce
        // the same batches as grouping the concatenated stream at once
        let rm = |sw: u32| RuleOp::Remove {
            switch: SwitchId(sw),
            matcher: Match::ANY,
        };
        let inst = |sw: u32, prio: u16| RuleOp::Install {
            switch: SwitchId(sw),
            priority: prio,
            matcher: Match::ANY,
            action: Action::Drop,
        };
        let tickets = vec![
            vec![inst(2, 1), inst(1, 1)],
            vec![],
            vec![rm(2), inst(3, 1)],
            vec![inst(2, 2), rm(1), rm(3)],
        ];
        let mut journal = OpJournal::default();
        assert!(journal.is_empty());
        for ticket in &tickets {
            journal.extend(ticket.iter().cloned());
        }
        assert!(!journal.is_empty());
        let flat: Vec<RuleOp> = tickets.into_iter().flatten().collect();
        assert_eq!(journal.into_batches(), batch_by_switch(flat));
    }

    #[test]
    fn closures_are_sinks() {
        let mut count = 0usize;
        {
            let mut sink = |_op: RuleOp| count += 1;
            sink.apply(RuleOp::Remove {
                switch: SwitchId(0),
                matcher: Match::ANY,
            });
        }
        assert_eq!(count, 1);
    }
}
