//! Algorithm 1: online multi-dimensional aggregation of policy paths.
//!
//! Installing a policy path means making every switch along it forward
//! the path's traffic to the right next hop (switch, middlebox, or exit).
//! The scalability of SoftCell's data plane comes from *which* rules
//! realize those decisions (paper §3.2):
//!
//! 1. **Tag selection.** For each candidate tag already present on the
//!    path's switches, count how many *new* rules installing the path
//!    under that tag would take — zero where the tag's existing next hop
//!    already agrees, zero where a new rule merges with a contiguous
//!    sibling, one otherwise, infeasible on exact conflict. Pick the
//!    argmin; allocate a fresh tag when no candidate is usable.
//! 2. **Installation.** Lay down the rules, aggregating where possible:
//!    a tag's first rule at a switch is a Type 2 (tag-only) default; a
//!    divergent next hop becomes a Type 1 (tag+prefix) override;
//!    contiguous same-next-hop prefixes merge into their parent.
//! 3. **Loops.** A path that re-enters a switch through *different*
//!    links is disambiguated by input port; re-entry through the *same*
//!    link splits the path into segments with distinct tags joined by a
//!    tag-swap rule (§3.2 "Dealing with loops").
//!
//! Two engineering choices documented in DESIGN.md: candidate tags are
//! drawn from a chain-shape index plus the tags at the path's
//! pre-gateway switch (a bounded subset of the paper's full `candTag`
//! set — the argmin is exact over the evaluated set), and a tag may not
//! be shared by two *different* paths of the same origin base station
//! (their rules would be indistinguishable — the generalization of the
//! paper's footnote 2).
//!
//! # Partitioned state and optimistic planning
//!
//! Algorithm 1's state is split along its natural contention boundary:
//!
//! * **Per-switch cells** ([`ShadowCells`]) — each switch's uplink and
//!   downlink shadow tables behind its own mutex, plus a version stamp
//!   bumped on every mutation. All `rule_cost` probes and rule commits
//!   touch exactly one cell at a time.
//! * **Residue** ([`Residue`] internally) — the cross-switch remainder:
//!   the tag allocator, the chain-shape candidate index, the per-station
//!   claimed-tag sets and the prefix map, behind one `RwLock` with its
//!   own version stamp.
//!
//! Planning is *pure*: [`PlannerHandle::plan_policy_path`] runs the full
//! tag-selection argmin under a residue **read** lock, previewing
//! allocator state with [`TagAllocator::peek`] and buffering its own
//! chain-index/claimed updates in overlays, recording the version of
//! every state it read. Committing ([`PathInstaller::apply_path_plan`])
//! replays the buffered residue updates and writes the rules — the only
//! phase that takes write locks. A plan whose recorded versions still
//! match current state commits byte-identically to what a sequential
//! plan-then-commit would have produced; a stale plan is discarded and
//! re-planned under the sequencer ticket (the sequential path *is* the
//! fallback — both tiers share this one implementation, which is what
//! makes the merged op stream provably identical to the single-threaded
//! reference).
//!
//! Lock order: residue before cell; never two cells at once.

use softcell_types::{FxHashMap, FxHashSet};
use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashSet;
use std::sync::{Arc, MutexGuard};

use parking_lot::{Mutex, RwLock};

use softcell_telemetry::Registry;
use softcell_topology::{PolicyPath, Topology};
use softcell_types::{
    AddressingScheme, BaseStationId, Error, Ipv4Prefix, MiddleboxId, PolicyTag, Result, SwitchId,
    TagAllocator,
};

use crate::shadow::{Entry, NextHop, ShadowDelta, ShadowSwitch, ShadowTables};

/// The direction a rule set serves (re-exported from the data plane's
/// matcher so controller and switch agree on field selection). Figure 7
/// counts one direction (the paper's Fig. 3 shows downlink rules); the
/// end-to-end simulator installs both.
pub use softcell_dataplane::matcher::Direction;

/// Counter bumped when a raw tunnel tag is released more times than it
/// was allocated (see [`PathInstaller::release_raw_tag`]).
pub const TAG_RELEASE_UNDERFLOW: &str = "softcell_controller_tag_release_underflow_total";

/// Tunables for tag selection.
#[derive(Clone, Copy, Debug)]
pub struct TagPolicy {
    /// Total tag space (the paper's Fig. 4 embodiment has 2^10; the
    /// large-scale simulations use a wider space).
    pub capacity: u16,
    /// Maximum candidate tags evaluated per segment (the argmin is exact
    /// over this set).
    pub max_candidates: usize,
    /// Prefer allocating a fresh tag over reusing a candidate whose cost
    /// is no better than `fresh_cost * fresh_bias_num / fresh_bias_den`,
    /// as long as less than half the tag space is used. Fresh tags buy
    /// cheap Type 2 rules; reuse buys a smaller tag space footprint.
    pub fresh_bias_num: usize,
    /// See `fresh_bias_num`.
    pub fresh_bias_den: usize,
}

impl Default for TagPolicy {
    fn default() -> Self {
        TagPolicy {
            capacity: u16::MAX,
            max_candidates: 8,
            fresh_bias_num: 1,
            fresh_bias_den: 1,
        }
    }
}

/// One forwarding decision a path requires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Decision {
    sw: SwitchId,
    /// How the traffic arrives (loop/middlebox disambiguation context).
    arrival: Arrival,
    want: Want,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Arrival {
    /// From outside the fabric (radio at the access switch, Internet at
    /// the gateway).
    External,
    FromSwitch(SwitchId),
    FromMb(MiddleboxId),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Want {
    ToSwitch(SwitchId),
    ToMb(MiddleboxId),
    /// Out the Internet uplink (uplink direction's last hop).
    Exit,
}

impl Want {
    fn next_hop(self) -> NextHop {
        match self {
            Want::ToSwitch(s) => NextHop::Switch(s),
            Want::ToMb(m) => NextHop::Middlebox(m),
            Want::Exit => NextHop::Uplink,
        }
    }

    fn swap_next_hop(self, to: PolicyTag) -> NextHop {
        match self {
            Want::ToSwitch(s) => NextHop::SwapTag(to, s),
            Want::ToMb(m) => NextHop::SwapTagMb(to, m),
            Want::Exit => NextHop::Uplink, // swapping at the exit is pointless
        }
    }
}

/// Result of installing one path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstallReport {
    /// The tag of each segment, in traversal order. The first is what
    /// the access-edge classifier embeds; the last is what the packet
    /// carries at the far end.
    pub segment_tags: Vec<PolicyTag>,
    /// New rules this installation added (net of aggregation).
    pub new_rules: usize,
    /// Tag-swap rules among them.
    pub swap_rules: usize,
    /// How many segments reused an existing tag.
    pub reused_segments: usize,
}

impl InstallReport {
    /// The tag the classifier embeds at the access edge (uplink) or that
    /// arrives from the Internet (downlink): the first segment's tag.
    pub fn entry_tag(&self) -> PolicyTag {
        self.segment_tags[0]
    }

    /// The tag the packet carries after the last segment.
    pub fn exit_tag(&self) -> PolicyTag {
        *self.segment_tags.last().expect("at least one segment")
    }
}

/// One switch's shadow state, both directions, behind its own lock.
/// Uplink and downlink rules match different header fields, so they are
/// separate tables even when they share a tag — but they share a cell
/// (and a version stamp) because a path install touches the switch, not
/// a direction, and one stamp keeps validation cheap.
#[derive(Debug, Default)]
pub struct SwitchCell {
    up: ShadowSwitch,
    down: ShadowSwitch,
    version: u64,
}

impl SwitchCell {
    /// The shadow serving one direction.
    pub fn dir(&self, dir: Direction) -> &ShadowSwitch {
        match dir {
            Direction::Uplink => &self.up,
            Direction::Downlink => &self.down,
        }
    }

    fn dir_mut(&mut self, dir: Direction) -> &mut ShadowSwitch {
        match dir {
            Direction::Uplink => &mut self.up,
            Direction::Downlink => &mut self.down,
        }
    }

    /// Mutation stamp; optimistic plans validate against it.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// The per-switch partition of Algorithm 1's state: one mutex per
/// switch. Callers lock exactly one cell at a time (enforced by
/// convention and the analyzer's lock-order gate), so any set of
/// switch-disjoint probes and commits proceeds in parallel.
#[derive(Debug)]
pub struct ShadowCells {
    cells: Vec<Mutex<SwitchCell>>,
}

impl ShadowCells {
    fn new(n: usize) -> Self {
        ShadowCells {
            cells: (0..n).map(|_| Mutex::new(SwitchCell::default())).collect(),
        }
    }

    /// Locks one switch's cell.
    pub fn lock(&self, sw: SwitchId) -> MutexGuard<'_, SwitchCell> {
        let cell = &self.cells[sw.index()];
        cell.lock()
    }

    /// Number of switches.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether there are no switches.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// The cross-switch remainder of Algorithm 1's state — everything that
/// is not naturally per-switch. Guarded by one `RwLock`: planners hold
/// it for read, commits for write.
#[derive(Debug)]
struct Residue {
    allocator: TagAllocator,
    /// chain-shape → recently used tags (candidate source).
    chain_index: FxHashMap<(Direction, u64), Vec<PolicyTag>>,
    /// Tags already serving some path of a given base station (paper
    /// footnote 2, generalized): `claimed[bs]` is the set of tags in use
    /// by that station's installed paths.
    claimed: FxHashMap<BaseStationId, FxHashSet<PolicyTag>>,
    /// Optional topology-aligned prefix per station, overriding the
    /// scheme's dense numbering. Operators "align IP prefixes with the
    /// topology to enable aggregation" (paper §3.1): padding clusters
    /// and pods to power-of-two boundaries turns every dispatch block
    /// into a single prefix.
    prefix_map: Option<Vec<Ipv4Prefix>>,
    /// Bumped once per mutation batch (a committed path, a raw tag
    /// operation, a prefix-map change).
    version: u64,
}

/// Versions of everything a plan read. A plan whose stamps still match
/// commits exactly what a sequential plan would produce now.
#[derive(Clone, Debug)]
pub(crate) struct PlanStamps {
    residue: u64,
    /// First-touch version of every cell probed.
    cells: FxHashMap<SwitchId, u64>,
}

/// Mutable scratch state threaded through one planning pass: buffered
/// residue updates (never written back — the commit replays them from
/// the plan) and the version stamps of everything read.
struct PlanCtx {
    stamps: PlanStamps,
    /// Planned-but-uncommitted chain-index slots, keyed like the real
    /// index; consulted before the shared index so later segments (and
    /// the downlink of a pair) see earlier planned tags.
    chain_overlay: FxHashMap<(Direction, u64), Vec<PolicyTag>>,
    /// Planned-but-uncommitted claimed tags (the uplink plan's tags,
    /// visible to the downlink plan of the same pair).
    claimed_overlay: FxHashMap<BaseStationId, FxHashSet<PolicyTag>>,
    /// Number of fresh tags this pass has reserved via
    /// [`TagAllocator::peek`].
    fresh_taken: usize,
}

impl PlanCtx {
    fn new(residue_version: u64) -> Self {
        PlanCtx {
            stamps: PlanStamps {
                residue: residue_version,
                cells: FxHashMap::default(),
            },
            chain_overlay: FxHashMap::default(),
            claimed_overlay: FxHashMap::default(),
            fresh_taken: 0,
        }
    }
}

/// A fully planned single-direction path: everything `apply_path_plan`
/// needs to commit without re-running tag selection.
#[derive(Clone, Debug)]
pub(crate) struct PathPlan {
    dir: Direction,
    origin: BaseStationId,
    prefix: Ipv4Prefix,
    /// Forward (traversal) order. Replays happen in *planning* order —
    /// back to front — for the residue, then forward for the rules.
    plans: Vec<SegmentPlan>,
    segment_tags: Vec<PolicyTag>,
    reused_segments: usize,
}

/// A planned bidirectional (or single-direction) policy path, produced
/// outside the sequencer by [`PlannerHandle::plan_policy_path`] and
/// offered to the engine, which fast-commits it when still current.
#[derive(Clone, Debug)]
pub struct PolicyPathPlan {
    pub(crate) path: PolicyPath,
    pub(crate) uplink: Option<PathPlan>,
    pub(crate) downlink: PathPlan,
    pub(crate) stamps: PlanStamps,
}

impl PolicyPathPlan {
    /// Whether this plan has the shape the engine's config expects.
    pub(crate) fn matches_mode(&self, bidirectional: bool) -> bool {
        self.uplink.is_some() == bidirectional
    }
}

/// A cloneable handle onto the installer's shared state, for planning
/// policy paths optimistically outside the sequencer. Planning takes
/// only read/cell locks and mutates nothing.
///
/// Handles are snapshots of the installer's state *identity*: after
/// [`crate::core::CentralController::adopt_reoptimized`] swaps in a
/// fresh installer, plans from old handles always fail validation.
#[derive(Clone)]
pub struct PlannerHandle {
    scheme: AddressingScheme,
    policy: TagPolicy,
    shadows: Arc<ShadowCells>,
    residue: Arc<RwLock<Residue>>,
}

impl PlannerHandle {
    /// Plans a policy path (both directions when `bidirectional`)
    /// against current shared state, without mutating anything. The
    /// result carries version stamps; the engine commits it only if
    /// they still match.
    pub fn plan_policy_path(
        &self,
        path: PolicyPath,
        bidirectional: bool,
    ) -> Result<PolicyPathPlan> {
        let residue = self.residue.read();
        let planner = Planner {
            scheme: &self.scheme,
            policy: self.policy,
            shadows: &self.shadows,
            residue: &residue,
        };
        let mut ctx = PlanCtx::new(residue.version);
        let (uplink, forced) = if bidirectional {
            let up = planner.plan_path(&mut ctx, &path, Direction::Uplink, None)?;
            // The sequential reference commits the uplink before planning
            // the downlink; its claimed-tag inserts become an overlay
            // here. (Chain-index and shadow couplings are direction-keyed
            // and so invisible to the downlink plan; the allocator
            // coupling is `fresh_taken` continuing across both plans.)
            let claims = ctx.claimed_overlay.entry(path.origin).or_default();
            claims.extend(up.segment_tags.iter().copied());
            let exit = *up.segment_tags.last().expect("at least one segment");
            (Some(up), Some(exit))
        } else {
            (None, None)
        };
        let downlink = planner.plan_path(&mut ctx, &path, Direction::Downlink, forced)?;
        Ok(PolicyPathPlan {
            path,
            uplink,
            downlink,
            stamps: ctx.stamps,
        })
    }
}

/// The pure planning engine: borrows a residue snapshot (the caller's
/// read or write guard) and probes cells one at a time, recording
/// stamps. Shared by the sequential install path and the optimistic
/// planners — there is exactly one tag-selection implementation.
struct Planner<'a> {
    scheme: &'a AddressingScheme,
    policy: TagPolicy,
    shadows: &'a ShadowCells,
    residue: &'a Residue,
}

impl Planner<'_> {
    /// Locks a cell, recording its version on first touch.
    fn cell(&self, ctx: &mut PlanCtx, sw: SwitchId) -> MutexGuard<'_, SwitchCell> {
        let cell = self.shadows.lock(sw);
        ctx.stamps.cells.entry(sw).or_insert(cell.version);
        cell
    }

    fn plan_path(
        &self,
        ctx: &mut PlanCtx,
        path: &PolicyPath,
        dir: Direction,
        forced_entry: Option<PolicyTag>,
    ) -> Result<PathPlan> {
        let prefix = match &self.residue.prefix_map {
            Some(map) => *map.get(path.origin.index()).ok_or_else(|| {
                Error::NotFound(format!("{} missing from prefix map", path.origin))
            })?,
            None => self.scheme.base_station_prefix(path.origin)?,
        };
        let decisions = build_decisions(path, dir);
        let segments = split_segments(&decisions);

        let mut segment_tags = vec![PolicyTag(0); segments.len()];
        let mut reused = 0usize;

        // Segments are resolved back-to-front so a segment's swap-in rule
        // (owned by the previous segment) can name its tag. Tags already
        // chosen for other segments of this same path are excluded — two
        // segments sharing a tag would recreate exactly the ambiguity
        // segmentation exists to remove.
        let mut next_tag: Option<PolicyTag> = None;
        let mut path_tags: HashSet<PolicyTag> = HashSet::new();
        // A forced entry tag belongs to segment 0, which is planned
        // *last* — exclude it from every other segment's candidates up
        // front, or a later segment may independently pick the same tag
        // and recreate the loop ambiguity segmentation removes.
        if segments.len() > 1 {
            if let Some(t) = forced_entry {
                path_tags.insert(t);
            }
        }
        let mut plans: Vec<SegmentPlan> = Vec::with_capacity(segments.len());
        for (idx, seg) in segments.iter().enumerate().rev() {
            let forced = if idx == 0 { forced_entry } else { None };
            let plan = self.plan_segment(
                ctx,
                path.origin,
                prefix,
                seg,
                dir,
                next_tag,
                forced,
                &path_tags,
            )?;
            next_tag = Some(plan.tag);
            path_tags.insert(plan.tag);
            segment_tags[idx] = plan.tag;
            if plan.reused {
                reused += 1;
            }
            plans.push(plan);
        }
        plans.reverse();

        Ok(PathPlan {
            dir,
            origin: path.origin,
            prefix,
            plans,
            segment_tags,
            reused_segments: reused,
        })
    }

    /// Chooses a tag for one segment and freezes the per-decision
    /// placement. Mutates only the planning context.
    #[allow(clippy::too_many_arguments)]
    fn plan_segment(
        &self,
        ctx: &mut PlanCtx,
        origin: BaseStationId,
        prefix: Ipv4Prefix,
        seg: &Segment,
        dir: Direction,
        swap_to: Option<PolicyTag>,
        forced: Option<PolicyTag>,
        excluded: &HashSet<PolicyTag>,
    ) -> Result<SegmentPlan> {
        let key = (dir, seg.chain_key(dir));

        let chosen: (PolicyTag, bool) = if let Some(tag) = forced {
            // Downlink entry tag dictated by the uplink: must be usable;
            // if it conflicts we cannot reroute here (the swap machinery
            // of the *caller* handles gateway-side swaps).
            if self
                .segment_cost(ctx, dir, tag, prefix, seg, swap_to)
                .is_none()
            {
                return Err(Error::InvalidState(format!(
                    "forced entry tag {tag} conflicts with existing rules"
                )));
            }

            (tag, true)
        } else {
            let mut candidates: Vec<PolicyTag> = Vec::new();
            if let Some(tags) = ctx
                .chain_overlay
                .get(&key)
                .or_else(|| self.residue.chain_index.get(&key))
            {
                candidates.extend(tags.iter().rev().copied());
            }
            // tags present at the segment's gateway-side switch — the
            // busiest rule table on the path and a cheap, high-yield
            // sample of the paper's candTag set. (On the downlink the
            // gateway side is the *first* decision; on the uplink the
            // *last*.)
            if candidates.len() < self.policy.max_candidates {
                let sample = match dir {
                    Direction::Uplink => seg.decisions.last(),
                    Direction::Downlink => seg.decisions.first(),
                };
                if let Some(d) = sample {
                    let sampled: Vec<PolicyTag> = {
                        let cell = self.cell(ctx, d.sw);
                        cell.dir(dir).tags().collect()
                    };
                    for t in sampled {
                        if candidates.len() >= self.policy.max_candidates {
                            break;
                        }
                        if !candidates.contains(&t) {
                            candidates.push(t);
                        }
                    }
                }
            }
            candidates.truncate(self.policy.max_candidates);

            let mut best: Option<(usize, PolicyTag)> = None;
            for &t in &candidates {
                if excluded.contains(&t) {
                    continue;
                }
                let Some((cost, changes)) = self.segment_cost(ctx, dir, t, prefix, seg, swap_to)
                else {
                    continue;
                };
                // A claimed tag (another path of this same base station)
                // may only be shared when installing would change
                // *nothing* — identical forwarding is harmless. A mere
                // zero rule-count delta is NOT enough: an install that
                // aggregates into a sibling still changes where this
                // prefix forwards, which would silently rewrite the
                // claiming path's behaviour.
                let is_claimed = self
                    .residue
                    .claimed
                    .get(&origin)
                    .is_some_and(|c| c.contains(&t))
                    || ctx
                        .claimed_overlay
                        .get(&origin)
                        .is_some_and(|c| c.contains(&t));
                if changes != 0 && is_claimed {
                    continue;
                }
                if best.map(|(c, _)| cost < c).unwrap_or(true) {
                    best = Some((cost, t));
                    if cost == 0 && changes == 0 {
                        break;
                    }
                }
            }

            let fresh_cost = seg.decisions.len() + usize::from(swap_to.is_some());
            let allocated = self.residue.allocator.allocated() + ctx.fresh_taken;
            let use_fresh = match best {
                None => true,
                Some((cost, _)) => {
                    cost * self.policy.fresh_bias_den > fresh_cost * self.policy.fresh_bias_num
                        && (allocated * 2) < self.policy.capacity as usize
                }
            };
            if use_fresh {
                match self.residue.allocator.peek(ctx.fresh_taken) {
                    Some(t) => {
                        ctx.fresh_taken += 1;
                        (t, false)
                    }
                    None => {
                        let (_, t) = best.ok_or_else(|| {
                            Error::Exhausted(format!(
                                "tag space exhausted and no feasible candidate ({} tags)",
                                self.policy.capacity
                            ))
                        })?;
                        (t, true)
                    }
                }
            } else {
                (best.expect("checked").1, true)
            }
        };

        let (tag, reused) = chosen;
        // remember this tag for future same-shape segments — buffered in
        // the overlay; the commit replays the same push against the real
        // index
        let slot = ctx.chain_overlay.entry(key).or_insert_with(|| {
            self.residue
                .chain_index
                .get(&key)
                .cloned()
                .unwrap_or_default()
        });
        if !slot.contains(&tag) {
            slot.push(tag);
            if slot.len() > 4 {
                slot.remove(0);
            }
        }
        Ok(SegmentPlan {
            tag,
            reused,
            chain_key: key,
            decisions: seg.decisions.clone(),
            qualified: seg.qualified.clone(),
            swap_to,
        })
    }

    /// The exact new-rule count of realizing a segment under `tag`, and
    /// the number of decisions whose forwarding state would have to
    /// change at all (`None` = infeasible). Mirrors `commit_segment`
    /// without mutating. `changes == 0` means the segment already
    /// forwards exactly as desired — the only condition under which a
    /// tag claimed by another path of the same station may be shared.
    fn segment_cost(
        &self,
        ctx: &mut PlanCtx,
        dir: Direction,
        tag: PolicyTag,
        prefix: Ipv4Prefix,
        seg: &Segment,
        swap_to: Option<PolicyTag>,
    ) -> Option<(usize, usize)> {
        let mut cost = 0usize;
        let mut changes = 0usize;
        for (i, d) in seg.decisions.iter().enumerate() {
            let is_last = i + 1 == seg.decisions.len();
            let nh = match (is_last, swap_to) {
                (true, Some(to)) => d.want.swap_next_hop(to),
                _ => d.want.next_hop(),
            };
            let cell = self.cell(ctx, d.sw);
            let shadow = cell.dir(dir);
            let entry = placement_in(shadow, d, seg.qualified.contains(&i), tag);
            // A correct answer from a higher-priority qualified table, or
            // from the table we'd write to, costs nothing.
            if effective_next_hop_in(shadow, d, tag, prefix) == Some(nh) {
                continue;
            }
            changes += 1;
            cost += shadow.rule_cost(entry, tag, prefix, nh)?;
        }
        Some((cost, changes))
    }
}

/// Which shadow entry a decision's rule lives in: middlebox returns
/// are always port-qualified; loop-marked decisions and decisions
/// whose arrival already has a qualified table for this tag must be
/// qualified too (an unqualified rule would be shadowed).
fn placement_in(sw: &ShadowSwitch, d: &Decision, loop_qualified: bool, tag: PolicyTag) -> Entry {
    match d.arrival {
        Arrival::FromMb(mb) => Entry::FromMb(mb),
        Arrival::FromSwitch(prev) => {
            if loop_qualified || sw.has_table(Entry::FromSwitch(prev), tag) {
                Entry::FromSwitch(prev)
            } else {
                Entry::Ingress
            }
        }
        Arrival::External => Entry::Ingress,
    }
}

/// What the switch currently does with this decision's traffic,
/// honoring the qualified-over-unqualified priority.
fn effective_next_hop_in(
    sw: &ShadowSwitch,
    d: &Decision,
    tag: PolicyTag,
    prefix: Ipv4Prefix,
) -> Option<NextHop> {
    match d.arrival {
        Arrival::FromMb(mb) => sw.next_hop(Entry::FromMb(mb), tag, prefix),
        Arrival::FromSwitch(prev) => sw
            .next_hop(Entry::FromSwitch(prev), tag, prefix)
            .or_else(|| sw.next_hop(Entry::Ingress, tag, prefix)),
        Arrival::External => sw.next_hop(Entry::Ingress, tag, prefix),
    }
}

/// Applies a segment plan to one switch cell at a time. Returns (new
/// rules, swap rules among them).
fn commit_segment(
    shadows: &ShadowCells,
    last_deltas: &mut Vec<(SwitchId, ShadowDelta)>,
    dir: Direction,
    prefix: Ipv4Prefix,
    plan: &SegmentPlan,
) -> (usize, usize) {
    let mut added = 0usize;
    let mut swaps = 0usize;
    for (i, d) in plan.decisions.iter().enumerate() {
        let is_last = i + 1 == plan.decisions.len();
        let (nh, is_swap) = match (is_last, plan.swap_to) {
            (true, Some(to)) => (d.want.swap_next_hop(to), true),
            _ => (d.want.next_hop(), false),
        };
        let mut cell = shadows.lock(d.sw);
        let shadow = cell.dir_mut(dir);
        if effective_next_hop_in(shadow, d, plan.tag, prefix) == Some(nh) {
            continue;
        }
        let entry = placement_in(shadow, d, plan.qualified.contains(&i), plan.tag);
        let deltas = shadow.install(entry, plan.tag, prefix, nh);
        if !deltas.is_empty() {
            cell.version = cell.version.wrapping_add(1);
        }
        for delta in deltas {
            match delta {
                ShadowDelta::SetDefault { .. } | ShadowDelta::AddPrefix { .. } => {
                    added += 1;
                    if is_swap {
                        swaps += 1;
                    }
                }
                ShadowDelta::RemovePrefix { .. } => {
                    added = added.saturating_sub(1);
                }
            }
            last_deltas.push((d.sw, delta));
        }
    }
    (added, swaps)
}

/// The online path installer: owns the shared per-switch cells and the
/// cross-switch residue, and is the only component that commits.
pub struct PathInstaller<'t> {
    /// Held for lifetime anchoring and future validation hooks; shadow
    /// sizing derives from it at construction.
    #[allow(dead_code)]
    topo: &'t Topology,
    scheme: AddressingScheme,
    policy: TagPolicy,
    shadows: Arc<ShadowCells>,
    residue: Arc<RwLock<Residue>>,
    /// Deltas of the last installation, for lowering to physical rules.
    last_deltas: Vec<(SwitchId, ShadowDelta)>,
    paths_installed: usize,
}

impl<'t> PathInstaller<'t> {
    /// Creates an installer over a topology.
    pub fn new(topo: &'t Topology, scheme: AddressingScheme, policy: TagPolicy) -> Self {
        PathInstaller {
            topo,
            scheme,
            policy,
            shadows: Arc::new(ShadowCells::new(topo.switch_count())),
            residue: Arc::new(RwLock::new(Residue {
                allocator: TagAllocator::new(policy.capacity),
                chain_index: FxHashMap::default(),
                claimed: FxHashMap::default(),
                prefix_map: None,
                version: 0,
            })),
            last_deltas: Vec::new(),
            paths_installed: 0,
        }
    }

    /// Overrides the per-station location prefixes with a
    /// topology-aligned assignment (index = station id).
    pub fn set_prefix_map(&mut self, prefixes: Vec<Ipv4Prefix>) {
        let mut residue = self.residue.write();
        residue.prefix_map = Some(prefixes);
        residue.version = residue.version.wrapping_add(1);
    }

    /// A snapshot of one direction's network shadow (rule counts etc.),
    /// assembled cell by cell. Reporting-path only — it clones every
    /// switch's tables.
    pub fn shadows(&self, dir: Direction) -> ShadowTables {
        let switches = self
            .shadows
            .cells
            .iter()
            .map(|cell| cell.lock().dir(dir).clone())
            .collect();
        ShadowTables::from_switches(switches)
    }

    /// The shared per-switch cells (live, lock-per-switch view).
    pub fn cells(&self) -> &Arc<ShadowCells> {
        &self.shadows
    }

    /// The addressing scheme in use.
    pub fn scheme(&self) -> &AddressingScheme {
        &self.scheme
    }

    /// Number of tags currently allocated.
    pub fn tags_in_use(&self) -> usize {
        self.residue.read().allocator.allocated()
    }

    /// Allocates a tag outside the policy-path machinery (base-station
    /// tunnels, §5.1). Returns `None` when the tag space is exhausted.
    pub fn allocate_raw_tag(&mut self) -> Option<PolicyTag> {
        let mut residue = self.residue.write();
        let tag = residue.allocator.allocate();
        if tag.is_some() {
            residue.version = residue.version.wrapping_add(1);
        }
        tag
    }

    /// Returns a raw tag to the pool (tunnel garbage collection).
    ///
    /// Raw tags are refcounted by their tunnel owners, so an unbalanced
    /// release here means a corrupted refcount upstream — freeing the
    /// tag anyway could hand a tag still carrying traffic to a new path.
    /// Debug builds assert; release builds saturate (the release is
    /// dropped) and bump [`TAG_RELEASE_UNDERFLOW`].
    pub fn release_raw_tag(&mut self, tag: PolicyTag) {
        let mut residue = self.residue.write();
        let released = residue.allocator.try_release(tag);
        if released {
            residue.version = residue.version.wrapping_add(1);
        } else {
            drop(residue);
            // literal (not [`TAG_RELEASE_UNDERFLOW`]) so the metrics
            // manifest extractor sees the registration
            Registry::global()
                .counter("softcell_controller_tag_release_underflow_total")
                .add(1);
            debug_assert!(released, "unbalanced raw release of {tag}");
        }
    }

    /// Number of paths installed so far.
    pub fn paths_installed(&self) -> usize {
        self.paths_installed
    }

    /// Shadow deltas produced by the most recent `install_path` call, as
    /// `(switch, delta)` pairs in application order.
    ///
    /// **Order dependence.** Application order matters *per switch*: a
    /// path's deltas at one switch may refine each other (a Type 2
    /// tag-only default followed by a Type 1 override, a child prefix
    /// merged into its parent), so replaying a switch's deltas out of
    /// order reconstructs a different table. Deltas for *different*
    /// switches are independent and may be applied in any interleaving —
    /// which is exactly the freedom `ops::batch_by_switch` exploits when
    /// the sharded controller ships per-switch, barrier-fenced batches
    /// (see `tests/drain_order.rs` for the regression lock).
    pub fn last_deltas(&self) -> &[(SwitchId, ShadowDelta)] {
        &self.last_deltas
    }

    /// A cloneable handle for planning outside the sequencer.
    pub fn planner_handle(&self) -> PlannerHandle {
        PlannerHandle {
            scheme: self.scheme,
            policy: self.policy,
            shadows: Arc::clone(&self.shadows),
            residue: Arc::clone(&self.residue),
        }
    }

    /// Whether an optimistic plan's recorded versions still match shared
    /// state — if so, committing it is byte-identical to re-planning
    /// now. Callers must hold the sequencer ticket across this check and
    /// the subsequent applies (nothing else commits concurrently).
    pub(crate) fn plan_is_current(&self, stamps: &PlanStamps) -> bool {
        if self.residue.read().version != stamps.residue {
            return false;
        }
        stamps
            .cells
            .iter()
            .all(|(&sw, &v)| self.shadows.lock(sw).version == v)
    }

    /// Installs a policy path in one direction. Returns the per-segment
    /// tags and rule accounting.
    pub fn install_path(&mut self, path: &PolicyPath, dir: Direction) -> Result<InstallReport> {
        self.install_path_inner(path, dir, None)
    }

    /// Installs the downlink of a path whose uplink already fixed the
    /// tag the return traffic carries (the Internet echoes the uplink
    /// exit tag into the downlink's entry tag).
    pub fn install_path_forced(
        &mut self,
        path: &PolicyPath,
        dir: Direction,
        entry_tag: PolicyTag,
    ) -> Result<InstallReport> {
        self.install_path_inner(path, dir, Some(entry_tag))
    }

    fn install_path_inner(
        &mut self,
        path: &PolicyPath,
        dir: Direction,
        forced_entry: Option<PolicyTag>,
    ) -> Result<InstallReport> {
        let plan = {
            let residue = self.residue.read();
            let planner = Planner {
                scheme: &self.scheme,
                policy: self.policy,
                shadows: &self.shadows,
                residue: &residue,
            };
            let mut ctx = PlanCtx::new(residue.version);
            planner.plan_path(&mut ctx, path, dir, forced_entry)?
        };
        Ok(self.apply_path_plan(&plan))
    }

    /// Commits a plan: replays its residue updates (fresh-tag claims and
    /// chain-slot pushes, in planning order) and writes its rules. The
    /// caller guarantees the plan is current — either it was just
    /// produced under the same exclusivity, or its stamps were
    /// validated. Infallible by construction: every feasibility question
    /// was answered at planning time.
    pub(crate) fn apply_path_plan(&mut self, plan: &PathPlan) -> InstallReport {
        self.last_deltas.clear();
        let mut new_rules = 0usize;
        let mut swap_rules = 0usize;
        {
            let mut residue = self.residue.write();
            // Planning order is back to front; the allocator pops and the
            // chain-slot pushes must replay in that order (slot order
            // feeds future candidate sampling).
            for sp in plan.plans.iter().rev() {
                if !sp.reused {
                    let got = residue.allocator.allocate();
                    debug_assert_eq!(
                        got,
                        Some(sp.tag),
                        "allocator drifted from its planned preview"
                    );
                    let _ = got;
                }
                let slot = residue.chain_index.entry(sp.chain_key).or_default();
                if !slot.contains(&sp.tag) {
                    slot.push(sp.tag);
                    if slot.len() > 4 {
                        slot.remove(0);
                    }
                }
            }
            for sp in &plan.plans {
                let (added, swaps) = commit_segment(
                    &self.shadows,
                    &mut self.last_deltas,
                    plan.dir,
                    plan.prefix,
                    sp,
                );
                new_rules += added;
                swap_rules += swaps;
                residue
                    .claimed
                    .entry(plan.origin)
                    .or_default()
                    .insert(sp.tag);
            }
            residue.version = residue.version.wrapping_add(1);
        }
        self.paths_installed += 1;
        InstallReport {
            segment_tags: plan.segment_tags.clone(),
            new_rules,
            swap_rules,
            reused_segments: plan.reused_segments,
        }
    }
}

/// A planned segment: decisions plus the chosen tag.
#[derive(Clone, Debug)]
struct SegmentPlan {
    tag: PolicyTag,
    reused: bool,
    /// The chain-index slot this segment's tag was recorded under (the
    /// commit replays the push).
    chain_key: (Direction, u64),
    decisions: Vec<Decision>,
    qualified: HashSet<usize>,
    /// If set, the segment's last decision swaps to this tag (it is the
    /// junction rule joining the next segment).
    swap_to: Option<PolicyTag>,
}

/// A maximal run of decisions served by a single tag.
#[derive(Clone, Debug)]
struct Segment {
    decisions: Vec<Decision>,
    /// Indices of decisions that must be input-port qualified (the
    /// switch is entered from different links with different next hops
    /// within this path).
    qualified: HashSet<usize>,
}

impl Segment {
    /// A shape key for the chain index: hashes the middlebox traversals
    /// and the gateway-side switch — paths of the same shape from
    /// different stations are prime tag-sharing candidates. The
    /// station-side end is deliberately excluded (it differs per origin;
    /// including it would defeat cross-station sharing).
    fn chain_key(&self, dir: Direction) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        for d in &self.decisions {
            if let Want::ToMb(mb) = d.want {
                (0u8, mb.0).hash(&mut h);
            }
        }
        let gateway_side = match dir {
            Direction::Uplink => self.decisions.last(),
            Direction::Downlink => self.decisions.first(),
        };
        if let Some(d) = gateway_side {
            (1u8, d.sw.0).hash(&mut h);
        }
        h.finish()
    }
}

/// Expands a policy path into its per-switch forwarding decisions for one
/// direction. The first decision of the traversal (made by the access
/// switch's microflow rule on the uplink) and the final delivery (the
/// access switch's downlink microflow rule) are *not* fabric decisions
/// and are omitted.
fn build_decisions(path: &PolicyPath, dir: Direction) -> Vec<Decision> {
    // Direction-ordered hop list; middlebox chains on one switch reverse
    // with the direction.
    let hops: Vec<(SwitchId, Option<MiddleboxId>)> = match dir {
        Direction::Uplink => path.hops.iter().map(|h| (h.switch, h.mb_after)).collect(),
        Direction::Downlink => path
            .hops
            .iter()
            .rev()
            .map(|h| (h.switch, h.mb_after))
            .collect(),
    };

    let mut decisions = Vec::with_capacity(hops.len() + 4);
    let mut arrival = Arrival::External;
    let last_idx = hops.len() - 1;
    for (i, &(sw, mb)) in hops.iter().enumerate() {
        if let Some(mb) = mb {
            decisions.push(Decision {
                sw,
                arrival,
                want: Want::ToMb(mb),
            });
            arrival = Arrival::FromMb(mb);
        }
        if i < last_idx {
            let next = hops[i + 1].0;
            if next != sw {
                decisions.push(Decision {
                    sw,
                    arrival,
                    want: Want::ToSwitch(next),
                });
                arrival = Arrival::FromSwitch(sw);
            }
            // same switch twice in a row = chained middleboxes; the next
            // iteration's ToMb uses the FromMb arrival directly
        } else {
            // Last hop: uplink exits to the Internet; downlink delivery
            // at the access switch is the microflow rule's job.
            if dir == Direction::Uplink {
                decisions.push(Decision {
                    sw,
                    arrival,
                    want: Want::Exit,
                });
            }
        }
    }

    // The very first fabric decision on the uplink is made by the access
    // switch's microflow action (out-port towards the next hop or into a
    // local middlebox); drop it unless it is also the exit (single-switch
    // paths don't occur, but stay defensive).
    if dir == Direction::Uplink && decisions.len() > 1 {
        decisions.remove(0);
        // re-base the arrival of what is now the first decision: it still
        // arrives from the access switch's link
    }
    decisions
}

/// Splits decisions into tag segments and marks input-port-qualified
/// decisions.
///
/// * Same `(switch, arrival)` with the same next hop → duplicate rule,
///   dropped.
/// * Same switch, different arrivals, different next hops → both rules
///   become input-port qualified (no new tag needed).
/// * Same `(switch, arrival)` with different next hops → same-link loop
///   (§3.2): the path is split and the remainder uses a fresh tag. The
///   swap rule is placed as *late* as possible — on the last
///   uniquely-keyed decision before the re-entry — so that for paths
///   sharing a suffix (one clause, many stations) the junction falls in
///   the shared portion and the swap rule aggregates across stations.
fn split_segments(decisions: &[Decision]) -> Vec<Segment> {
    // (FxHashMap keeps this hot path off SipHash)
    let mut segments = Vec::new();
    let mut start = 0usize;

    while start < decisions.len() {
        let mut seen: FxHashMap<(SwitchId, Arrival), (usize, Want)> = FxHashMap::default();
        // (decision, original offset, shared-with-a-duplicate)
        let mut local: Vec<(Decision, usize, bool)> = Vec::new();
        let mut split: Option<usize> = None; // local index to swap at

        for (off, d) in decisions[start..].iter().enumerate() {
            match seen.entry((d.sw, d.arrival)) {
                MapEntry::Occupied(e) => {
                    let &(first_local_idx, want) = e.get();
                    if want == d.want {
                        // identical rule; mark the original as shared (a
                        // swap there would alter this pass too) and skip
                        local[first_local_idx].2 = true;
                        continue;
                    }
                    // Same-link loop. Swap as late as possible: the last
                    // decision whose rule serves exactly one pass.
                    let k = local
                        .iter()
                        .rposition(|(_, _, shared)| !shared)
                        .unwrap_or(first_local_idx);
                    split = Some(k);
                    break;
                }
                MapEntry::Vacant(e) => {
                    e.insert((local.len(), d.want));
                    local.push((*d, start + off, false));
                }
            }
        }

        match split {
            None => {
                let seg: Vec<Decision> = local.iter().map(|(d, _, _)| *d).collect();
                let mut by_sw: FxHashMap<SwitchId, Vec<usize>> = FxHashMap::default();
                for (i, d) in seg.iter().enumerate() {
                    by_sw.entry(d.sw).or_default().push(i);
                }
                let qualified = mark_qualified(&seg, &by_sw);
                segments.push(Segment {
                    decisions: seg,
                    qualified,
                });
                break;
            }
            Some(k) => {
                let resume = local[k].1 + 1;
                let seg: Vec<Decision> = local[..=k].iter().map(|(d, _, _)| *d).collect();
                let mut by_sw: FxHashMap<SwitchId, Vec<usize>> = FxHashMap::default();
                for (i, d) in seg.iter().enumerate() {
                    by_sw.entry(d.sw).or_default().push(i);
                }
                let qualified = mark_qualified(&seg, &by_sw);
                segments.push(Segment {
                    decisions: seg,
                    qualified,
                });
                debug_assert!(resume > start, "split must make progress");
                start = resume;
            }
        }
    }

    if segments.is_empty() {
        segments.push(Segment {
            decisions: Vec::new(),
            qualified: HashSet::new(),
        });
    }
    segments
}

/// Marks decisions needing input-port qualification: switches entered
/// from different links with differing next hops.
fn mark_qualified(
    decisions: &[Decision],
    by_switch: &FxHashMap<SwitchId, Vec<usize>>,
) -> HashSet<usize> {
    let mut qualified = HashSet::new();
    for idxs in by_switch.values() {
        if idxs.len() < 2 {
            continue;
        }
        // consider only fabric arrivals (mb arrivals are inherently
        // qualified by their own entry)
        let fabric: Vec<usize> = idxs
            .iter()
            .copied()
            .filter(|&i| {
                matches!(
                    decisions[i].arrival,
                    Arrival::FromSwitch(_) | Arrival::External
                )
            })
            .collect();
        if fabric.len() < 2 {
            continue;
        }
        let wants: HashSet<_> = fabric
            .iter()
            .map(|&i| match decisions[i].want {
                Want::ToSwitch(s) => (0u8, s.0),
                Want::ToMb(m) => (1u8, m.0),
                Want::Exit => (2u8, 0),
            })
            .collect();
        if wants.len() > 1 {
            for &i in &fabric {
                // External arrivals cannot be port-qualified; they keep
                // the unqualified slot while the link arrivals move out
                // of its way.
                if matches!(decisions[i].arrival, Arrival::FromSwitch(_)) {
                    qualified.insert(i);
                }
            }
        }
    }
    qualified
}

#[cfg(test)]
mod tests {
    use super::*;
    use softcell_topology::{small_topology, ShortestPaths};
    use softcell_types::MiddleboxKind;

    fn installer(topo: &Topology) -> PathInstaller<'_> {
        PathInstaller::new(
            topo,
            AddressingScheme::default_scheme(),
            TagPolicy::default(),
        )
    }

    fn route(topo: &Topology, bs: u32, kinds: &[MiddleboxKind]) -> PolicyPath {
        let mut sp = ShortestPaths::new(topo);
        let mbs: Vec<MiddleboxId> = kinds.iter().map(|k| topo.instances_of(*k)[0]).collect();
        sp.route_policy_path(BaseStationId(bs), &mbs, topo.default_gateway().switch)
            .unwrap()
    }

    #[test]
    fn first_path_lays_type2_defaults() {
        let topo = small_topology();
        let mut ins = installer(&topo);
        let path = route(&topo, 0, &[MiddleboxKind::Firewall]);
        let rep = ins.install_path(&path, Direction::Downlink).unwrap();
        assert_eq!(rep.segment_tags.len(), 1);
        assert_eq!(rep.swap_rules, 0);
        assert!(rep.new_rules >= 3, "gateway + firewall host (2 legs) + agg");
        // all rules are Type 2 defaults: occupancy check
        let mut t1 = 0;
        let shadows = ins.shadows(Direction::Downlink);
        for sw in 0..topo.switch_count() {
            let (p1, _) = shadows.switch(SwitchId(sw as u32)).occupancy();
            t1 += p1;
        }
        assert_eq!(t1, 0, "single path needs no Type 1 overrides");
    }

    #[test]
    fn same_chain_other_station_reuses_tag_cheaply() {
        let topo = small_topology();
        let mut ins = installer(&topo);
        let p0 = route(&topo, 0, &[MiddleboxKind::Firewall]);
        let p1 = route(&topo, 1, &[MiddleboxKind::Firewall]);
        let r0 = ins.install_path(&p0, Direction::Downlink).unwrap();
        let r1 = ins.install_path(&p1, Direction::Downlink).unwrap();
        assert_eq!(r0.entry_tag(), r1.entry_tag(), "chain index shares the tag");
        assert!(
            r1.new_rules < r0.new_rules,
            "second station rides the shared suffix: {} vs {}",
            r1.new_rules,
            r0.new_rules
        );
    }

    #[test]
    fn divergent_paths_from_same_station_use_distinct_tags() {
        let topo = small_topology();
        let mut ins = installer(&topo);
        let pa = route(&topo, 0, &[MiddleboxKind::Firewall]);
        let pb = route(&topo, 0, &[MiddleboxKind::Transcoder]);
        let ra = ins.install_path(&pa, Direction::Downlink).unwrap();
        let rb = ins.install_path(&pb, Direction::Downlink).unwrap();
        assert_ne!(
            ra.entry_tag(),
            rb.entry_tag(),
            "same-origin divergent paths must be distinguishable"
        );
    }

    #[test]
    fn install_is_idempotent_in_rules() {
        let topo = small_topology();
        let mut ins = installer(&topo);
        let path = route(&topo, 0, &[MiddleboxKind::Firewall]);
        ins.install_path(&path, Direction::Downlink).unwrap();
        let before: usize = ins.shadows(Direction::Downlink).rule_counts().iter().sum();
        let rep = ins.install_path(&path, Direction::Downlink).unwrap();
        let after: usize = ins.shadows(Direction::Downlink).rule_counts().iter().sum();
        assert_eq!(rep.new_rules, 0, "re-install finds everything in place");
        assert_eq!(before, after);
    }

    #[test]
    fn uplink_and_downlink_coexist() {
        let topo = small_topology();
        let mut ins = installer(&topo);
        let path = route(&topo, 0, &[MiddleboxKind::Firewall]);
        let up = ins.install_path(&path, Direction::Uplink).unwrap();
        let down = ins
            .install_path_forced(&path, Direction::Downlink, up.exit_tag())
            .unwrap();
        assert_eq!(down.entry_tag(), up.exit_tag());
    }

    #[test]
    fn chained_same_switch_middleboxes() {
        // firewall then transcoder: hosted on c1 and c2 in the small
        // topology — route through both and verify decisions resolve.
        let topo = small_topology();
        let mut ins = installer(&topo);
        let path = route(
            &topo,
            2,
            &[MiddleboxKind::Firewall, MiddleboxKind::Transcoder],
        );
        let rep = ins.install_path(&path, Direction::Downlink).unwrap();
        assert!(rep.new_rules > 0);
    }

    #[test]
    fn decision_list_uplink_shape() {
        let topo = small_topology();
        let path = route(&topo, 0, &[MiddleboxKind::Firewall]);
        // acc5 -> agg3 -> c1(fw) -> gw0  (firewall on c1)
        let d = build_decisions(&path, Direction::Uplink);
        // first fabric decision at agg3 (access hop handled by microflow)
        assert_eq!(d[0].sw, path.hops[1].switch);
        // exit decision at the gateway
        assert_eq!(d.last().unwrap().want, Want::Exit);
        // middlebox round-trip appears as ToMb + FromMb-arrival pair
        assert!(d.iter().any(|x| matches!(x.want, Want::ToMb(_))));
        assert!(d.iter().any(|x| matches!(x.arrival, Arrival::FromMb(_))));
    }

    #[test]
    fn decision_list_downlink_shape() {
        let topo = small_topology();
        let path = route(&topo, 0, &[MiddleboxKind::Firewall]);
        let d = build_decisions(&path, Direction::Downlink);
        // first decision at the gateway, arriving from the Internet
        assert_eq!(d[0].sw, path.gateway_switch());
        assert_eq!(d[0].arrival, Arrival::External);
        // no Exit want on the downlink (delivery is the microflow's job)
        assert!(d.iter().all(|x| x.want != Want::Exit));
        // last decision forwards to the access switch
        assert_eq!(d.last().unwrap().want, Want::ToSwitch(path.access_switch()));
    }

    #[test]
    fn split_detects_same_link_loop() {
        // Synthetic decision list revisiting (sw7, from sw3) with two
        // different wants → must split into two segments.
        let d = |sw: u32, from: u32, to: u32| Decision {
            sw: SwitchId(sw),
            arrival: Arrival::FromSwitch(SwitchId(from)),
            want: Want::ToSwitch(SwitchId(to)),
        };
        let decisions = vec![
            d(7, 3, 8), // junction, first pass: to 8
            d(8, 7, 7), // loop body
            d(7, 3, 9), // junction, same arrival, now to 9 → conflict
            d(9, 7, 1),
        ];
        let segs = split_segments(&decisions);
        assert_eq!(segs.len(), 2, "same-link loop splits the path");
        // the swap lands as late as possible: on the loop-body decision
        // just before the conflicting re-entry
        assert_eq!(segs[0].decisions.last().unwrap().sw, SwitchId(8));
        // the conflicting re-entry opens segment 2
        assert_eq!(segs[1].decisions[0].sw, SwitchId(7));
        assert_eq!(segs[1].decisions[0].want, Want::ToSwitch(SwitchId(9)));
    }

    #[test]
    fn split_swap_avoids_shared_decisions() {
        // the decision right before the re-entry is shared by both
        // passes (deduped); the swap must land on an earlier, unique one
        let d = |sw: u32, from: u32, to: u32| Decision {
            sw: SwitchId(sw),
            arrival: Arrival::FromSwitch(SwitchId(from)),
            want: Want::ToSwitch(SwitchId(to)),
        };
        let decisions = vec![
            d(5, 1, 7), // unique: feeds the junction
            d(7, 5, 8), // junction, first pass
            d(8, 7, 5), // back towards 5 via sw8
            d(5, 8, 7), // re-feed (unique: different arrival)
            d(7, 5, 9), // junction, same arrival (from 5), conflict
        ];
        let segs = split_segments(&decisions);
        assert_eq!(segs.len(), 2);
        // swap on d(5,8,7) — the last unique decision before re-entry
        let last = segs[0].decisions.last().unwrap();
        assert_eq!(last.sw, SwitchId(5));
        assert_eq!(last.arrival, Arrival::FromSwitch(SwitchId(8)));
    }

    #[test]
    fn split_uses_ports_for_different_link_loops() {
        let decisions = vec![
            Decision {
                sw: SwitchId(7),
                arrival: Arrival::FromSwitch(SwitchId(3)),
                want: Want::ToSwitch(SwitchId(8)),
            },
            Decision {
                sw: SwitchId(8),
                arrival: Arrival::FromSwitch(SwitchId(7)),
                want: Want::ToSwitch(SwitchId(7)),
            },
            Decision {
                sw: SwitchId(7),
                arrival: Arrival::FromSwitch(SwitchId(8)),
                want: Want::ToSwitch(SwitchId(9)),
            },
        ];
        let segs = split_segments(&decisions);
        assert_eq!(segs.len(), 1, "different links need no tag swap");
        assert_eq!(
            segs[0].qualified.len(),
            2,
            "both visits to sw7 become port-qualified"
        );
    }

    #[test]
    fn tag_exhaustion_is_a_clean_error() {
        // a 1-tag space with divergent same-station paths: the second
        // path cannot share (claimed, different chain) and cannot
        // allocate — it must fail with Exhausted, not corrupt state
        let topo = small_topology();
        let mut ins = PathInstaller::new(
            &topo,
            AddressingScheme::default_scheme(),
            TagPolicy {
                capacity: 1,
                ..TagPolicy::default()
            },
        );
        let pa = route(&topo, 0, &[MiddleboxKind::Firewall]);
        let pb = route(&topo, 0, &[MiddleboxKind::Transcoder]);
        ins.install_path(&pa, Direction::Downlink).unwrap();
        let err = ins.install_path(&pb, Direction::Downlink).unwrap_err();
        assert!(matches!(err, softcell_types::Error::Exhausted(_)), "{err}");
        // the first path's state is intact
        let total: usize = ins.shadows(Direction::Downlink).rule_counts().iter().sum();
        assert!(total > 0);
    }

    #[test]
    fn same_clause_reinstall_after_failure_still_works() {
        let topo = small_topology();
        let mut ins = PathInstaller::new(
            &topo,
            AddressingScheme::default_scheme(),
            TagPolicy {
                capacity: 1,
                ..TagPolicy::default()
            },
        );
        let pa = route(&topo, 0, &[MiddleboxKind::Firewall]);
        let pb = route(&topo, 0, &[MiddleboxKind::Transcoder]);
        ins.install_path(&pa, Direction::Downlink).unwrap();
        let _ = ins.install_path(&pb, Direction::Downlink).unwrap_err();
        // the surviving tag still serves its own path idempotently
        let rep = ins.install_path(&pa, Direction::Downlink).unwrap();
        assert_eq!(rep.new_rules, 0);
    }

    #[test]
    fn rule_counts_stay_small_across_many_stations() {
        // All four stations install the same two chains; the per-switch
        // table must stay far below the path count.
        let topo = small_topology();
        let mut ins = installer(&topo);
        let chains: [&[MiddleboxKind]; 2] = [
            &[MiddleboxKind::Firewall],
            &[MiddleboxKind::Firewall, MiddleboxKind::Transcoder],
        ];
        for bs in 0..4 {
            for chain in chains {
                let path = route(&topo, bs, chain);
                ins.install_path(&path, Direction::Downlink).unwrap();
            }
        }
        let max = ins
            .shadows(Direction::Downlink)
            .rule_counts()
            .into_iter()
            .max()
            .unwrap();
        assert!(
            max <= 8,
            "8 paths should aggregate to <= 8 rules per switch, got {max}"
        );
    }

    /// A canonical rendering of one installer's complete Algorithm-1
    /// state (both directions' tables including tag order, plus the tag
    /// count). FxHashMap iteration order is a deterministic function of
    /// insertion history, so equal strings mean the two installers are
    /// byte-equivalent for every future planning decision.
    fn fingerprint(ins: &PathInstaller<'_>) -> String {
        format!(
            "up={:?} down={:?} tags={}",
            ins.shadows(Direction::Uplink),
            ins.shadows(Direction::Downlink),
            ins.tags_in_use(),
        )
    }

    #[test]
    fn optimistic_pair_plan_commits_identically_to_sequential() {
        // The fast tier: plan a bidirectional pair outside any lock,
        // apply it — state and reports must be byte-identical to the
        // sequential install_path + install_path_forced reference.
        let topo = small_topology();
        let mut seq = installer(&topo);
        let mut opt = installer(&topo);

        // warm both with a shared-suffix path so candidate sampling,
        // claimed sets and the chain index are non-trivial
        let warm = route(&topo, 1, &[MiddleboxKind::Firewall]);
        for ins in [&mut seq, &mut opt] {
            let up = ins.install_path(&warm, Direction::Uplink).unwrap();
            ins.install_path_forced(&warm, Direction::Downlink, up.exit_tag())
                .unwrap();
        }

        let path = route(&topo, 0, &[MiddleboxKind::Firewall]);
        let up_s = seq.install_path(&path, Direction::Uplink).unwrap();
        let down_s = seq
            .install_path_forced(&path, Direction::Downlink, up_s.exit_tag())
            .unwrap();

        let plan = opt
            .planner_handle()
            .plan_policy_path(path.clone(), true)
            .unwrap();
        assert!(opt.plan_is_current(&plan.stamps), "nothing moved");
        let up_o = opt.apply_path_plan(plan.uplink.as_ref().unwrap());
        let down_o = opt.apply_path_plan(&plan.downlink);

        assert_eq!(up_s, up_o);
        assert_eq!(down_s, down_o);
        assert_eq!(fingerprint(&seq), fingerprint(&opt));
    }

    #[test]
    fn stale_plans_fail_validation() {
        let topo = small_topology();
        let mut ins = installer(&topo);
        let pa = route(&topo, 0, &[MiddleboxKind::Firewall]);
        let pb = route(&topo, 1, &[MiddleboxKind::Firewall]);

        let plan = ins.planner_handle().plan_policy_path(pa, true).unwrap();
        assert!(ins.plan_is_current(&plan.stamps));

        // a conflicting commit (shares the chain suffix) bumps versions
        ins.install_path(&pb, Direction::Uplink).unwrap();
        assert!(
            !ins.plan_is_current(&plan.stamps),
            "conflicting install must invalidate the plan"
        );
    }

    #[test]
    fn raw_tag_release_is_guarded() {
        let topo = small_topology();
        let mut ins = installer(&topo);
        let t = ins.allocate_raw_tag().unwrap();
        ins.release_raw_tag(t);
        assert_eq!(ins.tags_in_use(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "unbalanced raw release")]
    fn raw_tag_double_release_panics_in_debug() {
        // Release builds saturate instead (allocator untouched) and bump
        // TAG_RELEASE_UNDERFLOW — `TagAllocator::try_release` unit tests
        // cover the saturation semantics.
        let topo = small_topology();
        let mut ins = installer(&topo);
        let t = ins.allocate_raw_tag().unwrap();
        ins.release_raw_tag(t);
        ins.release_raw_tag(t);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Random (station, chain) install requests; station ids stay in
        /// the small topology's 0..4 range.
        fn arb_requests() -> impl Strategy<Value = Vec<(u32, u8)>> {
            proptest::collection::vec((0u32..4, 0u8..3), 1..24)
        }

        fn chain_of(k: u8) -> &'static [MiddleboxKind] {
            match k {
                0 => &[MiddleboxKind::Firewall],
                1 => &[MiddleboxKind::Transcoder],
                _ => &[MiddleboxKind::Firewall, MiddleboxKind::Transcoder],
            }
        }

        proptest! {
            /// Failed installs are fully transactional: state after a
            /// mixed success/failure sequence is byte-identical to a
            /// from-scratch replay of only the successful installs —
            /// planning buffers everything, so an abort leaks neither
            /// tags nor chain-index entries nor partial rules.
            #[test]
            fn failed_installs_leave_no_trace(requests in arb_requests()) {
                let topo = small_topology();
                // a tiny tag space makes exhaustion failures common
                let tight = TagPolicy { capacity: 3, ..TagPolicy::default() };
                let mut live = PathInstaller::new(
                    &topo, AddressingScheme::default_scheme(), tight);
                let mut succeeded: Vec<(PolicyPath, Direction)> = Vec::new();
                for (bs, kind) in requests {
                    let path = route(&topo, bs, chain_of(kind));
                    if live.install_path(&path, Direction::Downlink).is_ok() {
                        succeeded.push((path, Direction::Downlink));
                    }
                }
                let mut scratch = PathInstaller::new(
                    &topo, AddressingScheme::default_scheme(), tight);
                for (path, dir) in &succeeded {
                    scratch.install_path(path, *dir).expect("replay of a success");
                }
                prop_assert_eq!(fingerprint(&live), fingerprint(&scratch));
            }

            /// The pure pair planner agrees with the sequential engine
            /// from any reachable warm state, not just the cold one.
            #[test]
            fn pair_plans_match_sequential_from_any_state(
                warm in arb_requests(), bs in 0u32..4, kind in 0u8..3,
            ) {
                let topo = small_topology();
                let mut seq = installer(&topo);
                let mut opt = installer(&topo);
                for (wbs, wkind) in warm {
                    let path = route(&topo, wbs, chain_of(wkind));
                    for ins in [&mut seq, &mut opt] {
                        if let Ok(up) = ins.install_path(&path, Direction::Uplink) {
                            let _ = ins.install_path_forced(
                                &path, Direction::Downlink, up.exit_tag());
                        }
                    }
                }
                let path = route(&topo, bs, chain_of(kind));
                let planned = opt.planner_handle().plan_policy_path(path.clone(), true);
                let up_s = seq.install_path(&path, Direction::Uplink);
                match (planned, up_s) {
                    (Ok(plan), Ok(up_s)) => {
                        let down_s = seq
                            .install_path_forced(&path, Direction::Downlink, up_s.exit_tag())
                            .expect("sequential downlink");
                        prop_assert!(opt.plan_is_current(&plan.stamps));
                        let up_o = opt.apply_path_plan(plan.uplink.as_ref().expect("pair"));
                        let down_o = opt.apply_path_plan(&plan.downlink);
                        prop_assert_eq!(up_s, up_o);
                        prop_assert_eq!(down_s, down_o);
                    }
                    (Err(_), Err(_)) => {} // both refuse identically
                    (p, s) => prop_assert!(
                        false, "planner/sequential disagree: {:?} vs {:?}",
                        p.map(|_| ()), s.map(|_| ())
                    ),
                }
                prop_assert_eq!(fingerprint(&seq), fingerprint(&opt));
            }
        }
    }
}
