//! The sharded controller core: UE-partitioned workers over a shared
//! path-installation engine, with batched flow-mod emission.
//!
//! SoftCell's control load divides cleanly by subscriber: attaches,
//! microflow decisions and detaches touch only one UE's state, so the
//! controller partitions its UE records across N worker shards keyed by
//! `fxhash(imsi) mod N` ([`softcell_types::shard_of_ue`]). Station-scoped
//! state — the local UE-id allocator and per-station attachment set a
//! real deployment keeps at the base station's local agent — shards by
//! `fxhash(bs) mod N` instead; an operation spanning both domains (an
//! attach allocating a UE id, a handoff between stations owned by two
//! different shards) crosses the boundary through an explicit
//! **rendezvous** message served by the owning shard.
//!
//! # What stays shared, and why the result is deterministic
//!
//! Path installation (Algorithm 1) is order-dependent: the tag an
//! installer picks for the k-th path depends on every path installed
//! before it. Running one installer per shard would therefore produce
//! *structurally different* fabric tables depending on the shard count —
//! correct, but impossible to verify cheaply. Instead the shards share
//! one **engine** (a [`CentralController`]) guarded by a ticket
//! sequencer: every state-mutating ("coordinated") event is assigned a
//! global sequence number *in trace order* by a cheap sequential
//! pre-pass, and a shard may only enter the engine when the global
//! ticket counter reaches its event's number. Engine outputs are drained
//! per ticket into barrier-delimited per-switch batches
//! ([`crate::ops::SwitchBatch`]) stamped with the ticket number, so
//! merging all shards' batch streams by ticket reproduces exactly the
//! rule-op sequence a single-threaded controller emits — byte-identical,
//! rule ids included. The differential oracle test
//! (`tests/shard_oracle.rs`) checks precisely this.
//!
//! Everything else — classification against precompiled per-subscriber
//! classifiers, flow-slot allocation, microflow rule synthesis for
//! cache-hit flows (the vast majority, Table 2) — runs fully parallel on
//! the owning shard with no locks taken.
//!
//! Coordinated events are rare by design: attach, detach, handoff, and
//! only the *first* flow demanding a (clause, station) policy path; all
//! later flows of that pair read the published tags from a read-mostly
//! map, exactly mirroring the local agents' tag caches (§4.2).
//!
//! # Liveness
//!
//! Every blocking wait (ticket turn, unpublished tags, rendezvous reply)
//! services this shard's own rendezvous queue while spinning, so the
//! shard that owns a station can always answer even when it is itself
//! blocked. Deadlock freedom follows by induction over the trace order:
//! the earliest globally-unprocessed event is always at the head of its
//! shard's queue, and everything *it* can wait on (a smaller ticket, a
//! tag demanded by an earlier event, a rendezvous served by a spinning
//! peer) has already happened or is answerable immediately.

use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use softcell_dataplane::MicroflowAction;
use softcell_packet::{FiveTuple, Protocol};
use softcell_policy::clause::{AccessControl, ClauseId};
use softcell_policy::{ServicePolicy, SubscriberAttributes, UeClassifier};
use softcell_telemetry::{Counter, Histogram, Registry, Stopwatch};
use softcell_topology::{ShortestPaths, Topology};
use softcell_types::{
    shard_of_station, shard_of_ue, BaseStationId, Error, LocIp, MiddleboxKind, RangePool, Result,
    ShardRange, SimDuration, SimTime, SwitchId, UeId, UeImsi,
};

use crate::core::{
    select_nearest_instances, AttachGrant, CentralController, CommitTier, ControllerConfig,
    InstanceSelection, PathTags,
};
use crate::install::{PlannerHandle, PolicyPathPlan};
use crate::mobility::FlowRecord;
use crate::ops::{OpJournal, SwitchBatch};
use crate::state::UeRecord;

/// Block size of the per-shard permanent-address ranges.
const PERM_BLOCK: u32 = 64;

/// Idle deadline given to flow microflow entries — mirrors
/// [`crate::agent::LocalAgent::microflow_idle`]'s default.
const MICROFLOW_IDLE: SimDuration = SimDuration::from_secs(30);

/// One input event, the sharded controller's unit of work. Mirrors the
/// workload generator's trace events, with the flow endpoints made
/// explicit so the caller fully determines each flow's five-tuple
/// (except the source address, which is the UE's permanent IP).
#[derive(Clone, Copy, Debug)]
pub struct ShardEvent {
    /// When the event happens.
    pub time: SimTime,
    /// The subscriber.
    pub imsi: UeImsi,
    /// What happened.
    pub kind: ShardEventKind,
}

/// The event body.
#[derive(Clone, Copy, Debug)]
pub enum ShardEventKind {
    /// UE attaches at a station.
    Attach {
        /// The station.
        bs: BaseStationId,
    },
    /// UE opens a new uplink flow (the packet-in path).
    NewFlow {
        /// Station the UE is at.
        bs: BaseStationId,
        /// Remote endpoint.
        dst: Ipv4Addr,
        /// UE-side source port.
        src_port: u16,
        /// Destination port (drives classification).
        dst_port: u16,
        /// UDP instead of TCP.
        udp: bool,
    },
    /// UE moves between stations.
    Handoff {
        /// Station it leaves.
        from: BaseStationId,
        /// Station it enters.
        to: BaseStationId,
    },
    /// UE detaches.
    Detach {
        /// Station it leaves.
        bs: BaseStationId,
    },
}

/// What processing one event produced — everything a materializer needs
/// to replay the run onto a data plane.
#[derive(Clone, Debug)]
pub enum EventOutcome {
    /// Attach succeeded.
    Attached {
        /// The controller record.
        record: UeRecord,
    },
    /// A flow was classified and its microflow rules synthesized.
    Flow(FlowDecision),
    /// A handoff completed.
    HandedOff(HandoffOutcome),
    /// Detach succeeded.
    Detached {
        /// The record as it was before detaching.
        record: UeRecord,
    },
    /// The event could not be processed (inconsistent trace, exhaustion);
    /// the reason is kept for diagnostics.
    Skipped {
        /// Why.
        reason: String,
    },
}

/// Microflow rules for one new flow at its access switch.
#[derive(Clone, Debug)]
pub struct FlowDecision {
    /// Station the flow entered at.
    pub bs: BaseStationId,
    /// The access switch the entries belong to.
    pub access: SwitchId,
    /// Clause that matched.
    pub clause: ClauseId,
    /// Policy denied the flow (the single entry is a drop).
    pub denied: bool,
    /// Whether the policy path was already published (the agent
    /// tag-cache-hit equivalent).
    pub cache_hit: bool,
    /// Entries to install, with [`MICROFLOW_IDLE`] from `time`.
    pub installs: Vec<(FiveTuple, MicroflowAction)>,
    /// Event time (deadline base).
    pub time: SimTime,
}

/// Microflow surgery of one handoff.
#[derive(Clone, Debug)]
pub struct HandoffOutcome {
    /// The vacated station's access switch.
    pub old_access: SwitchId,
    /// The new station's access switch.
    pub new_access: SwitchId,
    /// Entries to remove at the old access switch.
    pub removals: Vec<FiveTuple>,
    /// Entries to install at the new access switch (300 s deadline from
    /// `time`, as the simulator applies handoff copies).
    pub installs: Vec<(FiveTuple, MicroflowAction)>,
    /// Event time.
    pub time: SimTime,
}

/// Run counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardedStats {
    /// Events processed.
    pub events: u64,
    /// Successful attaches.
    pub attaches: u64,
    /// Successful detaches.
    pub detaches: u64,
    /// Successful handoffs.
    pub handoffs: u64,
    /// Handoffs whose two stations hash to different shards.
    pub cross_shard_handoffs: u64,
    /// Rendezvous messages that actually crossed a shard boundary.
    pub rendezvous_messages: u64,
    /// Flows processed.
    pub flows: u64,
    /// Flows served from published tags (no engine entry) or from the
    /// engine's own path cache (a ticketed demand that found the path
    /// already installed).
    pub cache_hits: u64,
    /// Flows that installed the policy path (coordinated).
    pub cache_misses: u64,
    /// Ticketed flow demands — the first flow per (UE, station, clause)
    /// in the pre-pass, whether or not the path turned out to be
    /// installed already. `coordinated == attaches + detaches +
    /// handoffs + flow_demands` on clean runs.
    pub flow_demands: u64,
    /// Ticketed demands committed from a validated optimistic plan (the
    /// fast tier).
    pub commit_fast: u64,
    /// Ticketed demands whose optimistic plan went stale and were
    /// re-planned under the ticket (the fallback tier).
    pub commit_replanned: u64,
    /// Flows denied by policy.
    pub denied: u64,
    /// Events skipped.
    pub skipped: u64,
    /// Events that entered the engine.
    pub coordinated: u64,
}

impl ShardedStats {
    fn merge(&mut self, o: &ShardedStats) {
        self.events += o.events;
        self.attaches += o.attaches;
        self.detaches += o.detaches;
        self.handoffs += o.handoffs;
        self.cross_shard_handoffs += o.cross_shard_handoffs;
        self.rendezvous_messages += o.rendezvous_messages;
        self.flows += o.flows;
        self.cache_hits += o.cache_hits;
        self.cache_misses += o.cache_misses;
        self.flow_demands += o.flow_demands;
        self.commit_fast += o.commit_fast;
        self.commit_replanned += o.commit_replanned;
        self.denied += o.denied;
        self.skipped += o.skipped;
        self.coordinated += o.coordinated;
    }
}

/// One ticket's worth of rule operations, batched per switch.
#[derive(Clone, Debug)]
pub struct SeqBatches {
    /// Global ticket number (trace order of coordinated events).
    pub seq: u64,
    /// Barrier-delimited per-switch batches, in engine emission order.
    pub batches: Vec<SwitchBatch>,
}

/// Everything a sharded run produced.
pub struct ShardedRun<'t> {
    /// The engine after the run — its state, installer and mobility
    /// manager are exactly what a single-threaded run would hold.
    pub engine: CentralController<'t>,
    /// Per-event outcomes, indexed like the input events.
    pub outcomes: Vec<EventOutcome>,
    /// Per-shard ticket-stamped batch streams.
    pub shard_batches: Vec<Vec<SeqBatches>>,
    /// Merged counters.
    pub stats: ShardedStats,
}

impl ShardedRun<'_> {
    /// Merges the per-shard batch streams into the single global batch
    /// sequence (ordered by ticket) a single-threaded controller would
    /// have emitted. Within a ticket, per-switch order is the engine's
    /// emission order; the per-batch barrier makes cross-batch ordering
    /// on one switch explicit (see [`crate::ops::batch_by_switch`]).
    pub fn merged_batches(&self) -> Vec<SwitchBatch> {
        let mut all: Vec<&SeqBatches> = self.shard_batches.iter().flatten().collect();
        all.sort_by_key(|s| s.seq);
        all.iter().flat_map(|s| s.batches.iter().cloned()).collect()
    }
}

/// The sharded controller: configuration plus the [`run`](Self::run)
/// driver. One instance can run many traces.
pub struct ShardedController<'t> {
    topo: &'t Topology,
    cfg: ControllerConfig,
    shards: usize,
    sched_seed: u64,
}

// ---------------------------------------------------------------------
// rendezvous plumbing

enum Rdv {
    /// Allocate a UE id at a station (attach or handoff arrival),
    /// free-list LIFO then next fresh id — the local-agent discipline.
    Reserve {
        bs: BaseStationId,
        reply: Sender<Result<UeId>>,
    },
    /// Mark a UE attached at a station under a reserved id.
    Adopt {
        bs: BaseStationId,
        imsi: UeImsi,
        id: UeId,
        reply: Sender<()>,
    },
    /// Return a reserved id that was never adopted (failed attach).
    Return {
        bs: BaseStationId,
        id: UeId,
        reply: Sender<()>,
    },
    /// Remove a UE that moved away; its id is *not* recycled (the old
    /// location stays reserved until the transition expires, §5.1).
    Evict {
        bs: BaseStationId,
        imsi: UeImsi,
        reply: Sender<()>,
    },
    /// Remove a detached UE, recycling its id.
    Free {
        bs: BaseStationId,
        imsi: UeImsi,
        id: UeId,
        reply: Sender<()>,
    },
}

/// Station-owner mirror of a local agent's allocator + attachment set.
#[derive(Default)]
struct StationMirror {
    next: u16,
    free: Vec<UeId>,
    attached: HashSet<UeImsi>,
}

impl StationMirror {
    fn reserve(&mut self, max: u32) -> Result<UeId> {
        if let Some(id) = self.free.pop() {
            return Ok(id);
        }
        if u32::from(self.next) >= max {
            return Err(Error::Exhausted("station out of UE ids".into()));
        }
        let id = UeId(self.next);
        self.next += 1;
        Ok(id)
    }

    fn adopt(&mut self, imsi: UeImsi, id: UeId) {
        if id.0 >= self.next {
            self.next = id.0 + 1;
        }
        self.free.retain(|f| *f != id);
        self.attached.insert(imsi);
    }
}

// ---------------------------------------------------------------------
// shared read-mostly state

struct Coordinator<'t> {
    engine: Mutex<CentralController<'t>>,
    /// The ticket counter: the seq of the next coordinated event allowed
    /// into the engine.
    next_seq: AtomicU64,
    /// Published policy tags per (station, clause); `Err` poisons the
    /// key so waiters do not spin forever after an engine failure.
    published: RwLock<HashMap<(BaseStationId, ClauseId), std::result::Result<PathTags, String>>>,
    /// Precompiled per-subscriber classifiers (read-only).
    classifiers: HashMap<UeImsi, Arc<UeClassifier>>,
    /// Allow-clause middlebox chains (read-only), so workers can plan
    /// policy paths outside the sequencer without touching the engine.
    chains: HashMap<ClauseId, Vec<MiddleboxKind>>,
    /// Workers done with their event queues.
    done: AtomicUsize,
}

/// Per-event annotation from the sequential pre-pass.
#[derive(Clone, Copy, Debug)]
struct Annotation {
    /// Global ticket, for events that must enter the engine.
    seq: Option<u64>,
}

// ---------------------------------------------------------------------
// shard worker

struct UeMirror {
    ue_id: UeId,
    permanent_ip: Ipv4Addr,
    bs: BaseStationId,
    next_slot: u16,
    active_slots: HashSet<u16>,
    flows: Vec<MirrorFlow>,
}

#[derive(Clone, Copy)]
struct MirrorFlow {
    uplink: FiveTuple,
    downlink: FiveTuple,
    downlink_original: FiveTuple,
    up_action: MicroflowAction,
    down_action: MicroflowAction,
}

/// Contention histograms for the sharded engine, interned once on the
/// process-global registry (workers are rebuilt per run, so per-instance
/// handles would churn the registry's family maps).
struct ShardedMetrics {
    /// Time a coordinated event spends waiting for its ticket.
    ticket_wait: Arc<Histogram>,
    /// Time a ticket holder then waits to acquire the engine mutex —
    /// previously folded invisibly into neither histogram, which hid
    /// exactly the contention the concurrent engine removes.
    engine_lock_wait: Arc<Histogram>,
    /// Time the shared Algorithm-1 engine stays occupied per ticket
    /// (lock hold: plan/validate + op drain; batching happens outside).
    engine_busy: Arc<Histogram>,
    /// Time a cross-shard rendezvous waits for the owner's reply.
    rendezvous_wait: Arc<Histogram>,
    /// Ticketed demands committed from a still-current optimistic plan.
    commit_fast: Arc<Counter>,
    /// Ticketed demands re-planned under the ticket (stale plan).
    commit_replanned: Arc<Counter>,
}

fn metrics() -> &'static ShardedMetrics {
    static METRICS: OnceLock<ShardedMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = Registry::global();
        ShardedMetrics {
            ticket_wait: r.histogram("softcell_controller_ticket_wait_ns"),
            engine_lock_wait: r.histogram("softcell_controller_engine_lock_wait_ns"),
            engine_busy: r.histogram("softcell_controller_engine_busy_ns"),
            rendezvous_wait: r.histogram("softcell_controller_rendezvous_wait_ns"),
            commit_fast: r.counter("softcell_controller_commit_fast_total"),
            commit_replanned: r.counter("softcell_controller_commit_replanned_total"),
        }
    })
}

struct Worker<'t, 'c> {
    id: usize,
    shards: usize,
    coord: &'c Coordinator<'t>,
    cfg: ControllerConfig,
    topo: &'t Topology,
    rdv_rx: Receiver<Rdv>,
    rdv_txs: Vec<Sender<Rdv>>,
    stations: HashMap<BaseStationId, StationMirror>,
    ues: HashMap<UeImsi, UeMirror>,
    perm: ShardRange,
    perm_base: u32,
    batches: Vec<SeqBatches>,
    outcomes: Vec<(usize, EventOutcome)>,
    stats: ShardedStats,
    rng: u64,
    /// Handle for planning policy paths outside the sequencer. `Some`
    /// only under [`InstanceSelection::Nearest`] — the one selection
    /// mode a worker can model without the engine's private cursors.
    planner: Option<PlannerHandle>,
    /// Worker-local shortest-path cache feeding the optimistic planner
    /// (BFS over the shared immutable topology — identical distances on
    /// every shard).
    sp: ShortestPaths<'t>,
}

impl<'t> Worker<'t, '_> {
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Seeded jitter: a few yields to perturb thread interleaving (the
    /// concurrency test sweeps seeds through here).
    fn jitter(&mut self) {
        let n = self.next_rand() % 4;
        for _ in 0..n {
            std::thread::yield_now();
        }
    }

    /// Serves every rendezvous currently queued at this shard.
    fn serve_rdv(&mut self) {
        while let Ok(msg) = self.rdv_rx.try_recv() {
            self.handle_rdv(msg);
        }
    }

    fn handle_rdv(&mut self, msg: Rdv) {
        let max = self.cfg.scheme.max_ues_per_station();
        match msg {
            Rdv::Reserve { bs, reply } => {
                let r = self.stations.entry(bs).or_default().reserve(max);
                let _ = reply.send(r);
            }
            Rdv::Adopt {
                bs,
                imsi,
                id,
                reply,
            } => {
                self.stations.entry(bs).or_default().adopt(imsi, id);
                let _ = reply.send(());
            }
            Rdv::Return { bs, id, reply } => {
                self.stations.entry(bs).or_default().free.push(id);
                let _ = reply.send(());
            }
            Rdv::Evict { bs, imsi, reply } => {
                // the id stays out of the free list (location reserved)
                self.stations.entry(bs).or_default().attached.remove(&imsi);
                let _ = reply.send(());
            }
            Rdv::Free {
                bs,
                imsi,
                id,
                reply,
            } => {
                let st = self.stations.entry(bs).or_default();
                st.attached.remove(&imsi);
                st.free.push(id);
                let _ = reply.send(());
            }
        }
    }

    /// Sends a rendezvous to a station's owner shard and waits for the
    /// reply, serving this shard's own queue while blocked. Same-shard
    /// messages are handled inline.
    fn rendezvous<R>(
        &mut self,
        bs: BaseStationId,
        make: impl FnOnce(Sender<R>) -> Rdv,
        local: impl FnOnce(&mut Self) -> R,
    ) -> R {
        let owner = shard_of_station(bs, self.shards);
        if owner == self.id {
            return local(self);
        }
        self.stats.rendezvous_messages += 1;
        let (tx, rx) = unbounded();
        self.rdv_txs[owner]
            .send(make(tx))
            .unwrap_or_else(|_| panic!("shard {owner} rendezvous queue closed"));
        let sw = Stopwatch::start();
        loop {
            if let Ok(r) = rx.try_recv() {
                sw.record(&metrics().rendezvous_wait);
                return r;
            }
            self.serve_rdv();
            std::thread::yield_now();
        }
    }

    fn rdv_reserve(&mut self, bs: BaseStationId) -> Result<UeId> {
        let max = self.cfg.scheme.max_ues_per_station();
        self.rendezvous(
            bs,
            |reply| Rdv::Reserve { bs, reply },
            |w| w.stations.entry(bs).or_default().reserve(max),
        )
    }

    fn rdv_adopt(&mut self, bs: BaseStationId, imsi: UeImsi, id: UeId) {
        self.rendezvous(
            bs,
            |reply| Rdv::Adopt {
                bs,
                imsi,
                id,
                reply,
            },
            |w| w.stations.entry(bs).or_default().adopt(imsi, id),
        )
    }

    fn rdv_return(&mut self, bs: BaseStationId, id: UeId) {
        self.rendezvous(
            bs,
            |reply| Rdv::Return { bs, id, reply },
            |w| w.stations.entry(bs).or_default().free.push(id),
        )
    }

    fn rdv_evict(&mut self, bs: BaseStationId, imsi: UeImsi) {
        self.rendezvous(
            bs,
            |reply| Rdv::Evict { bs, imsi, reply },
            |w| {
                w.stations.entry(bs).or_default().attached.remove(&imsi);
            },
        )
    }

    fn rdv_free(&mut self, bs: BaseStationId, imsi: UeImsi, id: UeId) {
        self.rendezvous(
            bs,
            |reply| Rdv::Free {
                bs,
                imsi,
                id,
                reply,
            },
            |w| {
                let st = w.stations.entry(bs).or_default();
                st.attached.remove(&imsi);
                st.free.push(id);
            },
        )
    }

    /// Waits for this event's ticket, runs `f` against the engine, and
    /// drains the engine's rule ops into this shard's batch stream under
    /// the ticket number. `extra_ops` (handoff plans return their ops
    /// out-of-band) are batched ahead of the drained ops, matching where
    /// a single-threaded driver applies them.
    fn with_ticket<R>(
        &mut self,
        seq: u64,
        f: impl FnOnce(&mut Self, &mut CentralController<'t>) -> (R, Vec<crate::ops::RuleOp>),
    ) -> R {
        let tracer = Registry::global().tracer();
        let sw = Stopwatch::start();
        {
            let mut sp = tracer.span("ticket_wait");
            sp.set_shard(self.id);
            sp.set_label(seq);
            loop {
                if self.coord.next_seq.load(Ordering::Acquire) == seq {
                    break;
                }
                self.serve_rdv();
                std::thread::yield_now();
            }
        }
        sw.record(&metrics().ticket_wait);
        self.stats.coordinated += 1;
        // engine-mutex acquisition measured separately: the ticket
        // serializes coordinated events, but mobility/offline paths can
        // still hold the engine, and folding that wait into engine_busy
        // would misattribute contention as work
        let lock_sw = Stopwatch::start();
        let (result, ops) = {
            let mut sp = tracer.span("validate_commit");
            sp.set_shard(self.id);
            sp.set_label(seq);
            let mut engine = self.coord.engine.lock();
            lock_sw.record(&metrics().engine_lock_wait);
            let sw = Stopwatch::start();
            let (result, mut ops) = f(self, &mut engine);
            ops.extend(engine.drain_ops());
            drop(engine);
            sw.record(&metrics().engine_busy);
            (result, ops)
        };
        // hand the ticket on before batching: per-ticket batching needs
        // neither the engine nor the sequencer, so the next coordinated
        // event overlaps with this shard's journaling
        self.coord.next_seq.store(seq + 1, Ordering::Release);
        let mut journal = OpJournal::default();
        journal.extend(ops);
        if !journal.is_empty() {
            let mut sp = tracer.span("batch_by_switch");
            sp.set_shard(self.id);
            sp.set_label(seq);
            self.batches.push(SeqBatches {
                seq,
                batches: journal.into_batches(),
            });
        }
        result
    }

    fn skip(&mut self, idx: usize, reason: impl Into<String>) {
        self.stats.skipped += 1;
        self.outcomes.push((
            idx,
            EventOutcome::Skipped {
                reason: reason.into(),
            },
        ));
    }

    /// Plans a (station, clause) policy path outside the sequencer: pure
    /// reads against the shared installer cells plus this worker's own
    /// shortest-path cache. Returns `None` when planning is unavailable
    /// (non-Nearest selection), pointless (tags already published — the
    /// engine will serve its cache), or failed (the ticketed path will
    /// fail identically and report the error).
    fn optimistic_plan(&mut self, bs: BaseStationId, clause: ClauseId) -> Option<PolicyPathPlan> {
        let planner = self.planner.clone()?;
        if self.coord.published.read().contains_key(&(bs, clause)) {
            return None;
        }
        let chain = self.coord.chains.get(&clause)?;
        let instances = select_nearest_instances(self.topo, &mut self.sp, bs, chain).ok()?;
        let gateway = self.topo.default_gateway().switch;
        let path = self.sp.route_policy_path(bs, &instances, gateway).ok()?;
        planner.plan_policy_path(path, self.cfg.bidirectional).ok()
    }

    fn handle_event(&mut self, idx: usize, ev: ShardEvent, ann: Annotation) {
        self.stats.events += 1;
        // Trace root per event: the ticket/plan/commit/batch spans below
        // nest under it via the thread-local context. Disarmed sampling
        // makes this a single atomic load.
        let mut root = Registry::global().tracer().root(match ev.kind {
            ShardEventKind::Attach { .. } => "shard_attach",
            ShardEventKind::NewFlow { .. } => "shard_new_flow",
            ShardEventKind::Handoff { .. } => "shard_handoff",
            ShardEventKind::Detach { .. } => "shard_detach",
        });
        root.set_shard(self.id);
        root.set_label(idx as u64);
        match ev.kind {
            ShardEventKind::Attach { bs } => self.handle_attach(idx, ev, bs, ann),
            ShardEventKind::NewFlow {
                bs,
                dst,
                src_port,
                dst_port,
                udp,
            } => self.handle_flow(idx, ev, bs, dst, src_port, dst_port, udp, ann),
            ShardEventKind::Handoff { from, to } => self.handle_handoff(idx, ev, from, to, ann),
            ShardEventKind::Detach { bs: _ } => self.handle_detach(idx, ev, ann),
        }
    }

    fn handle_attach(&mut self, idx: usize, ev: ShardEvent, bs: BaseStationId, ann: Annotation) {
        let seq = ann.seq.expect("attach is coordinated");
        if self.ues.contains_key(&ev.imsi) {
            // still consume the ticket: later events' seqs depend on it
            self.with_ticket(seq, |_, _| ((), Vec::new()));
            return self.skip(idx, format!("{} already attached", ev.imsi));
        }
        let Some(off) = self.perm.allocate() else {
            self.with_ticket(seq, |_, _| ((), Vec::new()));
            return self.skip(idx, "permanent range exhausted");
        };
        let ip = Ipv4Addr::from(self.cfg.permanent_pool.raw_bits() + self.perm_base + off);
        let granted: Result<AttachGrant> = self.with_ticket(seq, |w, engine| {
            let id = match w.rdv_reserve(bs) {
                Ok(id) => id,
                Err(e) => return (Err(e), Vec::new()),
            };
            match engine.attach_ue_with_ip(ev.imsi, bs, id, ev.time, Some(ip)) {
                Ok(grant) => {
                    w.rdv_adopt(bs, ev.imsi, id);
                    (Ok(grant), Vec::new())
                }
                Err(e) => {
                    w.rdv_return(bs, id);
                    (Err(e), Vec::new())
                }
            }
        });
        match granted {
            Ok(grant) => {
                self.ues.insert(
                    ev.imsi,
                    UeMirror {
                        ue_id: grant.record.ue_id,
                        permanent_ip: ip,
                        bs,
                        next_slot: 0,
                        active_slots: HashSet::new(),
                        flows: Vec::new(),
                    },
                );
                self.stats.attaches += 1;
                self.outcomes.push((
                    idx,
                    EventOutcome::Attached {
                        record: grant.record,
                    },
                ));
            }
            Err(e) => {
                self.perm.release(off);
                self.skip(idx, format!("attach failed: {e}"));
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_flow(
        &mut self,
        idx: usize,
        ev: ShardEvent,
        bs: BaseStationId,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        udp: bool,
        ann: Annotation,
    ) {
        self.stats.flows += 1;
        let proto = if udp { Protocol::Udp } else { Protocol::Tcp };
        let Some(classifier) = self.coord.classifiers.get(&ev.imsi) else {
            if let Some(seq) = ann.seq {
                self.with_ticket(seq, |_, _| ((), Vec::new()));
            }
            return self.skip(idx, "unknown subscriber");
        };
        let Some(entry) = classifier.classify(proto, dst_port) else {
            if let Some(seq) = ann.seq {
                self.with_ticket(seq, |_, _| ((), Vec::new()));
            }
            return self.skip(idx, "policy matches nothing for this flow");
        };
        let key = (bs, entry.clause);
        let attached_here = self.ues.get(&ev.imsi).map(|u| u.bs);
        if attached_here != Some(bs) {
            // the annotator's replay assumed this UE reached `bs`; if a
            // prior attach/handoff failed at runtime we must still burn
            // the ticket AND poison the published key so non-coordinated
            // flows of the same (bs, clause) do not wait forever
            if let Some(seq) = ann.seq {
                self.stats.flow_demands += 1;
                self.with_ticket(seq, |w, _| {
                    w.coord
                        .published
                        .write()
                        .entry(key)
                        .or_insert_with(|| Err("path demander was skipped".into()));
                    ((), Vec::new())
                });
            }
            return self.skip(idx, format!("{} not attached at {bs}", ev.imsi));
        }
        let tuple = FiveTuple {
            src: self.ues[&ev.imsi].permanent_ip,
            dst,
            src_port,
            dst_port,
            proto,
        };
        let access = self.topo.base_station(bs).access_switch;
        let radio = self.topo.base_station(bs).radio_port;

        if entry.access == AccessControl::Deny {
            self.stats.denied += 1;
            self.outcomes.push((
                idx,
                EventOutcome::Flow(FlowDecision {
                    bs,
                    access,
                    clause: entry.clause,
                    denied: true,
                    cache_hit: true,
                    installs: vec![(tuple, MicroflowAction::Drop)],
                    time: ev.time,
                }),
            ));
            return;
        }

        let (tags, cache_hit) = match ann.seq {
            // This flow demands the path: plan it optimistically BEFORE
            // taking the ticket (pure reads against the shared installer
            // state), then enter the engine, which fast-commits the plan
            // if still current and re-plans otherwise. The publish
            // unconditionally overwrites the key, so a successful demand
            // clears any earlier poison (`Err`) left by a failed one.
            Some(seq) => {
                self.stats.flow_demands += 1;
                let plan = {
                    let mut sp = Registry::global().tracer().span("plan_policy_path");
                    sp.set_shard(self.id);
                    sp.set_label(seq);
                    self.optimistic_plan(bs, entry.clause)
                };
                let tags = self.with_ticket(seq, |w, engine| {
                    let r = engine.request_policy_path_planned(bs, entry.clause, plan.as_ref());
                    let published = r.as_ref().map(|(t, _)| *t).map_err(|e| e.to_string());
                    w.coord.published.write().insert(key, published);
                    (r, Vec::new())
                });
                match tags {
                    // the engine's own (clause, station) cache answered:
                    // this was a hit in every sense that matters (no
                    // rules were produced); per-UE tickets make this
                    // reachable when another UE demanded the key first
                    Ok((t, CommitTier::Cached)) => {
                        self.stats.cache_hits += 1;
                        (t, true)
                    }
                    Ok((t, tier)) => {
                        match tier {
                            CommitTier::Fast => {
                                self.stats.commit_fast += 1;
                                metrics().commit_fast.add(1);
                            }
                            CommitTier::Replanned => {
                                self.stats.commit_replanned += 1;
                                metrics().commit_replanned.add(1);
                            }
                            CommitTier::Cached | CommitTier::Unplanned => {}
                        }
                        self.stats.cache_misses += 1;
                        (t, false)
                    }
                    Err(e) => return self.skip(idx, format!("path request failed: {e}")),
                }
            }
            // published by an earlier event (possibly on another shard):
            // wait for it, serving rendezvous meanwhile
            None => {
                let tags = loop {
                    if let Some(r) = self.coord.published.read().get(&key) {
                        break r.clone();
                    }
                    self.serve_rdv();
                    std::thread::yield_now();
                };
                match tags {
                    Ok(t) => {
                        self.stats.cache_hits += 1;
                        (t, true)
                    }
                    Err(e) => return self.skip(idx, format!("path request failed: {e}")),
                }
            }
        };

        let ue = self.ues.get_mut(&ev.imsi).expect("checked above");
        let loc_addr = match self.cfg.scheme.encode(LocIp::new(bs, ue.ue_id)) {
            Ok(a) => a,
            Err(e) => return self.skip(idx, format!("loc encode failed: {e}")),
        };
        // flow-slot allocation, exactly the local agent's scan
        let slots = self.cfg.ports.flow_slots();
        let mut slot = ue.next_slot % slots;
        let mut tries = 0;
        while ue.active_slots.contains(&slot) {
            slot = (slot + 1) % slots;
            tries += 1;
            if tries >= slots {
                return self.skip(idx, "all flow slots active");
            }
        }
        ue.next_slot = slot + 1;
        ue.active_slots.insert(slot);

        let up_port = self
            .cfg
            .ports
            .encode(tags.uplink_entry, slot)
            .expect("tag fits");
        let down_port = self
            .cfg
            .ports
            .encode(tags.downlink_final, slot)
            .expect("tag fits");
        let up_action = MicroflowAction::RewriteSrc {
            addr: loc_addr,
            port: up_port,
            out: tags.access_out_port,
            dscp: tags.qos.map(|q| q.dscp),
        };
        let down_tuple = FiveTuple {
            src: dst,
            dst: loc_addr,
            src_port: dst_port,
            dst_port: down_port,
            proto,
        };
        let down_action = MicroflowAction::RewriteDst {
            addr: ue.permanent_ip,
            port: src_port,
            out: radio,
        };
        ue.flows.push(MirrorFlow {
            uplink: tuple,
            downlink: down_tuple,
            downlink_original: down_tuple,
            up_action,
            down_action,
        });
        self.outcomes.push((
            idx,
            EventOutcome::Flow(FlowDecision {
                bs,
                access,
                clause: entry.clause,
                denied: false,
                cache_hit,
                installs: vec![(tuple, up_action), (down_tuple, down_action)],
                time: ev.time,
            }),
        ));
    }

    fn handle_handoff(
        &mut self,
        idx: usize,
        ev: ShardEvent,
        from: BaseStationId,
        to: BaseStationId,
        ann: Annotation,
    ) {
        let Some(seq) = ann.seq else {
            return self.skip(idx, "handoff to the same station");
        };
        let Some(current) = self.ues.get(&ev.imsi).map(|u| u.bs) else {
            self.with_ticket(seq, |_, _| ((), Vec::new()));
            return self.skip(idx, format!("{} not attached", ev.imsi));
        };
        // the station actually being vacated is the mirror's (the trace's
        // `from` matches it on consistent traces)
        let from = if current == from { from } else { current };
        if from == to {
            self.with_ticket(seq, |_, _| ((), Vec::new()));
            return self.skip(idx, "handoff to the same station");
        }
        let flows: Vec<FlowRecord> = self.ues[&ev.imsi]
            .flows
            .iter()
            .map(|f| FlowRecord {
                uplink: f.uplink,
                downlink: f.downlink,
                downlink_original: f.downlink_original,
                up_action: f.up_action,
                down_action: f.down_action,
            })
            .collect();
        if shard_of_station(from, self.shards) != shard_of_station(to, self.shards) {
            self.stats.cross_shard_handoffs += 1;
        }

        // The two station-owner interactions commute (they touch
        // different stations); the seeded scheduler permutes their order
        // and injects yields so the concurrency test can drive every
        // interleaving. The reservation always precedes the engine call
        // (the plan needs the new id).
        let evict_early = self.next_rand() & 1 == 0;
        let plan = self.with_ticket(seq, |w, engine| {
            w.jitter();
            let new_id = match w.rdv_reserve(to) {
                Ok(id) => id,
                Err(e) => return (Err(e), Vec::new()),
            };
            if evict_early {
                w.jitter();
                w.rdv_evict(from, ev.imsi);
            }
            w.jitter();
            match engine.handoff(ev.imsi, to, new_id, &flows, ev.time) {
                Ok(plan) => {
                    if !evict_early {
                        w.jitter();
                        w.rdv_evict(from, ev.imsi);
                    }
                    w.jitter();
                    w.rdv_adopt(to, ev.imsi, new_id);
                    let ops = plan.ops.clone();
                    (Ok(plan), ops)
                }
                Err(e) => {
                    w.rdv_return(to, new_id);
                    (Err(e), Vec::new())
                }
            }
        });
        let plan = match plan {
            Ok(p) => p,
            Err(e) => return self.skip(idx, format!("handoff failed: {e}")),
        };

        // re-key the mirror exactly as the arriving agent adopts flows
        let installed: HashMap<FiveTuple, MicroflowAction> =
            plan.new_microflow_installs.iter().copied().collect();
        let ue = self.ues.get_mut(&ev.imsi).expect("checked above");
        ue.bs = to;
        ue.ue_id = plan.new.ue_id;
        ue.next_slot = 0;
        ue.active_slots.clear();
        ue.flows = plan
            .carried_flows
            .iter()
            .filter_map(|f| {
                let up_action = *installed.get(&f.uplink)?;
                let down_action = *installed.get(&f.downlink)?;
                Some(MirrorFlow {
                    uplink: f.uplink,
                    downlink: f.downlink,
                    downlink_original: f.downlink_original,
                    up_action,
                    down_action,
                })
            })
            .collect();
        for f in &ue.flows {
            let (_, slot) = self.cfg.ports.decode(f.downlink.dst_port);
            ue.active_slots.insert(slot);
        }

        self.stats.handoffs += 1;
        Registry::global()
            .journal()
            .record("handoff", ev.imsi.0, u64::from(to.0));
        self.outcomes.push((
            idx,
            EventOutcome::HandedOff(HandoffOutcome {
                old_access: self.topo.base_station(from).access_switch,
                new_access: self.topo.base_station(to).access_switch,
                removals: plan.old_microflow_removals,
                installs: plan.new_microflow_installs,
                time: ev.time,
            }),
        ));
    }

    fn handle_detach(&mut self, idx: usize, ev: ShardEvent, ann: Annotation) {
        let seq = ann.seq.expect("detach is coordinated");
        if !self.ues.contains_key(&ev.imsi) {
            self.with_ticket(seq, |_, _| ((), Vec::new()));
            return self.skip(idx, format!("{} not attached", ev.imsi));
        }
        let record = self.with_ticket(seq, |w, engine| match engine.detach_ue(ev.imsi) {
            Ok(record) => {
                w.rdv_free(record.bs, ev.imsi, record.ue_id);
                (Ok(record), Vec::new())
            }
            Err(e) => (Err(e), Vec::new()),
        });
        match record {
            Ok(record) => {
                let mirror = self.ues.remove(&ev.imsi).expect("checked above");
                let off = u32::from(mirror.permanent_ip)
                    - self.cfg.permanent_pool.raw_bits()
                    - self.perm_base;
                self.perm.release(off);
                self.stats.detaches += 1;
                self.outcomes.push((idx, EventOutcome::Detached { record }));
            }
            Err(e) => self.skip(idx, format!("detach failed: {e}")),
        }
    }

    fn run(mut self, events: Receiver<(usize, ShardEvent, Annotation)>) -> WorkerOutput {
        while let Ok((idx, ev, ann)) = events.try_recv() {
            self.serve_rdv();
            self.handle_event(idx, ev, ann);
        }
        // linger until every shard is done with its events: a peer may
        // still need this shard's stations
        self.coord.done.fetch_add(1, Ordering::AcqRel);
        while self.coord.done.load(Ordering::Acquire) < self.shards {
            self.serve_rdv();
            std::thread::yield_now();
        }
        self.serve_rdv();
        WorkerOutput {
            outcomes: self.outcomes,
            batches: self.batches,
            stats: self.stats,
        }
    }
}

struct WorkerOutput {
    outcomes: Vec<(usize, EventOutcome)>,
    batches: Vec<SeqBatches>,
    stats: ShardedStats,
}

// ---------------------------------------------------------------------
// the driver

impl<'t> ShardedController<'t> {
    /// Creates a sharded controller with `shards` workers.
    pub fn new(topo: &'t Topology, cfg: ControllerConfig, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedController {
            topo,
            cfg,
            shards,
            sched_seed: 0,
        }
    }

    /// Sets the rendezvous-scheduler seed (permutes cross-shard message
    /// order and injects yields; the result must not depend on it).
    pub fn with_sched_seed(mut self, seed: u64) -> Self {
        self.sched_seed = seed;
        self
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The sequential pre-pass: replays the trace's station bookkeeping
    /// and classification to find the coordinated events, assigning them
    /// global ticket numbers in trace order. Pure — no controller state
    /// is touched.
    fn annotate(
        &self,
        events: &[ShardEvent],
        classifiers: &HashMap<UeImsi, Arc<UeClassifier>>,
    ) -> Vec<Annotation> {
        let mut attached: HashMap<UeImsi, BaseStationId> = HashMap::new();
        // Demands are tracked per (UE, station, clause), not per
        // (station, clause): each UE's first flow for a key gets its own
        // ticket. Later tickets for an already-installed key are served
        // from the engine's path cache and emit no ops (so the merged
        // batch stream is unchanged), but they re-enter the engine —
        // which is what un-poisons a key whose original demander failed
        // (a dead UE would otherwise permanently kill the key for
        // everyone). See `poisoned_key_recovers_when_another_ue_demands`.
        let mut demanded: HashSet<(UeImsi, BaseStationId, ClauseId)> = HashSet::new();
        let mut next_seq = 0u64;
        let mut take = || {
            let s = next_seq;
            next_seq += 1;
            Some(s)
        };
        events
            .iter()
            .map(|ev| {
                let seq = match ev.kind {
                    ShardEventKind::Attach { bs } => {
                        attached.insert(ev.imsi, bs);
                        take()
                    }
                    ShardEventKind::Detach { .. } => {
                        attached.remove(&ev.imsi);
                        take()
                    }
                    ShardEventKind::Handoff { from, to } => {
                        if from == to {
                            None
                        } else {
                            attached.insert(ev.imsi, to);
                            take()
                        }
                    }
                    ShardEventKind::NewFlow {
                        bs, dst_port, udp, ..
                    } => {
                        let proto = if udp { Protocol::Udp } else { Protocol::Tcp };
                        match classifiers
                            .get(&ev.imsi)
                            .and_then(|c| c.classify(proto, dst_port))
                        {
                            Some(e)
                                if e.access == AccessControl::Allow
                                    && attached.get(&ev.imsi) == Some(&bs)
                                    && demanded.insert((ev.imsi, bs, e.clause)) =>
                            {
                                take()
                            }
                            _ => None,
                        }
                    }
                };
                Annotation { seq }
            })
            .collect()
    }

    /// Runs a trace to completion: routes every event to its UE's owner
    /// shard, runs the shards concurrently, and returns the outcomes,
    /// the ticket-stamped batch streams and the engine.
    pub fn run(
        &self,
        policy: ServicePolicy,
        subscribers: &[SubscriberAttributes],
        events: &[ShardEvent],
    ) -> ShardedRun<'t> {
        let mut engine = CentralController::new(self.topo, self.cfg, policy);
        for attrs in subscribers {
            engine.put_subscriber(*attrs);
        }
        let classifiers: HashMap<UeImsi, Arc<UeClassifier>> = subscribers
            .iter()
            .map(|attrs| {
                let c = UeClassifier::compile(&engine.state().policy, engine.apps(), attrs);
                (attrs.imsi, Arc::new(c))
            })
            .collect();
        let annotations = self.annotate(events, &classifiers);
        let chains: HashMap<ClauseId, Vec<MiddleboxKind>> = engine
            .state()
            .policy
            .clauses()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.action.access == AccessControl::Allow)
            .map(|(i, c)| (ClauseId(i as u16), c.action.chain.clone()))
            .collect();
        // Optimistic planning is sound only under Nearest selection (the
        // other modes advance engine-private cursors a worker cannot
        // model); the engine gates the fast tier on the same condition.
        let planner = (self.cfg.selection == InstanceSelection::Nearest)
            .then(|| engine.installer().planner_handle());

        let coord = Coordinator {
            engine: Mutex::new(engine),
            next_seq: AtomicU64::new(0),
            published: RwLock::new(HashMap::new()),
            classifiers,
            chains,
            done: AtomicUsize::new(0),
        };

        // static per-shard slices of the permanent pool: deterministic
        // per shard count (the oracle canonicalizes addresses by flow
        // identity, so slice placement never leaks into the comparison)
        let pool_size = self.cfg.permanent_pool.size();
        let slice = (((pool_size - 1) / self.shards as u64) as u32).max(1);

        let mut event_txs = Vec::with_capacity(self.shards);
        let mut event_rxs = Vec::with_capacity(self.shards);
        let mut rdv_txs = Vec::with_capacity(self.shards);
        let mut rdv_rxs = Vec::with_capacity(self.shards);
        for _ in 0..self.shards {
            let (tx, rx) = unbounded();
            event_txs.push(tx);
            event_rxs.push(rx);
            let (tx, rx) = unbounded();
            rdv_txs.push(tx);
            rdv_rxs.push(rx);
        }
        for (idx, (ev, ann)) in events.iter().zip(&annotations).enumerate() {
            let shard = shard_of_ue(ev.imsi, self.shards);
            event_txs[shard].send((idx, *ev, *ann)).expect("queue open");
        }
        drop(event_txs);

        let outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.shards);
            for (id, (events_rx, rdv_rx)) in event_rxs.into_iter().zip(rdv_rxs).enumerate() {
                let worker = Worker {
                    id,
                    shards: self.shards,
                    coord: &coord,
                    cfg: self.cfg,
                    topo: self.topo,
                    rdv_rx,
                    rdv_txs: rdv_txs.clone(),
                    stations: HashMap::new(),
                    ues: HashMap::new(),
                    perm: ShardRange::new(RangePool::new(slice, PERM_BLOCK)),
                    perm_base: 1 + id as u32 * slice,
                    batches: Vec::new(),
                    outcomes: Vec::new(),
                    stats: ShardedStats::default(),
                    rng: (self.sched_seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1,
                    planner: planner.clone(),
                    sp: ShortestPaths::new(self.topo),
                };
                handles.push(scope.spawn(move || worker.run(events_rx)));
            }
            drop(rdv_txs);
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });

        let mut stats = ShardedStats::default();
        let mut indexed: Vec<(usize, EventOutcome)> = Vec::with_capacity(events.len());
        let mut shard_batches = Vec::with_capacity(self.shards);
        for out in outputs {
            stats.merge(&out.stats);
            indexed.extend(out.outcomes);
            shard_batches.push(out.batches);
        }
        indexed.sort_by_key(|(idx, _)| *idx);
        let outcomes = indexed.into_iter().map(|(_, o)| o).collect();

        let g = Registry::global();
        for (name, v) in [
            ("softcell_controller_sharded_events_total", stats.events),
            ("softcell_controller_sharded_attaches_total", stats.attaches),
            ("softcell_controller_sharded_detaches_total", stats.detaches),
            ("softcell_controller_sharded_handoffs_total", stats.handoffs),
            (
                "softcell_controller_sharded_cross_shard_handoffs_total",
                stats.cross_shard_handoffs,
            ),
            (
                "softcell_controller_sharded_rendezvous_messages_total",
                stats.rendezvous_messages,
            ),
            ("softcell_controller_sharded_flows_total", stats.flows),
            (
                "softcell_controller_sharded_cache_hits_total",
                stats.cache_hits,
            ),
            (
                "softcell_controller_sharded_cache_misses_total",
                stats.cache_misses,
            ),
            (
                "softcell_controller_sharded_flow_demands_total",
                stats.flow_demands,
            ),
            ("softcell_controller_sharded_denied_total", stats.denied),
            ("softcell_controller_sharded_skipped_total", stats.skipped),
            (
                "softcell_controller_sharded_coordinated_total",
                stats.coordinated,
            ),
        ] {
            g.counter(name).add(v);
        }

        ShardedRun {
            engine: coord.engine.into_inner(),
            outcomes,
            shard_batches,
            stats,
        }
    }

    /// The idle deadline the materializer must give flow microflow
    /// entries (mirrors the local agent's default).
    pub fn microflow_idle() -> SimDuration {
        MICROFLOW_IDLE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softcell_topology::small_topology;

    fn subs(n: u64) -> Vec<SubscriberAttributes> {
        (0..n)
            .map(|i| SubscriberAttributes::default_home(UeImsi(i)))
            .collect()
    }

    const SERVER: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

    fn flow(t: u64, imsi: u64, bs: u32, src_port: u16, dst_port: u16) -> ShardEvent {
        ShardEvent {
            time: SimTime(t),
            imsi: UeImsi(imsi),
            kind: ShardEventKind::NewFlow {
                bs: BaseStationId(bs),
                dst: SERVER,
                src_port,
                dst_port,
                udp: false,
            },
        }
    }

    fn attach(t: u64, imsi: u64, bs: u32) -> ShardEvent {
        ShardEvent {
            time: SimTime(t),
            imsi: UeImsi(imsi),
            kind: ShardEventKind::Attach {
                bs: BaseStationId(bs),
            },
        }
    }

    #[test]
    fn attach_flow_detach_roundtrip() {
        let topo = small_topology();
        let sc = ShardedController::new(&topo, ControllerConfig::simulation(), 4);
        let events = vec![
            attach(0, 0, 0),
            attach(0, 1, 1),
            flow(1, 0, 0, 40_000, 443),
            flow(2, 1, 1, 40_001, 443),
            flow(3, 0, 0, 40_002, 80),
            ShardEvent {
                time: SimTime(4),
                imsi: UeImsi(0),
                kind: ShardEventKind::Detach {
                    bs: BaseStationId(0),
                },
            },
        ];
        let run = sc.run(ServicePolicy::example_carrier_a(1), &subs(2), &events);
        assert_eq!(run.stats.attaches, 2);
        assert_eq!(run.stats.flows, 3);
        assert_eq!(run.stats.cache_misses, 2, "one demand per (bs, clause)");
        assert_eq!(run.stats.cache_hits, 1);
        assert_eq!(run.stats.detaches, 1);
        assert_eq!(run.stats.skipped, 0);
        assert_eq!(run.engine.state().attached_count(), 1);
        assert!(matches!(run.outcomes[2], EventOutcome::Flow(_)));
        // both demands produced fabric batches, merged in ticket order
        let merged = run.merged_batches();
        assert!(!merged.is_empty());
        let mut last_seq = None;
        for s in run.shard_batches.iter().flatten() {
            let _ = last_seq.replace(s.seq);
            assert!(s.batches.iter().all(|b| b.barrier));
        }
    }

    #[test]
    fn poisoned_key_recovers_when_another_ue_demands() {
        // ISSUE-8 satellite: a failed coordinated install used to poison
        // its (station, clause) key forever, because demands were
        // ticketed once globally per key. Per-UE tickets let a later
        // UE's demand re-enter the engine, succeed, and overwrite the
        // poison — after which waiters serve cache hits again.
        let topo = small_topology();
        let mut cfg = ControllerConfig::simulation();
        // a two-address pool: one shard slice of exactly one address, so
        // the second attach fails after its annotation already assumed
        // success
        cfg.permanent_pool =
            softcell_types::Ipv4Prefix::from_bits(u32::from(Ipv4Addr::new(100, 64, 0, 0)), 31);
        let sc = ShardedController::new(&topo, cfg, 1);
        let events = vec![
            attach(0, 0, 0),
            attach(1, 1, 0),            // pool exhausted: skipped
            flow(2, 1, 0, 40_000, 443), // ue1 not attached: burns its ticket, poisons the key
            flow(3, 0, 0, 40_001, 443), // ue0's own ticketed demand: succeeds, clears the poison
            flow(4, 0, 0, 40_002, 443), // un-ticketed waiter: served from published tags
        ];
        let run = sc.run(ServicePolicy::example_carrier_a(1), &subs(2), &events);
        assert_eq!(run.stats.attaches, 1);
        assert!(
            matches!(&run.outcomes[1], EventOutcome::Skipped { reason } if reason.contains("exhausted")),
            "{:?}",
            run.outcomes[1]
        );
        assert!(
            matches!(&run.outcomes[2], EventOutcome::Skipped { reason } if reason.contains("not attached")),
            "{:?}",
            run.outcomes[2]
        );
        let EventOutcome::Flow(f) = &run.outcomes[3] else {
            panic!(
                "ue0's demand must succeed despite the poison: {:?}",
                run.outcomes[3]
            );
        };
        assert!(!f.cache_hit, "ue0's flow installed the path");
        let EventOutcome::Flow(f) = &run.outcomes[4] else {
            panic!("waiter must see the cleared key: {:?}", run.outcomes[4]);
        };
        assert!(f.cache_hit, "second flow rides the published tags");
        assert_eq!(run.stats.cache_misses, 1);
        assert_eq!(run.stats.cache_hits, 1);
        assert_eq!(run.stats.flow_demands, 2, "ue1's burned demand + ue0's");
    }

    #[test]
    fn waiters_observe_engine_failure_instead_of_spinning() {
        // an engine failure must publish `Err` so un-ticketed waiters on
        // the same key terminate (skip) rather than spin forever
        let topo = small_topology();
        let mut cfg = ControllerConfig::simulation();
        cfg.tag_policy.capacity = 0; // every install fails: tag space empty
        let sc = ShardedController::new(&topo, cfg, 1);
        let events = vec![
            attach(0, 0, 0),
            flow(1, 0, 0, 40_000, 443), // demander: engine fails, publishes Err
            flow(2, 0, 0, 40_001, 443), // waiter: must observe Err and skip
        ];
        let run = sc.run(ServicePolicy::example_carrier_a(1), &subs(1), &events);
        assert!(
            matches!(&run.outcomes[1], EventOutcome::Skipped { reason } if reason.contains("path request failed")),
            "{:?}",
            run.outcomes[1]
        );
        assert!(
            matches!(&run.outcomes[2], EventOutcome::Skipped { reason } if reason.contains("path request failed")),
            "{:?}",
            run.outcomes[2]
        );
        assert_eq!(run.stats.cache_hits, 0);
        assert_eq!(run.stats.cache_misses, 0, "nothing installed");
    }

    #[test]
    fn optimistic_plans_fast_commit_on_single_shard() {
        // with one shard nothing can invalidate a plan between planning
        // and its ticket, so every installing demand commits fast
        let topo = small_topology();
        let sc = ShardedController::new(&topo, ControllerConfig::simulation(), 1);
        let events = vec![
            attach(0, 0, 0),
            attach(0, 1, 1),
            flow(1, 0, 0, 40_000, 443),
            flow(2, 1, 1, 40_001, 443),
            flow(3, 0, 0, 40_002, 80),
        ];
        let run = sc.run(ServicePolicy::example_carrier_a(1), &subs(2), &events);
        assert_eq!(run.stats.cache_misses, 2);
        assert_eq!(
            run.stats.commit_fast, 2,
            "single shard: every install came from its optimistic plan"
        );
        assert_eq!(run.stats.commit_replanned, 0);
    }

    #[test]
    fn handoff_crosses_shards() {
        let topo = small_topology();
        let sc =
            ShardedController::new(&topo, ControllerConfig::simulation(), 4).with_sched_seed(7);
        let events = vec![
            attach(0, 0, 0),
            flow(1, 0, 0, 40_000, 443),
            ShardEvent {
                time: SimTime(2),
                imsi: UeImsi(0),
                kind: ShardEventKind::Handoff {
                    from: BaseStationId(0),
                    to: BaseStationId(3),
                },
            },
        ];
        let run = sc.run(ServicePolicy::example_carrier_a(1), &subs(1), &events);
        assert_eq!(run.stats.handoffs, 1);
        assert_eq!(run.stats.skipped, 0);
        let EventOutcome::HandedOff(h) = &run.outcomes[2] else {
            panic!("handoff outcome expected, got {:?}", run.outcomes[2]);
        };
        assert_eq!(h.removals.len(), 1, "downlink moved away");
        assert_eq!(h.installs.len(), 2, "uplink + downlink copies");
        assert_eq!(
            run.engine.state().ue(UeImsi(0)).unwrap().bs,
            BaseStationId(3)
        );
        assert_eq!(run.engine.state().reserved_count(), 1, "old slot reserved");
    }
}
