//! Central controller state.
//!
//! Paper §5.2 divides controller state into slow-changing parts held with
//! strong consistency across replicas — "the service policy, the
//! subscriber attributes, the policy paths" — and the one fast-moving
//! part, UE location, which a recovering replica can rebuild by querying
//! local agents. [`ControllerState`] holds both, versioned so the
//! replication layer ([`crate::failover`]) can ship deltas.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};
use softcell_policy::{ServicePolicy, SubscriberAttributes};
use softcell_types::{BaseStationId, Error, Ipv4Prefix, Result, SimTime, UeId, UeImsi};

/// One attached UE as the controller sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UeRecord {
    /// Subscriber identity.
    pub imsi: UeImsi,
    /// The permanent address (DHCP-assigned on first attach; never
    /// changes, paper §3.1).
    pub permanent_ip: Ipv4Addr,
    /// Current base station.
    pub bs: BaseStationId,
    /// Local UE id at that base station (assigned by the local agent).
    pub ue_id: UeId,
    /// When the UE last attached or moved.
    pub since: SimTime,
}

/// The central controller's replicated state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ControllerState {
    /// The service policy (slow-changing).
    pub policy: ServicePolicy,
    subscribers: HashMap<UeImsi, SubscriberAttributes>,
    ues: HashMap<UeImsi, UeRecord>,
    by_loc: HashMap<(BaseStationId, UeId), UeImsi>,
    /// Locations still carrying anchored traffic after a handoff: "the
    /// controller does not assign the old location-dependent address to
    /// any new UEs" until the transition ends (§5.1). Maps to the owning
    /// subscriber so a returning UE may reclaim its own address.
    reserved: HashMap<(BaseStationId, UeId), UeImsi>,
    /// DHCP pool for permanent addresses.
    permanent_pool: Ipv4Prefix,
    next_permanent: u32,
    freed_permanent: Vec<Ipv4Addr>,
    /// Monotonic version for replication.
    version: u64,
}

impl ControllerState {
    /// Creates state with a policy and a permanent-address pool.
    pub fn new(policy: ServicePolicy, permanent_pool: Ipv4Prefix) -> Self {
        ControllerState {
            policy,
            subscribers: HashMap::new(),
            ues: HashMap::new(),
            by_loc: HashMap::new(),
            reserved: HashMap::new(),
            permanent_pool,
            next_permanent: 1, // .0 reserved
            freed_permanent: Vec::new(),
            version: 0,
        }
    }

    /// Current replication version (bumps on every mutation).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Registers (or updates) a subscriber's attributes.
    pub fn put_subscriber(&mut self, attrs: SubscriberAttributes) {
        self.subscribers.insert(attrs.imsi, attrs);
        self.version += 1;
    }

    /// A subscriber's attributes.
    pub fn subscriber(&self, imsi: UeImsi) -> Result<&SubscriberAttributes> {
        self.subscribers
            .get(&imsi)
            .ok_or_else(|| Error::NotFound(format!("unknown subscriber {imsi}")))
    }

    /// Number of registered subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Allocates a permanent address (idempotent per subscriber: an
    /// already-attached or re-attaching UE keeps its address).
    fn permanent_ip_for(&mut self, imsi: UeImsi) -> Result<Ipv4Addr> {
        if let Some(r) = self.ues.get(&imsi) {
            return Ok(r.permanent_ip);
        }
        if let Some(ip) = self.freed_permanent.pop() {
            return Ok(ip);
        }
        if u64::from(self.next_permanent) >= self.permanent_pool.size() {
            return Err(Error::Exhausted(format!(
                "permanent address pool {} exhausted",
                self.permanent_pool
            )));
        }
        let ip = Ipv4Addr::from(self.permanent_pool.raw_bits() + self.next_permanent);
        self.next_permanent += 1;
        Ok(ip)
    }

    /// Records a UE attachment (or re-attachment after detach). The UE id
    /// comes from the local agent. Returns the record.
    pub fn attach(
        &mut self,
        imsi: UeImsi,
        bs: BaseStationId,
        ue_id: UeId,
        now: SimTime,
    ) -> Result<UeRecord> {
        self.attach_with_ip(imsi, bs, ue_id, now, None)
    }

    /// [`attach`](Self::attach) with an externally allocated permanent
    /// address. The sharded controller draws permanent addresses from
    /// per-shard ranges ([`softcell_types::ShardRange`]) so shards never
    /// contend on this state's pool; `None` falls back to the pool. A
    /// re-attach keeps the address first assigned either way (§3.1:
    /// permanent addresses never change).
    pub fn attach_with_ip(
        &mut self,
        imsi: UeImsi,
        bs: BaseStationId,
        ue_id: UeId,
        now: SimTime,
        preallocated: Option<Ipv4Addr>,
    ) -> Result<UeRecord> {
        self.subscriber(imsi)?;
        if let Some(existing) = self.ues.get(&imsi) {
            return Err(Error::InvalidState(format!(
                "{imsi} already attached at {}",
                existing.bs
            )));
        }
        if !self.location_available(bs, ue_id, imsi) {
            return Err(Error::InvalidState(format!(
                "location ({bs},{ue_id}) already occupied or reserved"
            )));
        }
        let permanent_ip = match preallocated {
            Some(ip) => ip,
            None => self.permanent_ip_for(imsi)?,
        };
        self.reserved.remove(&(bs, ue_id));
        let rec = UeRecord {
            imsi,
            permanent_ip,
            bs,
            ue_id,
            since: now,
        };
        self.ues.insert(imsi, rec);
        self.by_loc.insert((bs, ue_id), imsi);
        self.version += 1;
        Ok(rec)
    }

    /// Moves a UE to a new location (handoff). Returns (old, new) records.
    pub fn move_ue(
        &mut self,
        imsi: UeImsi,
        new_bs: BaseStationId,
        new_ue_id: UeId,
        now: SimTime,
    ) -> Result<(UeRecord, UeRecord)> {
        let old = *self
            .ues
            .get(&imsi)
            .ok_or_else(|| Error::NotFound(format!("{imsi} not attached")))?;
        if !self.location_available(new_bs, new_ue_id, imsi) {
            return Err(Error::InvalidState(format!(
                "location ({new_bs},{new_ue_id}) already occupied or reserved"
            )));
        }
        // The old location-dependent address must not be reassigned while
        // old flows still use it (§5.1): it moves into the reserved set
        // until the mobility transition expires.
        self.by_loc.remove(&(old.bs, old.ue_id));
        self.reserved.insert((old.bs, old.ue_id), imsi);
        self.reserved.remove(&(new_bs, new_ue_id));
        let new = UeRecord {
            bs: new_bs,
            ue_id: new_ue_id,
            since: now,
            ..old
        };
        self.ues.insert(imsi, new);
        self.by_loc.insert((new_bs, new_ue_id), imsi);
        self.version += 1;
        Ok((old, new))
    }

    /// Detaches a UE, releasing its permanent address.
    pub fn detach(&mut self, imsi: UeImsi) -> Result<UeRecord> {
        let rec = self
            .ues
            .remove(&imsi)
            .ok_or_else(|| Error::NotFound(format!("{imsi} not attached")))?;
        self.by_loc.remove(&(rec.bs, rec.ue_id));
        // a detached UE's anchored flows are dead: its reservations lapse
        self.reserved.retain(|_, owner| *owner != imsi);
        self.freed_permanent.push(rec.permanent_ip);
        self.version += 1;
        Ok(rec)
    }

    /// The record of an attached UE.
    pub fn ue(&self, imsi: UeImsi) -> Result<&UeRecord> {
        self.ues
            .get(&imsi)
            .ok_or_else(|| Error::NotFound(format!("{imsi} not attached")))
    }

    /// Reverse lookup: who is at a location.
    pub fn at_location(&self, bs: BaseStationId, ue_id: UeId) -> Option<UeImsi> {
        self.by_loc.get(&(bs, ue_id)).copied()
    }

    /// Whether a location may be assigned to `imsi`: neither occupied
    /// nor reserved by another subscriber's in-transition flows.
    pub fn location_available(&self, bs: BaseStationId, ue_id: UeId, imsi: UeImsi) -> bool {
        !self.by_loc.contains_key(&(bs, ue_id))
            && self
                .reserved
                .get(&(bs, ue_id))
                .map(|owner| *owner == imsi)
                .unwrap_or(true)
    }

    /// Releases a reserved location once its transition has expired. A
    /// location the subscriber has since reclaimed (returned home) stays
    /// live.
    pub fn release_location(&mut self, bs: BaseStationId, ue_id: UeId) {
        if !self.by_loc.contains_key(&(bs, ue_id)) {
            self.reserved.remove(&(bs, ue_id));
            self.version += 1;
        }
    }

    /// Number of reserved (in-transition) locations.
    pub fn reserved_count(&self) -> usize {
        self.reserved.len()
    }

    /// All attached UEs (iteration order unspecified).
    pub fn attached(&self) -> impl Iterator<Item = &UeRecord> {
        self.ues.values()
    }

    /// Number of attached UEs.
    pub fn attached_count(&self) -> usize {
        self.ues.len()
    }

    /// Drops all UE-location state (used when a recovering replica is
    /// about to rebuild it from the local agents, §5.2).
    pub fn clear_locations(&mut self) {
        self.ues.clear();
        self.by_loc.clear();
        self.version += 1;
    }

    /// Restores one UE record during location rebuild.
    pub fn restore_location(&mut self, rec: UeRecord) {
        self.by_loc.insert((rec.bs, rec.ue_id), rec.imsi);
        self.ues.insert(rec.imsi, rec);
        self.version += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softcell_policy::ServicePolicy;

    fn state() -> ControllerState {
        let mut s = ControllerState::new(
            ServicePolicy::example_carrier_a(1),
            "100.64.0.0/10".parse().unwrap(),
        );
        for i in 0..4 {
            s.put_subscriber(SubscriberAttributes::default_home(UeImsi(i)));
        }
        s
    }

    #[test]
    fn attach_assigns_distinct_permanent_ips() {
        let mut s = state();
        let a = s
            .attach(UeImsi(0), BaseStationId(0), UeId(0), SimTime::ZERO)
            .unwrap();
        let b = s
            .attach(UeImsi(1), BaseStationId(0), UeId(1), SimTime::ZERO)
            .unwrap();
        assert_ne!(a.permanent_ip, b.permanent_ip);
        assert!(Ipv4Prefix::from(a.permanent_ip).network().octets()[0] == 100);
        assert_eq!(s.attached_count(), 2);
    }

    #[test]
    fn attach_requires_known_subscriber_and_free_location() {
        let mut s = state();
        assert!(s
            .attach(UeImsi(99), BaseStationId(0), UeId(0), SimTime::ZERO)
            .is_err());
        s.attach(UeImsi(0), BaseStationId(0), UeId(0), SimTime::ZERO)
            .unwrap();
        // same UE twice
        assert!(s
            .attach(UeImsi(0), BaseStationId(1), UeId(0), SimTime::ZERO)
            .is_err());
        // same slot twice
        assert!(s
            .attach(UeImsi(1), BaseStationId(0), UeId(0), SimTime::ZERO)
            .is_err());
    }

    #[test]
    fn permanent_ip_survives_handoff_not_detach() {
        let mut s = state();
        let rec = s
            .attach(UeImsi(0), BaseStationId(0), UeId(0), SimTime::ZERO)
            .unwrap();
        let (old, new) = s
            .move_ue(UeImsi(0), BaseStationId(1), UeId(5), SimTime::from_secs(10))
            .unwrap();
        assert_eq!(old.bs, BaseStationId(0));
        assert_eq!(new.bs, BaseStationId(1));
        assert_eq!(new.permanent_ip, rec.permanent_ip, "permanent IP is stable");
        assert_eq!(s.at_location(BaseStationId(1), UeId(5)), Some(UeImsi(0)));
        assert_eq!(s.at_location(BaseStationId(0), UeId(0)), None);

        let gone = s.detach(UeImsi(0)).unwrap();
        assert_eq!(gone.permanent_ip, rec.permanent_ip);
        // the address is recycled for the next newcomer
        let again = s
            .attach(UeImsi(1), BaseStationId(0), UeId(0), SimTime::ZERO)
            .unwrap();
        assert_eq!(again.permanent_ip, rec.permanent_ip);
    }

    #[test]
    fn version_bumps_on_mutation() {
        let mut s = state();
        let v0 = s.version();
        s.attach(UeImsi(0), BaseStationId(0), UeId(0), SimTime::ZERO)
            .unwrap();
        assert!(s.version() > v0);
    }

    #[test]
    fn location_rebuild_round_trips() {
        let mut s = state();
        s.attach(UeImsi(0), BaseStationId(0), UeId(0), SimTime::ZERO)
            .unwrap();
        s.attach(UeImsi(1), BaseStationId(1), UeId(3), SimTime::ZERO)
            .unwrap();
        let saved: Vec<UeRecord> = s.attached().copied().collect();
        s.clear_locations();
        assert_eq!(s.attached_count(), 0);
        for r in saved {
            s.restore_location(r);
        }
        assert_eq!(s.attached_count(), 2);
        assert_eq!(s.at_location(BaseStationId(1), UeId(3)), Some(UeImsi(1)));
    }

    #[test]
    fn move_rejects_occupied_target() {
        let mut s = state();
        s.attach(UeImsi(0), BaseStationId(0), UeId(0), SimTime::ZERO)
            .unwrap();
        s.attach(UeImsi(1), BaseStationId(1), UeId(0), SimTime::ZERO)
            .unwrap();
        assert!(s
            .move_ue(UeImsi(0), BaseStationId(1), UeId(0), SimTime::ZERO)
            .is_err());
    }
}
