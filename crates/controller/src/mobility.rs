//! Policy consistency under mobility (paper §5.1).
//!
//! When a UE moves, its *ongoing* flows must keep traversing the same
//! middlebox instances while reaching the UE at the new base station;
//! *new* flows should use fresh paths from the new location. SoftCell's
//! mechanism, reproduced here:
//!
//! * **The old access switch stays the mobility anchor.** Downlink
//!   packets of old flows still carry the old location-dependent address
//!   and arrive at the old base station via the old policy path.
//! * **Long-lived tunnels between base-station pairs** carry anchored
//!   traffic onward: the old access switch rewrites the packet's tag
//!   bits to a per-pair *tunnel tag* and the fabric forwards on that tag
//!   alone, so the core holds no per-UE tunnel state.
//! * **Microflow rules are copied to the new access switch** so uplink
//!   packets of old flows keep using the old address and tag; they ride
//!   per-UE, input-port-qualified anchor rules back to the old access
//!   switch and continue along the old path (triangle routing).
//! * **Shortcuts** splice long-lived downlink flows directly from a
//!   switch on the old path to the new base station, with a soft
//!   timeout.
//!
//! All transition state is transient (per-UE rules expire); the tunnels
//! are shared by every UE moving between the pair and reference-counted
//! against live transitions — when the last transition using a pair
//! ends, the tunnel is garbage-collected and its tag returns to the
//! pool.

use std::collections::HashMap;

use softcell_dataplane::matcher::{conventional_priority, Direction, Match};
use softcell_dataplane::{Action, MicroflowAction};
use softcell_packet::FiveTuple;
use softcell_policy::UeClassifier;
use softcell_types::{
    BaseStationId, Error, Ipv4Prefix, PolicyTag, Result, SimTime, SwitchId, UeId, UeImsi,
};

use crate::core::CentralController;
use crate::ops::{tag_field, RuleOp};
use crate::state::UeRecord;

/// Priority band for mobility rules: above every policy rule — qualified
/// or not (qualified policy rules reach ~55 000) — so anchored traffic is
/// redirected before normal forwarding sees it.
pub const MOBILITY_PRIORITY: u16 = 60_000;

/// One active flow being handed over, as reported by the old local agent.
#[derive(Clone, Copy, Debug)]
pub struct FlowRecord {
    /// The uplink five-tuple as the UE sends it (permanent source).
    pub uplink: FiveTuple,
    /// The downlink five-tuple as it currently arrives from the fabric
    /// (possibly re-keyed under a tunnel tag by an earlier move).
    pub downlink: FiveTuple,
    /// The downlink tuple as originally keyed at the anchor station.
    pub downlink_original: FiveTuple,
    /// The uplink microflow action at the old access switch.
    pub up_action: MicroflowAction,
    /// The downlink microflow action at the old access switch.
    pub down_action: MicroflowAction,
}

/// Everything the network must do to complete a handoff.
#[derive(Clone, Debug)]
pub struct HandoffPlan {
    /// Record before the move.
    pub old: UeRecord,
    /// Record after the move.
    pub new: UeRecord,
    /// Classifier for the new agent to adopt.
    pub classifier: UeClassifier,
    /// Fabric rule installs/removals (tunnel legs, anchor rules).
    pub ops: Vec<RuleOp>,
    /// Downlink microflow entries to remove at the *old* access switch
    /// (their traffic is redirected into the tunnel instead).
    pub old_microflow_removals: Vec<FiveTuple>,
    /// Microflow entries to install at the *new* access switch.
    pub new_microflow_installs: Vec<(FiveTuple, MicroflowAction)>,
    /// The carried flows — the new agent records these so a *further*
    /// handoff can move them again (anchoring survives chains of moves).
    pub carried_flows: Vec<crate::agent::AgentFlow>,
}

/// A base-station-pair tunnel. Long-lived while any transition uses it;
/// garbage-collected (legs removed, tag released) once the last
/// referencing transition ends, so churn cannot exhaust the tag space.
#[derive(Clone, Debug)]
struct Tunnel {
    tag: PolicyTag,
    /// Switch sequence from the old access switch to the new one.
    path: Vec<SwitchId>,
    /// Removals for the forward legs installed at creation.
    teardown: Vec<RuleOp>,
    /// Live transitions referencing this tunnel.
    refs: usize,
}

/// Per-UE transition state, expiring after a soft timeout.
#[derive(Clone, Debug)]
struct Transition {
    teardown: Vec<RuleOp>,
    /// Every location this UE's anchored flows still occupy; all are
    /// released when the transition expires.
    reserved_locs: Vec<(BaseStationId, UeId)>,
    /// Tunnels this transition holds a reference on; released (possibly
    /// garbage-collecting the tunnel) when the transition ends.
    tunnels: Vec<(BaseStationId, BaseStationId)>,
    deadline: SimTime,
    /// Per anchor LocIP: per-flow launch specs `(flow slot, original
    /// policy tag, original out-port at the anchor's access switch)`.
    /// Needed to re-anchor the same flows after a further move, and to
    /// restore the original tag when anchored uplink traffic (which
    /// rides the tunnel under the *tunnel* tag) is launched back onto
    /// its old policy path. Keyed by anchor *address*: a UE revisiting
    /// a station can hold a different local id there.
    launch_specs: HashMap<std::net::Ipv4Addr, Vec<(u16, PolicyTag, softcell_types::PortNo)>>,
}

/// Mobility bookkeeping inside the central controller.
#[derive(Debug)]
pub struct MobilityManager {
    tunnels: HashMap<(BaseStationId, BaseStationId), Tunnel>,
    transitions: HashMap<UeImsi, Transition>,
    /// How long transition rules live without renewal (the §5.1 "soft
    /// timeout ... indicating that the old flow has ended").
    pub transition_ttl: softcell_types::SimDuration,
}

impl Default for MobilityManager {
    fn default() -> Self {
        MobilityManager {
            tunnels: HashMap::new(),
            transitions: HashMap::new(),
            transition_ttl: softcell_types::SimDuration::from_secs(120),
        }
    }
}

impl MobilityManager {
    /// Number of live tunnels.
    pub fn tunnel_count(&self) -> usize {
        self.tunnels.len()
    }

    /// Number of UEs in transition.
    pub fn transitions_active(&self) -> usize {
        self.transitions.len()
    }
}

impl<'t> CentralController<'t> {
    /// Performs a handoff: moves the UE's controller state and computes
    /// the full plan. Flows are grouped by their **anchor** station (the
    /// one their location-dependent address decodes to — where they
    /// originally started), so chains of moves keep working: downlink
    /// traffic always arrives at the anchor via the old policy path and
    /// is tunneled from there straight to the UE's *current* station.
    /// `flows` is the departing agent's active flow list.
    pub fn handoff(
        &mut self,
        imsi: UeImsi,
        new_bs: BaseStationId,
        new_ue_id: UeId,
        flows: &[FlowRecord],
        now: SimTime,
    ) -> Result<HandoffPlan> {
        let (old, new) = self.state_mut().move_ue(imsi, new_bs, new_ue_id, now)?;
        let attrs = *self.state().subscriber(imsi)?;
        let classifier = UeClassifier::compile(&self.state().policy, self.apps(), &attrs);

        let scheme = self.config().scheme;
        let ports = self.config().ports;

        let mut ops: Vec<RuleOp> = Vec::new();
        let mut teardown: Vec<RuleOp> = Vec::new();

        // 0. a previous transition's per-UE rules are superseded: tear
        //    them down now (the anchors get fresh rules below)
        let prev = self.mobility_mut().transitions.remove(&imsi);
        let mut prev_launch_specs = HashMap::new();
        let mut reserved_locs: Vec<(BaseStationId, UeId)> = Vec::new();
        let mut prev_tunnels: Vec<(BaseStationId, BaseStationId)> = Vec::new();
        if let Some(prev) = prev {
            ops.extend(prev.teardown);
            prev_launch_specs = prev.launch_specs;
            reserved_locs = prev.reserved_locs;
            prev_tunnels = prev.tunnels;
        }
        if !reserved_locs.contains(&(old.bs, old.ue_id)) {
            reserved_locs.push((old.bs, old.ue_id));
        }
        // the location we are moving to is live again, not reserved
        reserved_locs.retain(|loc| *loc != (new.bs, new.ue_id));

        // group flows by their anchor LocIP (the downlink destination):
        // each distinct location-dependent address needs its own
        // redirect/launch rules, even when two addresses share a station
        // (a UE that revisited the station under a different local id)
        let mut groups: Vec<(std::net::Ipv4Addr, Vec<&FlowRecord>)> = Vec::new();
        for f in flows {
            let anchor_addr = f.downlink.dst;
            match groups.iter_mut().find(|(a, _)| *a == anchor_addr) {
                Some((_, g)) => g.push(f),
                None => groups.push((anchor_addr, vec![f])),
            }
        }
        groups.sort_by_key(|(a, _)| *a);

        let new_access = self.topology().base_station(new_bs).access_switch;
        let new_radio = self.topology().base_station(new_bs).radio_port;
        let mut old_microflow_removals = Vec::with_capacity(flows.len());
        let mut new_microflow_installs = Vec::with_capacity(flows.len() * 2);
        let mut carried_flows = Vec::with_capacity(flows.len());
        let mut launch_specs: HashMap<
            std::net::Ipv4Addr,
            Vec<(u16, PolicyTag, softcell_types::PortNo)>,
        > = HashMap::new();
        let mut used_tunnels: Vec<(BaseStationId, BaseStationId)> = Vec::new();

        let old_loc_addr = scheme.encode(softcell_types::LocIp::new(old.bs, old.ue_id))?;
        for (anchor_addr, group) in groups {
            let anchor_loc = scheme.decode(anchor_addr)?;
            let anchor = anchor_loc.base_station;
            // Returning to the anchor *station* (same or fresh local id —
            // the anchored flows keep their old address either way): no
            // tunnel, plain local delivery under the original keys.
            if anchor == new_bs {
                // The UE returned home: anchored flows revert to plain
                // local delivery under their original keys; no tunnel.
                let specs = prev_launch_specs
                    .get(&anchor_addr)
                    .cloned()
                    .ok_or_else(|| {
                        Error::InvalidState(format!(
                            "returning to {anchor} without recorded launch specs"
                        ))
                    })?;
                for f in &group {
                    old_microflow_removals.push(f.downlink);
                    if let MicroflowAction::RewriteSrc {
                        addr, port, dscp, ..
                    } = f.up_action
                    {
                        let (_, slot) = ports.decode(port);
                        let (_, orig_tag, out) =
                            *specs.iter().find(|(sl, _, _)| *sl == slot).ok_or_else(|| {
                                Error::InvalidState(format!(
                                    "no launch spec for slot {slot} at {anchor}"
                                ))
                            })?;
                        new_microflow_installs.push((
                            f.uplink,
                            MicroflowAction::RewriteSrc {
                                addr,
                                port: ports.encode(orig_tag, slot)?,
                                out,
                                dscp,
                            },
                        ));
                    }
                    if let MicroflowAction::RewriteDst { addr, port, .. } = f.down_action {
                        new_microflow_installs.push((
                            f.downlink_original,
                            MicroflowAction::RewriteDst {
                                addr,
                                port,
                                out: new_radio,
                            },
                        ));
                    }
                    carried_flows.push(crate::agent::AgentFlow {
                        uplink: f.uplink,
                        downlink: f.downlink_original,
                        downlink_original: f.downlink_original,
                    });
                }
                launch_specs.insert(anchor_addr, specs);
                continue;
            }
            let anchor_host = Ipv4Prefix::host(anchor_addr);
            let tunnel = self.ensure_tunnel(anchor, new_bs, &mut ops)?;
            if !used_tunnels.contains(&(anchor, new_bs)) {
                used_tunnels.push((anchor, new_bs));
            }
            let tunnel_tag = tunnel.tag;
            let tunnel_path = tunnel.path.clone();
            let anchor_access = tunnel_path[0];
            debug_assert_eq!(*tunnel_path.last().expect("two ends"), new_access);

            // 1. anchor access: redirect the UE's downlink into the
            //    tunnel — one per-UE rule matching the anchor LocIP host
            let (tvalue, tmask) = ports.tag_match(tunnel_tag);
            let redirect_match = Match::prefix(Direction::Downlink, anchor_host);
            let out = self
                .topology()
                .port_towards(anchor_access, tunnel_path[1])
                .ok_or_else(|| Error::NotFound("tunnel first hop unlinked".into()))?;
            ops.push(RuleOp::Install {
                switch: anchor_access,
                priority: MOBILITY_PRIORITY,
                matcher: redirect_match,
                action: Action::RewritePortBitsForward {
                    field: tag_field(Direction::Downlink),
                    value: tvalue,
                    mask: tmask,
                    out,
                },
            });
            teardown.push(RuleOp::Remove {
                switch: anchor_access,
                matcher: redirect_match,
            });

            // 2. uplink anchor rules along the reverse tunnel path:
            //    per-UE, input-port qualified, and scoped to the tunnel
            //    tag — anchored uplink rides the tunnel under the tunnel
            //    tag precisely so these rules can never capture the same
            //    UE's traffic travelling its old policy path where the
            //    two paths share a directed edge (a forwarding loop
            //    found by the randomized churn test at k=4).
            for i in (1..tunnel_path.len()).rev() {
                let sw = tunnel_path[i];
                if sw == new_access {
                    continue; // microflow copies name their out-port
                }
                let from_new_side = tunnel_path[i + 1];
                let towards_anchor = tunnel_path[i - 1];
                let in_port = self
                    .topology()
                    .port_towards(sw, from_new_side)
                    .ok_or_else(|| Error::NotFound("tunnel hop unlinked".into()))?;
                let out = self
                    .topology()
                    .port_towards(sw, towards_anchor)
                    .ok_or_else(|| Error::NotFound("tunnel hop unlinked".into()))?;
                let m = Match::tag_and_prefix(Direction::Uplink, tunnel_tag, anchor_host, &ports)
                    .from_port(in_port);
                ops.push(RuleOp::Install {
                    switch: sw,
                    priority: MOBILITY_PRIORITY,
                    matcher: m,
                    action: Action::Forward(out),
                });
                teardown.push(RuleOp::Remove {
                    switch: sw,
                    matcher: m,
                });
            }

            // 3. launch rules at the anchor access: per flow, matching
            //    the exact tunnel-tagged source port and restoring the
            //    flow's *original* policy tag before forwarding onto the
            //    old path. (Per-flow state at an access switch is cheap
            //    and transient — §5.1 copies per-flow rules anyway.)
            let specs: Vec<(u16, PolicyTag, softcell_types::PortNo)> = if anchor_addr
                == old_loc_addr
            {
                let mut specs = Vec::new();
                for f in &group {
                    if let MicroflowAction::RewriteSrc { port, out, .. } = f.up_action {
                        let (tag, slot) = ports.decode(port);
                        if !specs.iter().any(|(sl, _, _)| *sl == slot) {
                            specs.push((slot, tag, out));
                        }
                    }
                }
                specs
            } else {
                prev_launch_specs.get(&anchor_addr).cloned().ok_or_else(|| {
                        Error::InvalidState(format!(
                            "no launch specs for anchor {anchor_addr}                              (flows older than the transition?)"
                        ))
                    })?
            };
            let tunnel_in = self
                .topology()
                .port_towards(anchor_access, tunnel_path[1])
                .expect("checked above");
            for &(slot, orig_tag, out) in &specs {
                let tunneled_src = ports.encode(tunnel_tag, slot)?;
                let (ovalue, omask) = ports.tag_match(orig_tag);
                let m = Match {
                    src_prefix: Some(anchor_host),
                    src_port: Some((tunneled_src, u16::MAX)),
                    in_port: Some(tunnel_in),
                    ..Match::ANY
                };
                ops.push(RuleOp::Install {
                    switch: anchor_access,
                    priority: MOBILITY_PRIORITY,
                    matcher: m,
                    action: Action::RewritePortBitsForward {
                        field: tag_field(Direction::Uplink),
                        value: ovalue,
                        mask: omask,
                        out,
                    },
                });
                teardown.push(RuleOp::Remove {
                    switch: anchor_access,
                    matcher: m,
                });
            }
            launch_specs.insert(anchor_addr, specs);

            // 4. microflow surgery: remove delivery at the departing
            //    station, install copies at the new one
            let reverse_out = self
                .topology()
                .port_towards(new_access, tunnel_path[tunnel_path.len() - 2])
                .ok_or_else(|| Error::NotFound("tunnel last hop unlinked".into()))?;
            for f in &group {
                old_microflow_removals.push(f.downlink);

                // uplink copy: the anchor LocIP with the *tunnel* tag in
                // the source port (the launch rule at the anchor swaps
                // the original tag back), out via the reverse tunnel
                if let MicroflowAction::RewriteSrc {
                    addr, port, dscp, ..
                } = f.up_action
                {
                    let (_, slot) = ports.decode(port);
                    new_microflow_installs.push((
                        f.uplink,
                        MicroflowAction::RewriteSrc {
                            addr,
                            port: ports.encode(tunnel_tag, slot)?,
                            out: reverse_out,
                            dscp,
                        },
                    ));
                }

                // downlink copy: re-keyed under this tunnel's tag (slot
                // bits survive); delivery restores the permanent endpoint
                let (_, slot) = ports.decode(f.downlink.dst_port);
                let tunneled_port = ports.encode(tunnel_tag, slot)?;
                let rekeyed = FiveTuple {
                    dst_port: tunneled_port,
                    ..f.downlink
                };
                if let MicroflowAction::RewriteDst { addr, port, .. } = f.down_action {
                    new_microflow_installs.push((
                        rekeyed,
                        MicroflowAction::RewriteDst {
                            addr,
                            port,
                            out: new_radio,
                        },
                    ));
                }
                carried_flows.push(crate::agent::AgentFlow {
                    uplink: f.uplink,
                    downlink: rekeyed,
                    downlink_original: f.downlink_original,
                });
            }
        }

        // take the new transition's tunnel references *before* dropping
        // the previous transition's, so a pair both transitions use is
        // never torn down and immediately recreated
        for pair in &used_tunnels {
            if let Some(t) = self.mobility_mut().tunnels.get_mut(pair) {
                t.refs += 1;
            }
        }
        let ttl = self.mobility().transition_ttl;
        self.mobility_mut().transitions.insert(
            imsi,
            Transition {
                teardown,
                reserved_locs,
                tunnels: used_tunnels,
                deadline: now + ttl,
                launch_specs,
            },
        );
        for pair in prev_tunnels {
            self.release_tunnel_ref(pair, &mut ops);
        }

        Ok(HandoffPlan {
            old,
            new,
            classifier,
            ops,
            old_microflow_removals,
            new_microflow_installs,
            carried_flows,
        })
    }

    /// Installs a shortcut for one long-lived downlink flow: per-flow
    /// rules from the best meet point on the old path directly to the
    /// new base station (§5.1 "temporary shortcut paths"). Returns the
    /// rule ops; they share the transition's soft timeout.
    pub fn install_shortcut(
        &mut self,
        imsi: UeImsi,
        old_path_switches: &[SwitchId],
        downlink: FiveTuple,
        now: SimTime,
    ) -> Result<Vec<RuleOp>> {
        let new_rec = *self.state().ue(imsi)?;
        let new_access = self.topology().base_station(new_rec.bs).access_switch;

        // meet point: the old-path switch closest to the new access
        let mut best: Option<(u32, SwitchId)> = None;
        for &sw in old_path_switches {
            if let Some(d) = self.paths_mut().distance(sw, new_access) {
                if best.map(|(bd, _)| d < bd).unwrap_or(true) {
                    best = Some((d, sw));
                }
            }
        }
        let (_, meet) = best.ok_or_else(|| Error::NoPath("no reachable meet point".into()))?;
        let splice = self.paths_mut().path(meet, new_access)?;

        let host = Ipv4Prefix::host(downlink.dst);
        let mut ops = Vec::new();
        let mut teardown = Vec::new();
        for w in splice.windows(2) {
            let (sw, next) = (w[0], w[1]);
            if sw == new_access {
                break;
            }
            let out = self
                .topology()
                .port_towards(sw, next)
                .ok_or_else(|| Error::NotFound("splice hop unlinked".into()))?;
            let m = Match {
                dst_prefix: Some(host),
                dst_port: Some((downlink.dst_port, u16::MAX)),
                proto: Some(downlink.proto),
                ..Match::ANY
            };
            ops.push(RuleOp::Install {
                switch: sw,
                priority: MOBILITY_PRIORITY + 100, // above the tunnel redirect
                matcher: m,
                action: Action::Forward(out),
            });
            teardown.push(RuleOp::Remove {
                switch: sw,
                matcher: m,
            });
        }

        let ttl = self.mobility().transition_ttl;
        if let Some(t) = self.mobility_mut().transitions.get_mut(&imsi) {
            t.teardown.extend(teardown);
            t.deadline = t.deadline.max(now + ttl);
        }
        Ok(ops)
    }

    /// Aborts a UE's transition immediately (detach): its anchored flows
    /// are dead, so the per-UE mobility rules come down now and the
    /// reserved locations are released. Returns the teardown ops.
    pub fn abort_transition(&mut self, imsi: UeImsi) -> Vec<RuleOp> {
        let Some(t) = self.mobility_mut().transitions.remove(&imsi) else {
            return Vec::new();
        };
        for (bs, ue_id) in &t.reserved_locs {
            self.state_mut().release_location(*bs, *ue_id);
        }
        let mut ops = t.teardown;
        for pair in t.tunnels {
            self.release_tunnel_ref(pair, &mut ops);
        }
        ops
    }

    /// Expires finished transitions: returns the teardown rule ops and
    /// releases the old location-dependent addresses ("during the
    /// transition, the controller does not assign the old
    /// location-dependent address to any new UEs" — after it, it may).
    pub fn expire_transitions(&mut self, now: SimTime) -> Vec<RuleOp> {
        let expired: Vec<UeImsi> = self
            .mobility()
            .transitions
            .iter()
            .filter(|(_, t)| t.deadline <= now)
            .map(|(imsi, _)| *imsi)
            .collect();
        let mut ops = Vec::new();
        for imsi in expired {
            let t = self
                .mobility_mut()
                .transitions
                .remove(&imsi)
                .expect("listed above");
            ops.extend(t.teardown);
            for (bs, ue_id) in t.reserved_locs {
                self.state_mut().release_location(bs, ue_id);
            }
            for pair in t.tunnels {
                self.release_tunnel_ref(pair, &mut ops);
            }
        }
        ops
    }

    /// Drops one transition's reference on a tunnel. The last reference
    /// garbage-collects it: the forward legs come down and the raw tag
    /// returns to the pool, so base-station-pair churn cannot exhaust
    /// the tag space.
    fn release_tunnel_ref(&mut self, pair: (BaseStationId, BaseStationId), ops: &mut Vec<RuleOp>) {
        let Some(t) = self.mobility_mut().tunnels.get_mut(&pair) else {
            return;
        };
        t.refs = t.refs.saturating_sub(1);
        if t.refs > 0 {
            return;
        }
        let t = self
            .mobility_mut()
            .tunnels
            .remove(&pair)
            .expect("present above");
        ops.extend(t.teardown);
        self.installer_mut().release_raw_tag(t.tag);
    }

    /// Ensures the (from → to) tunnel exists, appending its rule ops on
    /// first creation.
    fn ensure_tunnel(
        &mut self,
        from: BaseStationId,
        to: BaseStationId,
        ops: &mut Vec<RuleOp>,
    ) -> Result<Tunnel> {
        if let Some(t) = self.mobility().tunnels.get(&(from, to)) {
            return Ok(t.clone());
        }
        let from_sw = self.topology().base_station(from).access_switch;
        let to_sw = self.topology().base_station(to).access_switch;
        let path = self.paths_mut().path(from_sw, to_sw)?;
        let tag = self
            .installer_mut()
            .allocate_raw_tag()
            .ok_or_else(|| Error::Exhausted("no tag left for tunnel".into()))?;

        // forward legs: tag rules (with the carrier-prefix guard — see
        // ops::lower_delta) from each intermediate switch towards the
        // new access switch
        let ports = self.config().ports;
        let carrier = self.config().scheme.carrier();
        let mut teardown = Vec::new();
        for w in path.windows(2) {
            let (sw, next) = (w[0], w[1]);
            if sw == from_sw {
                continue; // the per-UE redirect rule is the entry point
            }
            let out = self
                .topology()
                .port_towards(sw, next)
                .ok_or_else(|| Error::NotFound("tunnel hop unlinked".into()))?;
            let m = Match::tag_and_prefix(Direction::Downlink, tag, carrier, &ports);
            ops.push(RuleOp::Install {
                switch: sw,
                priority: conventional_priority(&m),
                matcher: m,
                action: Action::Forward(out),
            });
            teardown.push(RuleOp::Remove {
                switch: sw,
                matcher: m,
            });
        }

        let t = Tunnel {
            tag,
            path,
            teardown,
            refs: 0,
        };
        self.mobility_mut().tunnels.insert((from, to), t.clone());
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{ControllerConfig, PathTags};
    use softcell_policy::clause::ClauseId;
    use softcell_policy::{ServicePolicy, SubscriberAttributes};
    use softcell_topology::small_topology;
    use softcell_types::PortNo;
    use std::net::Ipv4Addr;

    fn controller(topo: &softcell_topology::Topology) -> CentralController<'_> {
        let mut c = CentralController::new(
            topo,
            ControllerConfig::simulation(),
            ServicePolicy::example_carrier_a(1),
        );
        for i in 0..4 {
            c.put_subscriber(SubscriberAttributes::default_home(UeImsi(i)));
        }
        c
    }

    fn sample_flow(
        ctl: &CentralController<'_>,
        tags: PathTags,
        permanent: Ipv4Addr,
        ue_id: UeId,
    ) -> FlowRecord {
        let ports = ctl.config().ports;
        let scheme = ctl.config().scheme;
        let loc = scheme
            .encode(softcell_types::LocIp::new(BaseStationId(0), ue_id))
            .unwrap();
        let up_port = ports.encode(tags.uplink_entry, 3).unwrap();
        let down_port = ports.encode(tags.downlink_final, 3).unwrap();
        let uplink = FiveTuple {
            src: permanent,
            dst: Ipv4Addr::new(93, 184, 216, 34),
            src_port: 50000,
            dst_port: 443,
            proto: softcell_packet::Protocol::Tcp,
        };
        let downlink = FiveTuple {
            src: uplink.dst,
            dst: loc,
            src_port: 443,
            dst_port: down_port,
            proto: uplink.proto,
        };
        FlowRecord {
            uplink,
            downlink,
            downlink_original: downlink,
            up_action: MicroflowAction::RewriteSrc {
                addr: loc,
                port: up_port,
                out: tags.access_out_port,
                dscp: None,
            },
            down_action: MicroflowAction::RewriteDst {
                addr: permanent,
                port: uplink.src_port,
                out: PortNo(1),
            },
        }
    }

    #[test]
    fn handoff_moves_state_and_produces_plan() {
        let topo = small_topology();
        let mut ctl = controller(&topo);
        let grant = ctl
            .attach_ue(UeImsi(0), BaseStationId(0), UeId(0), SimTime::ZERO)
            .unwrap();
        let tags = ctl
            .request_policy_path(BaseStationId(0), ClauseId(5))
            .unwrap();
        ctl.drain_ops();
        let flow = sample_flow(&ctl, tags, grant.record.permanent_ip, UeId(0));

        let plan = ctl
            .handoff(
                UeImsi(0),
                BaseStationId(3),
                UeId(0),
                &[flow],
                SimTime::from_secs(10),
            )
            .unwrap();
        assert_eq!(plan.old.bs, BaseStationId(0));
        assert_eq!(plan.new.bs, BaseStationId(3));
        assert_eq!(plan.old_microflow_removals, vec![flow.downlink]);
        // uplink + downlink copies at the new access switch
        assert_eq!(plan.new_microflow_installs.len(), 2);
        assert!(!plan.ops.is_empty(), "tunnel + anchor rules installed");
        assert_eq!(ctl.mobility().tunnel_count(), 1);
        assert_eq!(ctl.mobility().transitions_active(), 1);
        assert_eq!(ctl.state().ue(UeImsi(0)).unwrap().bs, BaseStationId(3));
    }

    #[test]
    fn tunnel_is_created_once_per_pair() {
        let topo = small_topology();
        let mut ctl = controller(&topo);
        let mut recs = Vec::new();
        for i in 0..2 {
            let g = ctl
                .attach_ue(UeImsi(i), BaseStationId(0), UeId(i as u16), SimTime::ZERO)
                .unwrap();
            recs.push(g.record);
        }
        let tags = ctl
            .request_policy_path(BaseStationId(0), ClauseId(5))
            .unwrap();
        let f0 = sample_flow(&ctl, tags, recs[0].permanent_ip, recs[0].ue_id);
        let f1 = sample_flow(&ctl, tags, recs[1].permanent_ip, recs[1].ue_id);
        let p1 = ctl
            .handoff(UeImsi(0), BaseStationId(1), UeId(0), &[f0], SimTime::ZERO)
            .unwrap();
        let p2 = ctl
            .handoff(UeImsi(1), BaseStationId(1), UeId(1), &[f1], SimTime::ZERO)
            .unwrap();
        assert_eq!(ctl.mobility().tunnel_count(), 1);
        // second handoff reuses the tunnel: strictly fewer fabric ops
        assert!(p2.ops.len() < p1.ops.len());
    }

    #[test]
    fn handoff_without_flows_is_lightweight() {
        // no active flows → no tunnel, no anchor rules; just the state
        // move and the classifier for the new agent
        let topo = small_topology();
        let mut ctl = controller(&topo);
        ctl.attach_ue(UeImsi(0), BaseStationId(0), UeId(0), SimTime::ZERO)
            .unwrap();
        let plan = ctl
            .handoff(UeImsi(0), BaseStationId(1), UeId(0), &[], SimTime::ZERO)
            .unwrap();
        assert!(plan.ops.is_empty());
        assert!(plan.carried_flows.is_empty());
        assert_eq!(ctl.mobility().tunnel_count(), 0);
        assert_eq!(ctl.state().ue(UeImsi(0)).unwrap().bs, BaseStationId(1));
    }

    #[test]
    fn downlink_copy_is_rekeyed_under_tunnel_tag() {
        let topo = small_topology();
        let mut ctl = controller(&topo);
        let grant = ctl
            .attach_ue(UeImsi(0), BaseStationId(0), UeId(0), SimTime::ZERO)
            .unwrap();
        let tags = ctl
            .request_policy_path(BaseStationId(0), ClauseId(5))
            .unwrap();
        let flow = sample_flow(&ctl, tags, grant.record.permanent_ip, UeId(0));
        let plan = ctl
            .handoff(UeImsi(0), BaseStationId(2), UeId(0), &[flow], SimTime::ZERO)
            .unwrap();
        let ports = ctl.config().ports;
        let down_copy = plan
            .new_microflow_installs
            .iter()
            .find(|(t, _)| t.dst == flow.downlink.dst)
            .unwrap();
        let (tag, slot) = ports.decode(down_copy.0.dst_port);
        assert_ne!(
            tag, tags.downlink_final,
            "tag bits now carry the tunnel tag"
        );
        let (_, orig_slot) = ports.decode(flow.downlink.dst_port);
        assert_eq!(slot, orig_slot, "flow slot bits survive the tunnel");
    }

    #[test]
    fn transition_expiry_tears_down_rules() {
        let topo = small_topology();
        let mut ctl = controller(&topo);
        let grant = ctl
            .attach_ue(UeImsi(0), BaseStationId(0), UeId(0), SimTime::ZERO)
            .unwrap();
        let tags = ctl
            .request_policy_path(BaseStationId(0), ClauseId(5))
            .unwrap();
        let flow = sample_flow(&ctl, tags, grant.record.permanent_ip, UeId(0));
        ctl.handoff(UeImsi(0), BaseStationId(1), UeId(0), &[flow], SimTime::ZERO)
            .unwrap();
        assert!(ctl.expire_transitions(SimTime::from_secs(1)).is_empty());
        let ops = ctl.expire_transitions(SimTime::from_secs(500));
        assert!(!ops.is_empty(), "teardown removes per-UE rules");
        assert!(ops.iter().all(|o| matches!(o, RuleOp::Remove { .. })));
        assert_eq!(ctl.mobility().transitions_active(), 0);
    }

    #[test]
    fn shortcut_extension_follows_configured_ttl() {
        // regression: install_shortcut used to extend the transition by a
        // hardcoded 120 s instead of the configured transition_ttl
        let topo = small_topology();
        let mut ctl = controller(&topo);
        ctl.mobility_mut().transition_ttl = softcell_types::SimDuration::from_secs(10);
        let grant = ctl
            .attach_ue(UeImsi(0), BaseStationId(0), UeId(0), SimTime::ZERO)
            .unwrap();
        let tags = ctl
            .request_policy_path(BaseStationId(0), ClauseId(5))
            .unwrap();
        let old_path: Vec<SwitchId> = ctl
            .routed_path(BaseStationId(0), ClauseId(5))
            .unwrap()
            .hops
            .iter()
            .map(|h| h.switch)
            .collect();
        let flow = sample_flow(&ctl, tags, grant.record.permanent_ip, UeId(0));
        ctl.handoff(UeImsi(0), BaseStationId(3), UeId(0), &[flow], SimTime::ZERO)
            .unwrap();
        // renew at t=5: deadline moves to 5 + ttl = 15, not 5 + 120
        ctl.install_shortcut(UeImsi(0), &old_path, flow.downlink, SimTime::from_secs(5))
            .unwrap();
        assert!(
            ctl.expire_transitions(SimTime::from_secs(12)).is_empty(),
            "shortcut renewal keeps the transition alive past the original deadline"
        );
        assert_eq!(ctl.mobility().transitions_active(), 1);
        let ops = ctl.expire_transitions(SimTime::from_secs(16));
        assert!(
            !ops.is_empty(),
            "expires at now + transition_ttl, not +120 s"
        );
        assert_eq!(ctl.mobility().transitions_active(), 0);
    }

    #[test]
    fn tunnel_gc_survives_more_pairs_than_tags() {
        // regression: tunnels allocated a raw tag per base-station pair
        // and never freed it, so handoff churn across enough distinct
        // pairs exhausted the tag space. Leave exactly ONE free tag and
        // churn through three pairs: only garbage collection makes
        // every round's tunnel allocation succeed.
        let topo = small_topology();
        let mut ctl = controller(&topo);
        let grant = ctl
            .attach_ue(UeImsi(0), BaseStationId(0), UeId(0), SimTime::ZERO)
            .unwrap();
        let tags = ctl
            .request_policy_path(BaseStationId(0), ClauseId(5))
            .unwrap();
        let capacity = usize::from(ctl.config().tag_policy.capacity);
        while ctl.installer().tags_in_use() < capacity - 1 {
            ctl.installer_mut().allocate_raw_tag().unwrap();
        }
        let baseline = ctl.installer().tags_in_use();
        let flow = sample_flow(&ctl, tags, grant.record.permanent_ip, UeId(0));
        let mut now = SimTime::ZERO;
        for round in 0..6u32 {
            let target = BaseStationId(1 + round % 3);
            // the flow anchors at station 0, where the UE sits: the
            // handoff builds the (0 → target) tunnel with the last tag
            ctl.handoff(UeImsi(0), target, UeId(0), &[flow], now)
                .unwrap_or_else(|e| panic!("round {round}: tag leak? {e}"));
            assert_eq!(ctl.mobility().tunnel_count(), 1);
            assert_eq!(ctl.installer().tags_in_use(), baseline + 1);
            now += softcell_types::SimDuration::from_secs(1_000);
            let ops = ctl.expire_transitions(now);
            assert!(
                ops.iter().all(|o| matches!(o, RuleOp::Remove { .. })),
                "expiry only removes rules"
            );
            assert_eq!(ctl.mobility().tunnel_count(), 0, "tunnel collected");
            assert_eq!(ctl.installer().tags_in_use(), baseline, "tag returned");
            // move home (no live flows: lightweight, no tunnel) for the
            // next round, and expire that transition's reservation too
            ctl.handoff(UeImsi(0), BaseStationId(0), UeId(0), &[], now)
                .unwrap();
            now += softcell_types::SimDuration::from_secs(1_000);
            ctl.expire_transitions(now);
        }
        assert_eq!(ctl.installer().tags_in_use(), baseline);
        assert_eq!(ctl.mobility().tunnel_count(), 0);
    }

    #[test]
    fn shortcut_splices_toward_new_station() {
        let topo = small_topology();
        let mut ctl = controller(&topo);
        let grant = ctl
            .attach_ue(UeImsi(0), BaseStationId(0), UeId(0), SimTime::ZERO)
            .unwrap();
        let tags = ctl
            .request_policy_path(BaseStationId(0), ClauseId(5))
            .unwrap();
        let old_path: Vec<SwitchId> = ctl
            .routed_path(BaseStationId(0), ClauseId(5))
            .unwrap()
            .hops
            .iter()
            .map(|h| h.switch)
            .collect();
        let flow = sample_flow(&ctl, tags, grant.record.permanent_ip, UeId(0));
        ctl.handoff(UeImsi(0), BaseStationId(3), UeId(0), &[flow], SimTime::ZERO)
            .unwrap();
        let ops = ctl
            .install_shortcut(UeImsi(0), &old_path, flow.downlink, SimTime::ZERO)
            .unwrap();
        assert!(!ops.is_empty());
        // shortcut rules are per-flow: they match the exact dst port
        for op in &ops {
            let RuleOp::Install { matcher, .. } = op else {
                panic!("shortcut only installs")
            };
            assert_eq!(matcher.dst_port, Some((flow.downlink.dst_port, u16::MAX)));
        }
    }
}
