//! Control-plane failure handling (paper §5.2).
//!
//! The controller's slow-changing state (policy, subscriber attributes,
//! policy paths) is replicated with strong consistency — every mutation
//! is applied to all replicas before it is acknowledged. The fast-moving
//! state, UE location, is *not* synchronously replicated: "upon a
//! controller failure, a replica can correctly rebuild the UE location
//! state by querying local agents", which works because "a UE only
//! associates with one base station at a time".
//!
//! Local agents hold only state derived from the controller (packet
//! classifiers, location-dependent addresses), never update it, and on
//! failure simply restart and refetch (§5.2 "Handling local agent
//! failure").

use softcell_policy::UeClassifier;
use softcell_types::{BaseStationId, Error, Result, SimTime};

use crate::agent::LocalAgent;
use crate::core::CentralController;
use crate::state::{ControllerState, UeRecord};

/// A strongly consistent replica group of controller state.
///
/// `mutate` applies one closure to every replica and verifies they agree
/// (same post-version); a failed replica can be dropped and a fresh one
/// seeded from any survivor.
#[derive(Clone, Debug)]
pub struct ReplicaGroup {
    replicas: Vec<ControllerState>,
}

impl ReplicaGroup {
    /// A group of `n` replicas seeded from one state.
    pub fn new(seed: ControllerState, n: usize) -> Result<Self> {
        if n == 0 {
            return Err(Error::Config(
                "replica group needs at least one member".into(),
            ));
        }
        Ok(ReplicaGroup {
            replicas: vec![seed; n],
        })
    }

    /// Number of live replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the group is empty (never true for a constructed group
    /// until failures remove members).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Applies a mutation to every replica (strong consistency: all or
    /// error). The closure must be deterministic.
    pub fn mutate<R>(&mut self, mut f: impl FnMut(&mut ControllerState) -> Result<R>) -> Result<R> {
        let mut out = None;
        for r in &mut self.replicas {
            out = Some(f(r)?);
        }
        let v0 = self.replicas[0].version();
        if self.replicas.iter().any(|r| r.version() != v0) {
            return Err(Error::InvalidState(
                "replicas diverged after mutation (non-deterministic closure?)".into(),
            ));
        }
        Ok(out.expect("group is non-empty"))
    }

    /// Read from the primary (index 0).
    pub fn primary(&self) -> &ControllerState {
        &self.replicas[0]
    }

    /// Simulates a replica crash.
    pub fn fail_replica(&mut self, idx: usize) -> Result<()> {
        if idx >= self.replicas.len() {
            return Err(Error::NotFound(format!("replica {idx}")));
        }
        if self.replicas.len() == 1 {
            return Err(Error::InvalidState("cannot fail the last replica".into()));
        }
        self.replicas.remove(idx);
        Ok(())
    }

    /// Adds a fresh replica seeded from a survivor.
    pub fn add_replica(&mut self) {
        let seed = self.replicas[0].clone();
        self.replicas.push(seed);
    }
}

/// What a local agent reports when a recovering controller queries it
/// (§5.2: "a replica can correctly rebuild the UE location state by
/// querying local agents").
#[derive(Clone, Debug)]
pub struct AgentLocationReport {
    /// The reporting base station.
    pub bs: BaseStationId,
    /// The UEs attached there.
    pub ues: Vec<UeRecord>,
}

impl AgentLocationReport {
    /// Builds the report from a live agent.
    pub fn from_agent(agent: &LocalAgent, now: SimTime) -> AgentLocationReport {
        AgentLocationReport {
            bs: agent.base_station(),
            ues: agent
                .attached()
                .map(|u| UeRecord {
                    imsi: u.imsi,
                    permanent_ip: u.permanent_ip,
                    bs: agent.base_station(),
                    ue_id: u.ue_id,
                    since: now,
                })
                .collect(),
        }
    }
}

/// Rebuilds a recovering controller's location state from agent reports.
pub fn rebuild_locations(state: &mut ControllerState, reports: &[AgentLocationReport]) {
    state.clear_locations();
    for report in reports {
        for rec in &report.ues {
            state.restore_location(*rec);
        }
    }
}

impl<'t> CentralController<'t> {
    /// The grants a restarting local agent refetches: every UE the
    /// controller believes is attached at `bs`, with a freshly compiled
    /// classifier.
    pub fn grants_for_station(&self, bs: BaseStationId) -> Result<Vec<(UeRecord, UeClassifier)>> {
        let mut out = Vec::new();
        for rec in self.state().attached() {
            if rec.bs == bs {
                let attrs = self.state().subscriber(rec.imsi)?;
                let classifier = UeClassifier::compile(&self.state().policy, self.apps(), attrs);
                out.push((*rec, classifier));
            }
        }
        Ok(out)
    }
}

impl LocalAgent {
    /// Restart recovery: drop everything and refetch from the controller
    /// (the agent's state is read-only derived state, §5.2). `grants` is
    /// the controller's answer for this base station.
    pub fn restart_from(&mut self, grants: Vec<(UeRecord, UeClassifier)>) -> Result<usize> {
        let bs = self.base_station();
        let radio = self.radio_port();
        let scheme = *self.scheme();
        let ports = *self.ports();
        *self = LocalAgent::new(bs, radio, scheme, ports);
        let n = grants.len();
        for (rec, classifier) in grants {
            self.adopt(rec, classifier)?;
        }
        Ok(n)
    }
}

/// Rebuilds the UE-location state of one agent's base station after the
/// agent itself reattached everything (used in tests to close the loop).
pub fn verify_agent_matches_controller(
    agent: &LocalAgent,
    ctl: &CentralController<'_>,
) -> Result<()> {
    for ue in agent.attached() {
        let rec = ctl.state().ue(ue.imsi)?;
        if rec.bs != agent.base_station() || rec.ue_id != ue.ue_id {
            return Err(Error::InvalidState(format!(
                "agent/controller disagree about {}",
                ue.imsi
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::ControllerConfig;
    use softcell_policy::{ServicePolicy, SubscriberAttributes};
    use softcell_topology::small_topology;
    use softcell_types::{Ipv4Prefix, UeId, UeImsi};

    fn seed_state() -> ControllerState {
        let mut s = ControllerState::new(
            ServicePolicy::example_carrier_a(1),
            "100.64.0.0/10".parse::<Ipv4Prefix>().unwrap(),
        );
        for i in 0..4 {
            s.put_subscriber(SubscriberAttributes::default_home(UeImsi(i)));
        }
        s
    }

    #[test]
    fn replicas_apply_mutations_in_lockstep() {
        let mut g = ReplicaGroup::new(seed_state(), 3).unwrap();
        g.mutate(|s| s.attach(UeImsi(0), BaseStationId(0), UeId(0), SimTime::ZERO))
            .unwrap();
        assert_eq!(g.primary().attached_count(), 1);
        // every replica answers identically
        let v = g.primary().version();
        g.mutate(|s| {
            assert_eq!(s.version(), v);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn failover_to_surviving_replica_keeps_slow_state() {
        let mut g = ReplicaGroup::new(seed_state(), 3).unwrap();
        g.mutate(|s| s.attach(UeImsi(1), BaseStationId(2), UeId(7), SimTime::ZERO))
            .unwrap();
        g.fail_replica(0).unwrap();
        assert_eq!(g.len(), 2);
        // the survivor has the subscribers and the attachment
        assert_eq!(g.primary().subscriber_count(), 4);
        assert_eq!(g.primary().attached_count(), 1);
        g.add_replica();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn cannot_fail_last_replica() {
        let mut g = ReplicaGroup::new(seed_state(), 1).unwrap();
        assert!(g.fail_replica(0).is_err());
        assert!(ReplicaGroup::new(seed_state(), 0).is_err());
    }

    #[test]
    fn location_rebuild_from_agents() {
        let topo = small_topology();
        let mut ctl = CentralController::new(
            &topo,
            ControllerConfig::simulation(),
            ServicePolicy::example_carrier_a(1),
        );
        for i in 0..3 {
            ctl.put_subscriber(SubscriberAttributes::default_home(UeImsi(i)));
        }
        let cfg = *ctl.config();
        let mut agents: Vec<LocalAgent> = (0..2)
            .map(|b| {
                let bs = topo.base_station(BaseStationId(b));
                LocalAgent::new(BaseStationId(b), bs.radio_port, cfg.scheme, cfg.ports)
            })
            .collect();
        agents[0]
            .handle_attach(UeImsi(0), &mut ctl, SimTime::ZERO)
            .unwrap();
        agents[0]
            .handle_attach(UeImsi(1), &mut ctl, SimTime::ZERO)
            .unwrap();
        agents[1]
            .handle_attach(UeImsi(2), &mut ctl, SimTime::ZERO)
            .unwrap();

        // the new controller replica lost all locations...
        let mut recovered = ctl.state().clone();
        recovered.clear_locations();
        assert_eq!(recovered.attached_count(), 0);

        // ...and rebuilds them by querying the agents
        let reports: Vec<AgentLocationReport> = agents
            .iter()
            .map(|a| AgentLocationReport::from_agent(a, SimTime::from_secs(1)))
            .collect();
        rebuild_locations(&mut recovered, &reports);
        assert_eq!(recovered.attached_count(), 3);
        assert_eq!(
            recovered.ue(UeImsi(2)).unwrap().bs,
            BaseStationId(1),
            "locations match the agents' truth"
        );
        assert_eq!(
            recovered.ue(UeImsi(0)).unwrap().permanent_ip,
            ctl.state().ue(UeImsi(0)).unwrap().permanent_ip,
            "permanent addresses survive the rebuild"
        );
    }

    #[test]
    fn agent_restart_refetches_grants() {
        let topo = small_topology();
        let mut ctl = CentralController::new(
            &topo,
            ControllerConfig::simulation(),
            ServicePolicy::example_carrier_a(1),
        );
        for i in 0..2 {
            ctl.put_subscriber(SubscriberAttributes::default_home(UeImsi(i)));
        }
        let cfg = *ctl.config();
        let bs0 = topo.base_station(BaseStationId(0));
        let mut agent = LocalAgent::new(BaseStationId(0), bs0.radio_port, cfg.scheme, cfg.ports);
        agent
            .handle_attach(UeImsi(0), &mut ctl, SimTime::ZERO)
            .unwrap();
        agent
            .handle_attach(UeImsi(1), &mut ctl, SimTime::ZERO)
            .unwrap();

        // crash + restart: refetch from the controller
        let grants = ctl.grants_for_station(BaseStationId(0)).unwrap();
        let n = agent.restart_from(grants).unwrap();
        assert_eq!(n, 2);
        verify_agent_matches_controller(&agent, &ctl).unwrap();
        // recovered agents keep serving flows: classifiers are intact
        assert!(!agent.ue(UeImsi(0)).unwrap().classifier.entries().is_empty());
    }
}
