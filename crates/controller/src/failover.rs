//! Control-plane failure handling (paper §5.2).
//!
//! The controller's slow-changing state (policy, subscriber attributes,
//! policy paths) is replicated with strong consistency — every mutation
//! is applied to all replicas before it is acknowledged. The fast-moving
//! state, UE location, is *not* synchronously replicated: "upon a
//! controller failure, a replica can correctly rebuild the UE location
//! state by querying local agents", which works because "a UE only
//! associates with one base station at a time".
//!
//! Local agents hold only state derived from the controller (packet
//! classifiers, location-dependent addresses), never update it, and on
//! failure simply restart and refetch (§5.2 "Handling local agent
//! failure").

use softcell_policy::UeClassifier;
use softcell_telemetry::Registry;
use softcell_types::{BaseStationId, EpochFence, Error, Result, SimTime};

use crate::agent::LocalAgent;
use crate::core::CentralController;
use crate::state::{ControllerState, UeRecord};

/// A strongly consistent replica group of controller state.
///
/// `mutate` applies one closure to every replica and verifies they agree
/// (same post-version); a failed replica can be dropped and a fresh one
/// seeded from any survivor.
#[derive(Clone, Debug)]
pub struct ReplicaGroup {
    replicas: Vec<ControllerState>,
}

impl ReplicaGroup {
    /// A group of `n` replicas seeded from one state.
    pub fn new(seed: ControllerState, n: usize) -> Result<Self> {
        if n == 0 {
            return Err(Error::Config(
                "replica group needs at least one member".into(),
            ));
        }
        Ok(ReplicaGroup {
            replicas: vec![seed; n],
        })
    }

    /// Number of live replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the group is empty (never true for a constructed group
    /// until failures remove members).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Applies a mutation to every replica (strong consistency: all or
    /// error). The closure must be deterministic.
    pub fn mutate<R>(&mut self, mut f: impl FnMut(&mut ControllerState) -> Result<R>) -> Result<R> {
        let mut out = None;
        for r in &mut self.replicas {
            out = Some(f(r)?);
        }
        let v0 = self.replicas[0].version();
        if self.replicas.iter().any(|r| r.version() != v0) {
            return Err(Error::InvalidState(
                "replicas diverged after mutation (non-deterministic closure?)".into(),
            ));
        }
        Ok(out.expect("group is non-empty"))
    }

    /// Read from the primary (index 0).
    pub fn primary(&self) -> &ControllerState {
        &self.replicas[0]
    }

    /// Simulates a replica crash.
    pub fn fail_replica(&mut self, idx: usize) -> Result<()> {
        if idx >= self.replicas.len() {
            return Err(Error::NotFound(format!("replica {idx}")));
        }
        if self.replicas.len() == 1 {
            return Err(Error::InvalidState("cannot fail the last replica".into()));
        }
        self.replicas.remove(idx);
        Ok(())
    }

    /// Adds a fresh replica seeded from a survivor.
    pub fn add_replica(&mut self) {
        let seed = self.replicas[0].clone();
        self.replicas.push(seed);
    }
}

/// One warm-standby controller process contending for primaryship of a
/// replica group.
///
/// Earlier versions kept primaryship in a per-process boolean, which
/// left a split-brain window: a partitioned primary kept believing its
/// local flag while a standby promoted itself, and both mutated state.
/// Primaryship is now decided by the *replicated epoch* (an
/// [`EpochFence`], the same term scheme `softcell-replica` fences log
/// records with): promotion is a compare-and-swap epoch advance, so
/// exactly one contender wins any transition, and every mutation
/// re-consults the fence — a standby whose promotion epoch is no longer
/// current has been fenced and refuses to act, whatever its local flag
/// says. Promotions and demotions are counted in the global telemetry
/// registry (`softcell_controller_promotions_total` /
/// `softcell_controller_demotions_total`).
#[derive(Debug)]
pub struct WarmStandby {
    state: ControllerState,
    /// Local belief, advisory only — the fence is the authority. Kept
    /// so a fenced standby can count its own demotion exactly once.
    believes_primary: bool,
    /// The epoch this standby's last successful promotion established.
    promoted_epoch: u64,
}

impl WarmStandby {
    /// A standby seeded with a state replica. It starts demoted.
    pub fn new(state: ControllerState) -> WarmStandby {
        WarmStandby {
            state,
            believes_primary: false,
            promoted_epoch: 0,
        }
    }

    /// Read access to the replica (allowed in any role).
    pub fn state(&self) -> &ControllerState {
        &self.state
    }

    /// The epoch this standby's current primaryship was established in
    /// (0 if it never promoted).
    pub fn promoted_epoch(&self) -> u64 {
        self.promoted_epoch
    }

    /// Whether this standby is the acting primary *per the replicated
    /// epoch* — true only if its promotion epoch is still the fence's
    /// current epoch. A standby that merely believes it is primary but
    /// has been fenced answers false.
    pub fn is_primary(&self, fence: &EpochFence) -> bool {
        self.believes_primary && fence.current() == self.promoted_epoch
    }

    /// Attempts to take primaryship by advancing the replicated epoch
    /// from the fence's instantaneous value. Of contenders that observed
    /// the *same* epoch, exactly one succeeds ([`Self::promote_from`]);
    /// the losers stay (or become) demoted. Returns the epoch the new
    /// primaryship was established in.
    pub fn promote(&mut self, fence: &EpochFence) -> Result<u64> {
        let observed = fence.current();
        self.promote_from(fence, observed)
    }

    /// [`Self::promote`] with the observed epoch made explicit — the
    /// form replication uses, where "current" comes from the standby's
    /// replicated membership view rather than an instantaneous read. A
    /// stale observation always loses: the CAS fails against any epoch
    /// but `observed`.
    pub fn promote_from(&mut self, fence: &EpochFence, observed: u64) -> Result<u64> {
        match fence.advance(observed, observed + 1) {
            Ok(epoch) => {
                self.believes_primary = true;
                self.promoted_epoch = epoch;
                Registry::global()
                    .counter("softcell_controller_promotions_total")
                    .inc();
                Ok(epoch)
            }
            Err(actual) => {
                self.note_fenced(actual);
                Err(Error::InvalidState(format!(
                    "promotion lost: observed epoch {observed}, cluster already at {actual}"
                )))
            }
        }
    }

    /// Applies a mutation as primary. Consults the replicated epoch
    /// first: if the fence has moved past this standby's promotion
    /// epoch, the standby demotes itself and the mutation is refused —
    /// a fenced ex-primary can no longer change state.
    pub fn mutate_as_primary<R>(
        &mut self,
        fence: &EpochFence,
        f: impl FnOnce(&mut ControllerState) -> Result<R>,
    ) -> Result<R> {
        let current = fence.current();
        if !self.believes_primary || current != self.promoted_epoch {
            let promoted = self.promoted_epoch;
            self.note_fenced(current);
            return Err(Error::InvalidState(format!(
                "not primary: promoted at epoch {promoted}, cluster at {current}"
            )));
        }
        f(&mut self.state)
    }

    /// Records that the fence has moved past us; counts the demotion
    /// once per lost primaryship.
    fn note_fenced(&mut self, current_epoch: u64) {
        if self.believes_primary && current_epoch != self.promoted_epoch {
            Registry::global()
                .counter("softcell_controller_demotions_total")
                .inc();
        }
        self.believes_primary = false;
    }
}

/// What a local agent reports when a recovering controller queries it
/// (§5.2: "a replica can correctly rebuild the UE location state by
/// querying local agents").
#[derive(Clone, Debug)]
pub struct AgentLocationReport {
    /// The reporting base station.
    pub bs: BaseStationId,
    /// The UEs attached there.
    pub ues: Vec<UeRecord>,
}

impl AgentLocationReport {
    /// Builds the report from a live agent.
    pub fn from_agent(agent: &LocalAgent, now: SimTime) -> AgentLocationReport {
        AgentLocationReport {
            bs: agent.base_station(),
            ues: agent
                .attached()
                .map(|u| UeRecord {
                    imsi: u.imsi,
                    permanent_ip: u.permanent_ip,
                    bs: agent.base_station(),
                    ue_id: u.ue_id,
                    since: now,
                })
                .collect(),
        }
    }
}

/// Rebuilds a recovering controller's location state from agent reports.
pub fn rebuild_locations(state: &mut ControllerState, reports: &[AgentLocationReport]) {
    state.clear_locations();
    for report in reports {
        for rec in &report.ues {
            state.restore_location(*rec);
        }
    }
}

impl<'t> CentralController<'t> {
    /// The grants a restarting local agent refetches: every UE the
    /// controller believes is attached at `bs`, with a freshly compiled
    /// classifier.
    pub fn grants_for_station(&self, bs: BaseStationId) -> Result<Vec<(UeRecord, UeClassifier)>> {
        let mut out = Vec::new();
        for rec in self.state().attached() {
            if rec.bs == bs {
                let attrs = self.state().subscriber(rec.imsi)?;
                let classifier = UeClassifier::compile(&self.state().policy, self.apps(), attrs);
                out.push((*rec, classifier));
            }
        }
        Ok(out)
    }
}

impl LocalAgent {
    /// Restart recovery: drop everything and refetch from the controller
    /// (the agent's state is read-only derived state, §5.2). `grants` is
    /// the controller's answer for this base station.
    pub fn restart_from(&mut self, grants: Vec<(UeRecord, UeClassifier)>) -> Result<usize> {
        let bs = self.base_station();
        let radio = self.radio_port();
        let scheme = *self.scheme();
        let ports = *self.ports();
        *self = LocalAgent::new(bs, radio, scheme, ports);
        let n = grants.len();
        for (rec, classifier) in grants {
            self.adopt(rec, classifier)?;
        }
        Ok(n)
    }
}

/// Rebuilds the UE-location state of one agent's base station after the
/// agent itself reattached everything (used in tests to close the loop).
pub fn verify_agent_matches_controller(
    agent: &LocalAgent,
    ctl: &CentralController<'_>,
) -> Result<()> {
    for ue in agent.attached() {
        let rec = ctl.state().ue(ue.imsi)?;
        if rec.bs != agent.base_station() || rec.ue_id != ue.ue_id {
            return Err(Error::InvalidState(format!(
                "agent/controller disagree about {}",
                ue.imsi
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::ControllerConfig;
    use softcell_policy::{ServicePolicy, SubscriberAttributes};
    use softcell_topology::small_topology;
    use softcell_types::{Ipv4Prefix, UeId, UeImsi};

    fn seed_state() -> ControllerState {
        let mut s = ControllerState::new(
            ServicePolicy::example_carrier_a(1),
            "100.64.0.0/10".parse::<Ipv4Prefix>().unwrap(),
        );
        for i in 0..4 {
            s.put_subscriber(SubscriberAttributes::default_home(UeImsi(i)));
        }
        s
    }

    #[test]
    fn replicas_apply_mutations_in_lockstep() {
        let mut g = ReplicaGroup::new(seed_state(), 3).unwrap();
        g.mutate(|s| s.attach(UeImsi(0), BaseStationId(0), UeId(0), SimTime::ZERO))
            .unwrap();
        assert_eq!(g.primary().attached_count(), 1);
        // every replica answers identically
        let v = g.primary().version();
        g.mutate(|s| {
            assert_eq!(s.version(), v);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn failover_to_surviving_replica_keeps_slow_state() {
        let mut g = ReplicaGroup::new(seed_state(), 3).unwrap();
        g.mutate(|s| s.attach(UeImsi(1), BaseStationId(2), UeId(7), SimTime::ZERO))
            .unwrap();
        g.fail_replica(0).unwrap();
        assert_eq!(g.len(), 2);
        // the survivor has the subscribers and the attachment
        assert_eq!(g.primary().subscriber_count(), 4);
        assert_eq!(g.primary().attached_count(), 1);
        g.add_replica();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn cannot_fail_last_replica() {
        let mut g = ReplicaGroup::new(seed_state(), 1).unwrap();
        assert!(g.fail_replica(0).is_err());
        assert!(ReplicaGroup::new(seed_state(), 0).is_err());
    }

    /// Promotion racing and fencing live in one test because both count
    /// into the process-global promotion/demotion counters — parallel
    /// test threads would race the delta assertions otherwise.
    #[test]
    fn promotion_is_epoch_fenced() {
        let promotions = Registry::global().counter("softcell_controller_promotions_total");
        let demotions = Registry::global().counter("softcell_controller_demotions_total");
        let (p0, d0) = (promotions.get(), demotions.get());

        // Exactly one of N contenders that observed the same epoch wins
        // the CAS promotion.
        let fence = std::sync::Arc::new(EpochFence::new(1));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let fence = std::sync::Arc::clone(&fence);
                std::thread::spawn(move || {
                    let mut sb = WarmStandby::new(seed_state());
                    // every contender's replicated view said "epoch 1"
                    let won = sb.promote_from(&fence, 1).is_ok();
                    (won, sb.is_primary(&fence))
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let winners = results.iter().filter(|(won, _)| *won).count();
        assert_eq!(winners, 1, "CAS promotion admits exactly one primary");
        for (won, primary_after) in results {
            assert_eq!(won, primary_after, "losers must not believe they lead");
        }
        assert_eq!(fence.current(), 2);
        assert_eq!(promotions.get() - p0, 1);
        assert_eq!(
            demotions.get() - d0,
            0,
            "never-promoted losers aren't demotions"
        );

        // A fenced ex-primary cannot mutate, and the demotion is counted.
        let fence = EpochFence::new(1);
        let mut old_primary = WarmStandby::new(seed_state());
        old_primary.promote(&fence).unwrap();
        assert!(old_primary.is_primary(&fence));
        old_primary
            .mutate_as_primary(&fence, |s| {
                s.attach(UeImsi(0), BaseStationId(0), UeId(0), SimTime::ZERO)
            })
            .unwrap();

        // A standby promotes while the primary is partitioned away. The
        // old primary's local flag still says "primary" — the seed
        // behavior that opened the split-brain window — but the
        // replicated epoch has moved on.
        let mut standby = WarmStandby::new(old_primary.state().clone());
        let epoch = standby.promote(&fence).unwrap();
        assert_eq!(epoch, 3);
        assert!(standby.is_primary(&fence));
        assert!(
            !old_primary.is_primary(&fence),
            "fence overrides the stale local flag"
        );

        // Consulting the epoch refuses the fenced mutation...
        let err = old_primary
            .mutate_as_primary(&fence, |s| {
                s.attach(UeImsi(1), BaseStationId(0), UeId(1), SimTime::ZERO)
            })
            .unwrap_err();
        assert!(matches!(err, Error::InvalidState(_)), "got {err}");
        // ...and the old primary's state shows no second attach.
        assert_eq!(old_primary.state().attached_count(), 1);

        // Re-promotion heals: the ex-primary rejoins by winning a fresh
        // epoch, not by trusting its flag.
        old_primary.promote(&fence).unwrap();
        assert!(old_primary.is_primary(&fence));
        assert!(!standby.is_primary(&fence));

        assert_eq!(promotions.get() - p0, 4, "race winner + three promotions");
        assert_eq!(demotions.get() - d0, 1, "one fenced demotion counted");
    }

    #[test]
    fn location_rebuild_from_agents() {
        let topo = small_topology();
        let mut ctl = CentralController::new(
            &topo,
            ControllerConfig::simulation(),
            ServicePolicy::example_carrier_a(1),
        );
        for i in 0..3 {
            ctl.put_subscriber(SubscriberAttributes::default_home(UeImsi(i)));
        }
        let cfg = *ctl.config();
        let mut agents: Vec<LocalAgent> = (0..2)
            .map(|b| {
                let bs = topo.base_station(BaseStationId(b));
                LocalAgent::new(BaseStationId(b), bs.radio_port, cfg.scheme, cfg.ports)
            })
            .collect();
        agents[0]
            .handle_attach(UeImsi(0), &mut ctl, SimTime::ZERO)
            .unwrap();
        agents[0]
            .handle_attach(UeImsi(1), &mut ctl, SimTime::ZERO)
            .unwrap();
        agents[1]
            .handle_attach(UeImsi(2), &mut ctl, SimTime::ZERO)
            .unwrap();

        // the new controller replica lost all locations...
        let mut recovered = ctl.state().clone();
        recovered.clear_locations();
        assert_eq!(recovered.attached_count(), 0);

        // ...and rebuilds them by querying the agents
        let reports: Vec<AgentLocationReport> = agents
            .iter()
            .map(|a| AgentLocationReport::from_agent(a, SimTime::from_secs(1)))
            .collect();
        rebuild_locations(&mut recovered, &reports);
        assert_eq!(recovered.attached_count(), 3);
        assert_eq!(
            recovered.ue(UeImsi(2)).unwrap().bs,
            BaseStationId(1),
            "locations match the agents' truth"
        );
        assert_eq!(
            recovered.ue(UeImsi(0)).unwrap().permanent_ip,
            ctl.state().ue(UeImsi(0)).unwrap().permanent_ip,
            "permanent addresses survive the rebuild"
        );
    }

    #[test]
    fn agent_restart_refetches_grants() {
        let topo = small_topology();
        let mut ctl = CentralController::new(
            &topo,
            ControllerConfig::simulation(),
            ServicePolicy::example_carrier_a(1),
        );
        for i in 0..2 {
            ctl.put_subscriber(SubscriberAttributes::default_home(UeImsi(i)));
        }
        let cfg = *ctl.config();
        let bs0 = topo.base_station(BaseStationId(0));
        let mut agent = LocalAgent::new(BaseStationId(0), bs0.radio_port, cfg.scheme, cfg.ports);
        agent
            .handle_attach(UeImsi(0), &mut ctl, SimTime::ZERO)
            .unwrap();
        agent
            .handle_attach(UeImsi(1), &mut ctl, SimTime::ZERO)
            .unwrap();

        // crash + restart: refetch from the controller
        let grants = ctl.grants_for_station(BaseStationId(0)).unwrap();
        let n = agent.restart_from(grants).unwrap();
        assert_eq!(n, 2);
        verify_agent_matches_controller(&agent, &ctl).unwrap();
        // recovered agents keep serving flows: classifiers are intact
        assert!(!agent.ue(UeImsi(0)).unwrap().classifier.entries().is_empty());
    }
}
