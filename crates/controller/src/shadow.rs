//! The controller's shadow of every switch's forwarding state.
//!
//! Algorithm 1 needs three primitives per switch (paper §3.2):
//! `getNextHop(tag, prefix)`, `canAggregate(tag, prefix, nexthop)` and
//! rule installation with contiguous-prefix merging. [`ShadowSwitch`]
//! provides them over a per-tag structure:
//!
//! * a **default** next hop per tag — a Type 2 (tag-only, exact match)
//!   rule;
//! * **per-prefix** next hops per tag — Type 1 (tag+prefix, TCAM) rules,
//!   longest-prefix-wins within the tag, automatically merged with their
//!   sibling when both carry the same next hop (the paper's "aggregate
//!   two rules if and only if their location prefixes are contiguous");
//! * separate tables per [`Entry`] context, because a rule for traffic
//!   returning from a middlebox matches on the input port (§3.1
//!   footnote) and therefore lives in its own namespace.
//!
//! The shadow is the controller's source of truth; deltas stream to the
//! physical switches through [`crate::ops`].

use serde::{Deserialize, Serialize};
use softcell_types::{FxHashMap, Ipv4Prefix, MiddleboxId, PolicyTag, SwitchId};

/// How traffic arrived at the switch — part of the rule key, realized as
/// an input-port qualifier on the physical rule. Rules in a qualified
/// entry ([`Entry::FromMb`], [`Entry::FromSwitch`]) take priority over
/// unqualified [`Entry::Ingress`] rules, mirroring the input-port
/// disambiguation of paper §3.1 (middlebox returns) and §3.2 (loops
/// entering a switch through different links).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Entry {
    /// Arrived from anywhere (no input-port qualifier).
    Ingress,
    /// Arrived back from a middlebox hosted on this switch.
    FromMb(MiddleboxId),
    /// Arrived on the link from a specific neighbor switch (loop
    /// disambiguation by input port).
    FromSwitch(SwitchId),
}

/// Where a rule sends traffic next (logical; ports are resolved when the
/// delta is lowered to a physical rule).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum NextHop {
    /// To an adjacent switch.
    Switch(SwitchId),
    /// Into a middlebox hosted on this switch.
    Middlebox(MiddleboxId),
    /// Out the Internet uplink (gateway) — uplink direction.
    Uplink,
    /// Deliver towards the base station radio — downlink direction.
    Radio,
    /// Rewrite the packet's tag to the given value, then forward to the
    /// adjacent switch — the loop-disambiguation swap rule (§3.2).
    SwapTag(PolicyTag, SwitchId),
    /// Rewrite the packet's tag, then divert into a middlebox on this
    /// switch (swap landing directly on a middlebox leg).
    SwapTagMb(PolicyTag, MiddleboxId),
}

/// Per-(entry, tag) forwarding state.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct TagTable {
    /// The Type 2 (tag-only) rule, if installed.
    default: Option<NextHop>,
    /// Type 1 (tag+prefix) rules; longest prefix wins.
    prefixes: FxHashMap<Ipv4Prefix, NextHop>,
    /// Shortest prefix length present (lookup walk lower bound).
    min_len: u8,
}

impl TagTable {
    fn lookup(&self, prefix: Ipv4Prefix) -> Option<NextHop> {
        if !self.prefixes.is_empty() {
            let mut p = prefix;
            loop {
                if let Some(nh) = self.prefixes.get(&p) {
                    return Some(*nh);
                }
                if p.len() <= self.min_len {
                    break;
                }
                p = p.parent()?;
            }
        }
        self.default
    }

    #[cfg(test)]
    #[allow(dead_code)]
    fn rule_count(&self) -> usize {
        self.prefixes.len() + usize::from(self.default.is_some())
    }
}

/// The shadow of one switch's flow table.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ShadowSwitch {
    tables: FxHashMap<(Entry, PolicyTag), TagTable>,
    /// Tags in first-installation order — candidate enumeration must be
    /// deterministic for reproducible experiments.
    tag_order: Vec<PolicyTag>,
    rule_count: usize,
}

/// A change the shadow applied, to be mirrored on the physical switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShadowDelta {
    /// A Type 2 (tag-only) rule appeared.
    SetDefault {
        /// Rule context.
        entry: Entry,
        /// Tag.
        tag: PolicyTag,
        /// Next hop.
        nh: NextHop,
    },
    /// A Type 1 (tag+prefix) rule appeared.
    AddPrefix {
        /// Rule context.
        entry: Entry,
        /// Tag.
        tag: PolicyTag,
        /// Matched prefix.
        prefix: Ipv4Prefix,
        /// Next hop.
        nh: NextHop,
    },
    /// A Type 1 rule disappeared (consumed by aggregation or torn down).
    RemovePrefix {
        /// Rule context.
        entry: Entry,
        /// Tag.
        tag: PolicyTag,
        /// Matched prefix.
        prefix: Ipv4Prefix,
    },
}

/// How one rule slot disagrees between a shadow and a replica of it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum DivergenceKind {
    /// The authoritative shadow has the rule; the replica lacks it.
    Missing {
        /// Next hop the authoritative rule forwards to.
        expected: NextHop,
    },
    /// The replica has a rule the authoritative shadow never installed.
    Extra {
        /// Next hop the replica's spurious rule forwards to.
        found: NextHop,
    },
    /// Both sides hold the rule but forward differently.
    Mismatch {
        /// Next hop on the authoritative side.
        expected: NextHop,
        /// Next hop on the replica.
        found: NextHop,
    },
}

/// One rule-level disagreement found by [`ShadowSwitch::diff`]. A
/// `prefix` of `None` names the tag's Type 2 default rule.
///
/// Replica divergence must be *reported*, never silently absorbed: a
/// replica whose log replay reconstructed different forwarding state
/// would install different physical rules after failover, so the
/// recovery path asserts `diff` is empty before promoting.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Divergence {
    /// Rule context the disagreement lives in.
    pub entry: Entry,
    /// Tag the disagreement lives under.
    pub tag: PolicyTag,
    /// Disagreeing prefix rule, or `None` for the tag default.
    pub prefix: Option<Ipv4Prefix>,
    /// What kind of disagreement.
    pub kind: DivergenceKind,
}

impl ShadowSwitch {
    /// An empty shadow.
    pub fn new() -> Self {
        ShadowSwitch::default()
    }

    /// Total rules this switch would hold (Type 1 + Type 2) — the
    /// quantity Figure 7 reports.
    pub fn rule_count(&self) -> usize {
        self.rule_count
    }

    /// `getNextHop(t, prefix)` of Algorithm 1: what the switch currently
    /// does with `tag`-tagged traffic for `prefix` arriving via `entry`.
    pub fn next_hop(&self, entry: Entry, tag: PolicyTag, prefix: Ipv4Prefix) -> Option<NextHop> {
        self.tables.get(&(entry, tag))?.lookup(prefix)
    }

    /// Whether installing `(tag, prefix) -> nh` would *conflict* with an
    /// existing rule: an exact-prefix entry, or the tag default, already
    /// sends this traffic elsewhere and a more-specific override is
    /// impossible (exact same match). Conflicts make a candidate tag
    /// infeasible for this path.
    pub fn conflicts(&self, entry: Entry, tag: PolicyTag, prefix: Ipv4Prefix, nh: NextHop) -> bool {
        match self.tables.get(&(entry, tag)) {
            None => false,
            Some(t) => matches!(t.prefixes.get(&prefix), Some(other) if *other != nh),
        }
    }

    /// `canAggregate` of Algorithm 1: a new `(tag, prefix) -> nh` rule
    /// merges with an existing sibling rule carrying the same next hop.
    pub fn can_aggregate(
        &self,
        entry: Entry,
        tag: PolicyTag,
        prefix: Ipv4Prefix,
        nh: NextHop,
    ) -> bool {
        let Some(t) = self.tables.get(&(entry, tag)) else {
            return false;
        };
        let Some(sib) = prefix.sibling() else {
            return false;
        };
        t.prefixes.get(&sib) == Some(&nh)
    }

    /// The incremental rule cost of making `(entry, tag, prefix)` forward
    /// to `nh`:
    ///
    /// * `None` — infeasible (exact conflict);
    /// * `Some(0)` — already does (or a sibling merge absorbs the rule);
    /// * `Some(1)` — one new rule.
    pub fn rule_cost(
        &self,
        entry: Entry,
        tag: PolicyTag,
        prefix: Ipv4Prefix,
        nh: NextHop,
    ) -> Option<usize> {
        if self.conflicts(entry, tag, prefix, nh) {
            return None;
        }
        match self.next_hop(entry, tag, prefix) {
            Some(cur) if cur == nh => Some(0),
            None => Some(1), // becomes the tag default (Type 2)
            Some(_) if self.can_aggregate(entry, tag, prefix, nh) => Some(0),
            Some(_) => Some(1), // a Type 1 override
        }
    }

    /// Installs `(entry, tag, prefix) -> nh`, preferring the cheapest
    /// representation: no-op if the lookup already agrees, a tag default
    /// (Type 2) when the tag has none, otherwise a Type 1 prefix rule
    /// merged upward with contiguous siblings. Returns the deltas.
    ///
    /// # Panics
    /// Debug-panics on exact conflicts — the tag-selection phase must
    /// have filtered those (`rule_cost` returned `None`).
    pub fn install(
        &mut self,
        entry: Entry,
        tag: PolicyTag,
        prefix: Ipv4Prefix,
        nh: NextHop,
    ) -> Vec<ShadowDelta> {
        debug_assert!(
            !self.conflicts(entry, tag, prefix, nh),
            "install of conflicting rule (tag {tag}, {prefix})"
        );
        if !self.tables.contains_key(&(entry, tag)) && !self.tag_order.contains(&tag) {
            self.tag_order.push(tag);
        }
        let table = self.tables.entry((entry, tag)).or_default();
        // already correct?
        if table.lookup(prefix) == Some(nh) {
            return Vec::new();
        }
        let mut deltas = Vec::new();
        // A Type 2 (tag-only) default is only safe in tables that cannot
        // shadow other traffic: the unqualified Ingress table (defaults
        // there are the aggregation win of Fig. 3c) and middlebox-return
        // tables (only traffic this controller itself diverted into the
        // middlebox can arrive there). A default in a FromSwitch table
        // would capture *every* prefix arriving on that link, hijacking
        // paths that relied on unqualified rules.
        let default_ok = !matches!(entry, Entry::FromSwitch(_));
        if default_ok && table.default.is_none() && table.prefixes.is_empty() {
            table.default = Some(nh);
            self.rule_count += 1;
            deltas.push(ShadowDelta::SetDefault { entry, tag, nh });
            return deltas;
        }
        // Type 1 rule with upward aggregation. Invariant maintained by the
        // loop: the range of `p` is entirely meant to forward to `nh`
        // (initially: `p = prefix`, the rule being installed; after each
        // promotion: the union of two fully-`nh` children). Therefore any
        // entry found *at* `p` during promotion is fully shadowed and is
        // removed rather than left to mask the final coarser rule.
        let mut p = prefix;
        while let Some(sib) = p.sibling() {
            if table.prefixes.get(&sib) != Some(&nh) {
                break;
            }
            table.prefixes.remove(&sib);
            self.rule_count -= 1;
            deltas.push(ShadowDelta::RemovePrefix {
                entry,
                tag,
                prefix: sib,
            });
            p = p.parent().expect("sibling exists, so parent does");
            if table.prefixes.remove(&p).is_some() {
                self.rule_count -= 1;
                deltas.push(ShadowDelta::RemovePrefix {
                    entry,
                    tag,
                    prefix: p,
                });
            }
        }
        // If the covering lookup now already yields nh (parent rule or
        // default with the same hop), no rule is needed at all.
        if table.lookup(p) == Some(nh) {
            return deltas;
        }
        let prev = table.prefixes.insert(p, nh);
        debug_assert!(prev.is_none(), "promotion sweep removed entries at p");
        self.rule_count += 1;
        if table.prefixes.len() == 1 {
            table.min_len = p.len();
        } else {
            table.min_len = table.min_len.min(p.len());
        }
        deltas.push(ShadowDelta::AddPrefix {
            entry,
            tag,
            prefix: p,
            nh,
        });
        deltas
    }

    /// Tags present on this switch (the per-switch contribution to
    /// `candTag`), in deterministic first-installed order, most recent
    /// first (recent tags are the likeliest reuse candidates).
    pub fn tags(&self) -> impl Iterator<Item = PolicyTag> + '_ {
        self.tag_order.iter().rev().copied()
    }

    /// Whether any rule exists for `(entry, tag)` — a non-empty qualified
    /// table shadows unqualified rules for traffic arriving that way, so
    /// the installer must place its rule in the qualified table.
    pub fn has_table(&self, entry: Entry, tag: PolicyTag) -> bool {
        self.tables
            .get(&(entry, tag))
            .map(|t| t.default.is_some() || !t.prefixes.is_empty())
            .unwrap_or(false)
    }

    /// Iterates every installed rule as `(entry, tag, prefix, next_hop)`
    /// — `prefix = None` for Type 2 defaults. Order is unspecified; used
    /// for full-table lowering (offline recompute migrations).
    pub fn iter_rules(
        &self,
    ) -> impl Iterator<Item = (Entry, PolicyTag, Option<Ipv4Prefix>, NextHop)> + '_ {
        self.tables.iter().flat_map(|(&(entry, tag), table)| {
            table
                .default
                .iter()
                .map(move |nh| (entry, tag, None, *nh))
                .chain(
                    table
                        .prefixes
                        .iter()
                        .map(move |(p, nh)| (entry, tag, Some(*p), *nh)),
                )
        })
    }

    /// Compares this (authoritative) shadow against a `replica` of it,
    /// reporting every rule-level disagreement in deterministic
    /// `(entry, tag, prefix)` order. Empty iff the two shadows encode
    /// identical forwarding behaviour rule-for-rule.
    pub fn diff(&self, replica: &ShadowSwitch) -> Vec<Divergence> {
        let mut keys: Vec<(Entry, PolicyTag)> = self
            .tables
            .keys()
            .chain(replica.tables.keys())
            .copied()
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let empty = TagTable::default();
        let mut out = Vec::new();
        for (entry, tag) in keys {
            let ours = self.tables.get(&(entry, tag)).unwrap_or(&empty);
            let theirs = replica.tables.get(&(entry, tag)).unwrap_or(&empty);
            let mut slots: Vec<Option<Ipv4Prefix>> = ours
                .prefixes
                .keys()
                .chain(theirs.prefixes.keys())
                .copied()
                .map(Some)
                .collect();
            slots.sort_unstable();
            slots.dedup();
            slots.insert(0, None); // the Type 2 default slot
            for prefix in slots {
                let expected = match prefix {
                    None => ours.default,
                    Some(p) => ours.prefixes.get(&p).copied(),
                };
                let found = match prefix {
                    None => theirs.default,
                    Some(p) => theirs.prefixes.get(&p).copied(),
                };
                let kind = match (expected, found) {
                    (Some(e), Some(f)) if e != f => DivergenceKind::Mismatch {
                        expected: e,
                        found: f,
                    },
                    (Some(e), None) => DivergenceKind::Missing { expected: e },
                    (None, Some(f)) => DivergenceKind::Extra { found: f },
                    _ => continue,
                };
                out.push(Divergence {
                    entry,
                    tag,
                    prefix,
                    kind,
                });
            }
        }
        out
    }

    /// Per-type occupancy: `(type1_prefix_rules, type2_default_rules)`.
    pub fn occupancy(&self) -> (usize, usize) {
        let mut t1 = 0;
        let mut t2 = 0;
        for t in self.tables.values() {
            t1 += t.prefixes.len();
            t2 += usize::from(t.default.is_some());
        }
        (t1, t2)
    }
}

/// The shadow of the whole network, indexed by switch.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ShadowTables {
    switches: Vec<ShadowSwitch>,
}

impl ShadowTables {
    /// Shadows for `n` switches.
    pub fn new(n: usize) -> Self {
        ShadowTables {
            switches: vec![ShadowSwitch::new(); n],
        }
    }

    /// Assembles a snapshot from per-switch shadows (index = switch id).
    /// Used by the partitioned installer, whose live state is one cell
    /// per switch rather than a single table vector.
    pub fn from_switches(switches: Vec<ShadowSwitch>) -> Self {
        ShadowTables { switches }
    }

    /// The shadow of one switch.
    pub fn switch(&self, id: SwitchId) -> &ShadowSwitch {
        &self.switches[id.index()]
    }

    /// Mutable shadow of one switch.
    pub fn switch_mut(&mut self, id: SwitchId) -> &mut ShadowSwitch {
        &mut self.switches[id.index()]
    }

    /// Number of switches.
    pub fn len(&self) -> usize {
        self.switches.len()
    }

    /// Whether there are no switches.
    pub fn is_empty(&self) -> bool {
        self.switches.is_empty()
    }

    /// Rule counts of every switch — the Figure 7 measurement.
    pub fn rule_counts(&self) -> Vec<usize> {
        self.switches.iter().map(|s| s.rule_count()).collect()
    }

    /// Compares this (authoritative) network shadow against a `replica`,
    /// attributing every rule-level disagreement to its switch. A
    /// replica with more or fewer switches diverges too: rules on the
    /// unmatched switches surface as [`DivergenceKind::Missing`] /
    /// [`DivergenceKind::Extra`] against an empty shadow.
    pub fn diff(&self, replica: &ShadowTables) -> Vec<(SwitchId, Divergence)> {
        let empty = ShadowSwitch::new();
        let n = self.switches.len().max(replica.switches.len());
        (0..n)
            .flat_map(|i| {
                let ours = self.switches.get(i).unwrap_or(&empty);
                let theirs = replica.switches.get(i).unwrap_or(&empty);
                let id = SwitchId::from_index(i);
                ours.diff(theirs).into_iter().map(move |d| (id, d))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    const T: PolicyTag = PolicyTag(1);
    const IN: Entry = Entry::Ingress;
    const NH1: NextHop = NextHop::Switch(SwitchId(10));
    const NH2: NextHop = NextHop::Switch(SwitchId(20));
    const NH3: NextHop = NextHop::Switch(SwitchId(30));

    #[test]
    fn first_install_becomes_type2_default() {
        let mut s = ShadowSwitch::new();
        let d = s.install(IN, T, p("10.0.0.0/23"), NH1);
        assert_eq!(
            d,
            vec![ShadowDelta::SetDefault {
                entry: IN,
                tag: T,
                nh: NH1
            }]
        );
        assert_eq!(s.rule_count(), 1);
        // every prefix under the tag now follows the default
        assert_eq!(s.next_hop(IN, T, p("10.0.8.0/23")), Some(NH1));
        assert_eq!(s.occupancy(), (0, 1));
    }

    #[test]
    fn second_nexthop_becomes_type1_override() {
        let mut s = ShadowSwitch::new();
        s.install(IN, T, p("10.0.0.0/23"), NH1);
        let d = s.install(IN, T, p("10.0.8.0/23"), NH2);
        assert_eq!(
            d,
            vec![ShadowDelta::AddPrefix {
                entry: IN,
                tag: T,
                prefix: p("10.0.8.0/23"),
                nh: NH2
            }]
        );
        assert_eq!(s.rule_count(), 2);
        assert_eq!(s.next_hop(IN, T, p("10.0.8.0/23")), Some(NH2));
        assert_eq!(s.next_hop(IN, T, p("10.0.0.0/23")), Some(NH1));
        assert_eq!(s.occupancy(), (1, 1));
    }

    #[test]
    fn contiguous_prefixes_aggregate() {
        let mut s = ShadowSwitch::new();
        s.install(IN, T, p("10.0.0.0/23"), NH1); // default
        s.install(IN, T, p("10.0.8.0/23"), NH2); // type 1
        assert!(s.can_aggregate(IN, T, p("10.0.10.0/23"), NH2));
        let d = s.install(IN, T, p("10.0.10.0/23"), NH2); // sibling of 10.0.8/23
                                                          // merge: remove 10.0.8.0/23, add 10.0.8.0/22
        assert!(d.contains(&ShadowDelta::RemovePrefix {
            entry: IN,
            tag: T,
            prefix: p("10.0.8.0/23")
        }));
        assert!(d.contains(&ShadowDelta::AddPrefix {
            entry: IN,
            tag: T,
            prefix: p("10.0.8.0/22"),
            nh: NH2
        }));
        assert_eq!(s.rule_count(), 2, "merge keeps the count flat");
        assert_eq!(s.next_hop(IN, T, p("10.0.10.0/23")), Some(NH2));
        assert_eq!(s.next_hop(IN, T, p("10.0.8.0/23")), Some(NH2));
    }

    #[test]
    fn aggregation_cascades_upward() {
        let mut s = ShadowSwitch::new();
        s.install(IN, T, p("10.0.0.0/8"), NH1); // default owner
                                                // four /24s forming a /22 under NH2, installed in sibling order
        s.install(IN, T, p("10.1.0.0/24"), NH2);
        s.install(IN, T, p("10.1.1.0/24"), NH2); // -> /23
        s.install(IN, T, p("10.1.2.0/24"), NH2);
        let before = s.rule_count();
        s.install(IN, T, p("10.1.3.0/24"), NH2); // -> /23 -> /22
        assert_eq!(s.rule_count(), before - 1, "cascade merges two levels");
        assert_eq!(s.next_hop(IN, T, p("10.1.2.0/24")), Some(NH2));
        assert_eq!(s.occupancy().0, 1, "a single /22 remains");
    }

    #[test]
    fn idempotent_install_costs_nothing() {
        let mut s = ShadowSwitch::new();
        s.install(IN, T, p("10.0.0.0/23"), NH1);
        assert_eq!(s.rule_cost(IN, T, p("10.0.0.0/23"), NH1), Some(0));
        assert!(s.install(IN, T, p("10.0.0.0/23"), NH1).is_empty());
        assert_eq!(s.rule_count(), 1);
    }

    #[test]
    fn rule_cost_matches_install_behaviour() {
        let mut s = ShadowSwitch::new();
        assert_eq!(s.rule_cost(IN, T, p("10.0.0.0/23"), NH1), Some(1));
        s.install(IN, T, p("10.0.0.0/23"), NH1);
        // different next hop for another prefix: +1 (type 1)
        assert_eq!(s.rule_cost(IN, T, p("10.0.8.0/23"), NH2), Some(1));
        s.install(IN, T, p("10.0.8.0/23"), NH2);
        // its sibling with the same hop: 0 (aggregates)
        assert_eq!(s.rule_cost(IN, T, p("10.0.10.0/23"), NH2), Some(0));
        // exact conflict: infeasible
        assert_eq!(s.rule_cost(IN, T, p("10.0.8.0/23"), NH1), None);
        assert!(s.conflicts(IN, T, p("10.0.8.0/23"), NH1));
    }

    #[test]
    fn entries_are_separate_namespaces() {
        let mut s = ShadowSwitch::new();
        let mb = Entry::FromMb(MiddleboxId(3));
        s.install(IN, T, p("10.0.0.0/23"), NH1);
        s.install(mb, T, p("10.0.0.0/23"), NH2);
        assert_eq!(s.next_hop(IN, T, p("10.0.0.0/23")), Some(NH1));
        assert_eq!(s.next_hop(mb, T, p("10.0.0.0/23")), Some(NH2));
        assert_eq!(s.rule_count(), 2);
    }

    #[test]
    fn tags_are_separate_namespaces() {
        let mut s = ShadowSwitch::new();
        s.install(IN, PolicyTag(1), p("10.0.0.0/23"), NH1);
        s.install(IN, PolicyTag(2), p("10.0.0.0/23"), NH2);
        assert_eq!(s.next_hop(IN, PolicyTag(1), p("10.0.0.0/23")), Some(NH1));
        assert_eq!(s.next_hop(IN, PolicyTag(2), p("10.0.0.0/23")), Some(NH2));
        let mut tags: Vec<_> = s.tags().collect();
        tags.sort();
        assert_eq!(tags, vec![PolicyTag(1), PolicyTag(2)]);
    }

    #[test]
    fn longest_prefix_wins_within_tag() {
        let mut s = ShadowSwitch::new();
        s.install(IN, T, p("10.0.0.0/16"), NH1);
        s.install(IN, T, p("10.0.0.0/24"), NH2);
        assert_eq!(s.next_hop(IN, T, p("10.0.0.0/24")), Some(NH2));
        assert_eq!(s.next_hop(IN, T, p("10.0.1.0/24")), Some(NH1));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// A flat reference model: the exact (prefix -> nh) writes in
        /// order, no aggregation, longest-prefix-wins + default.
        #[derive(Default)]
        struct FlatModel {
            default: Option<NextHop>,
            writes: Vec<(Ipv4Prefix, NextHop)>,
        }

        impl FlatModel {
            fn install(&mut self, prefix: Ipv4Prefix, nh: NextHop) {
                if self.default.is_none() && self.writes.is_empty() {
                    self.default = Some(nh);
                } else if let Some(w) = self.writes.iter_mut().find(|(p, _)| *p == prefix) {
                    w.1 = nh;
                } else {
                    self.writes.push((prefix, nh));
                }
            }

            fn lookup(&self, addr: std::net::Ipv4Addr) -> Option<NextHop> {
                self.writes
                    .iter()
                    .filter(|(p, _)| p.contains(addr))
                    .max_by_key(|(p, _)| p.len())
                    .map(|(_, nh)| *nh)
                    .or(self.default)
            }
        }

        /// Installs at the /23 station-prefix granularity the real
        /// system uses (disjoint-or-equal prefixes, the installer's
        /// discipline).
        fn arb_installs() -> impl Strategy<Value = Vec<(u32, u8)>> {
            proptest::collection::vec((0u32..64, 0u8..3), 1..80)
        }

        proptest! {
            #[test]
            fn prop_aggregation_preserves_lookup_semantics(installs in arb_installs()) {
                let mut shadow = ShadowSwitch::new();
                let mut flat = FlatModel::default();
                for (station, hop) in installs {
                    let prefix = Ipv4Prefix::from_bits(0x0A00_0000 | (station << 9), 23);
                    let nh = NextHop::Switch(SwitchId(hop as u32));
                    // mirror the installer's discipline: skip writes the
                    // cost model rejects (exact conflicts)
                    if shadow.rule_cost(IN, T, prefix, nh).is_none() {
                        continue;
                    }
                    shadow.install(IN, T, prefix, nh);
                    flat.install(prefix, nh);
                }
                for station in 0u32..64 {
                    let addr = std::net::Ipv4Addr::from(0x0A00_0000 | (station << 9) | 3);
                    let prefix = Ipv4Prefix::from_bits(0x0A00_0000 | (station << 9), 23);
                    prop_assert_eq!(
                        shadow.next_hop(IN, T, prefix),
                        flat.lookup(addr),
                        "station {} diverged", station
                    );
                }
            }

            #[test]
            fn prop_rule_count_never_exceeds_flat(installs in arb_installs()) {
                let mut shadow = ShadowSwitch::new();
                let mut distinct: std::collections::HashSet<Ipv4Prefix> =
                    std::collections::HashSet::new();
                for (station, hop) in installs {
                    let prefix = Ipv4Prefix::from_bits(0x0A00_0000 | (station << 9), 23);
                    let nh = NextHop::Switch(SwitchId(hop as u32));
                    if shadow.rule_cost(IN, T, prefix, nh).is_none() {
                        continue;
                    }
                    shadow.install(IN, T, prefix, nh);
                    distinct.insert(prefix);
                }
                // aggregation is a pure win: never more entries than the
                // unaggregated write set (+1 for the default)
                prop_assert!(shadow.rule_count() <= distinct.len() + 1);
            }

            /// The incremental delta stream is a faithful encoding of
            /// re-aggregation: replaying only the emitted `ShadowDelta`s
            /// into a dumb rule store reconstructs the table
            /// rule-for-rule — so a consumer of the op stream (physical
            /// switches, replicas) converges on exactly the aggregated
            /// state a from-scratch recomputation would build, merges and
            /// cascades included.
            #[test]
            fn prop_delta_stream_reconstructs_tables(installs in arb_installs()) {
                use std::collections::HashMap;
                let mut shadow = ShadowSwitch::new();
                // (entry, tag) -> (default, prefix rules): no aggregation
                // logic of its own, it just obeys the deltas
                type MirrorSlot = (Option<NextHop>, HashMap<Ipv4Prefix, NextHop>);
                let mut mirror: HashMap<(Entry, PolicyTag), MirrorSlot> = HashMap::new();
                for (station, hop) in installs {
                    // spread across entries and tags so namespace
                    // separation is exercised too
                    let entry = if station % 2 == 0 {
                        IN
                    } else {
                        Entry::FromMb(MiddleboxId(1))
                    };
                    let tag = if station % 3 == 0 { PolicyTag(9) } else { T };
                    let prefix = Ipv4Prefix::from_bits(0x0A00_0000 | (station << 9), 23);
                    let nh = NextHop::Switch(SwitchId(hop as u32));
                    if shadow.rule_cost(entry, tag, prefix, nh).is_none() {
                        continue;
                    }
                    for delta in shadow.install(entry, tag, prefix, nh) {
                        match delta {
                            ShadowDelta::SetDefault { entry, tag, nh } => {
                                mirror.entry((entry, tag)).or_default().0 = Some(nh);
                            }
                            ShadowDelta::AddPrefix { entry, tag, prefix, nh } => {
                                mirror.entry((entry, tag)).or_default().1.insert(prefix, nh);
                            }
                            ShadowDelta::RemovePrefix { entry, tag, prefix } => {
                                let removed = mirror
                                    .entry((entry, tag))
                                    .or_default()
                                    .1
                                    .remove(&prefix);
                                prop_assert!(
                                    removed.is_some(),
                                    "delta removed a rule the stream never added: \
                                     {:?}/{:?}/{}", entry, tag, prefix
                                );
                            }
                        }
                    }
                }
                let mut live: Vec<(Entry, PolicyTag, Option<Ipv4Prefix>, NextHop)> =
                    shadow.iter_rules().collect();
                let mut replayed: Vec<(Entry, PolicyTag, Option<Ipv4Prefix>, NextHop)> = mirror
                    .iter()
                    .flat_map(|(&(entry, tag), (default, prefixes))| {
                        default
                            .iter()
                            .map(move |nh| (entry, tag, None, *nh))
                            .chain(
                                prefixes
                                    .iter()
                                    .map(move |(p, nh)| (entry, tag, Some(*p), *nh)),
                            )
                            .collect::<Vec<_>>()
                    })
                    .collect();
                live.sort_unstable();
                replayed.sort_unstable();
                prop_assert_eq!(live, replayed, "delta replay diverged from the table");
            }

            #[test]
            fn prop_cost_is_an_exact_forecast(installs in arb_installs()) {
                let mut shadow = ShadowSwitch::new();
                for (station, hop) in installs {
                    let prefix = Ipv4Prefix::from_bits(0x0A00_0000 | (station << 9), 23);
                    let nh = NextHop::Switch(SwitchId(hop as u32));
                    let Some(cost) = shadow.rule_cost(IN, T, prefix, nh) else {
                        continue;
                    };
                    let before = shadow.rule_count();
                    shadow.install(IN, T, prefix, nh);
                    let added = shadow.rule_count() as i64 - before as i64;
                    // an exact forecast for plain installs, an upper
                    // bound when a merge cascades
                    prop_assert!(added <= cost as i64, "cost {} but added {}", cost, added);
                }
            }
        }
    }

    #[test]
    fn faithful_replica_reports_no_divergence() {
        // Replaying the same install sequence (not cloning) must
        // reconstruct rule-for-rule identical state, including the
        // aggregation structure.
        let installs = [
            (IN, T, "10.0.0.0/8", NH1),
            (IN, T, "10.1.0.0/24", NH2),
            (IN, T, "10.1.1.0/24", NH2), // merges to /23
            (Entry::FromMb(MiddleboxId(3)), T, "10.2.0.0/23", NH2),
            (IN, PolicyTag(9), "10.3.0.0/23", NH1),
        ];
        let mut primary = ShadowSwitch::new();
        let mut replica = ShadowSwitch::new();
        for (entry, tag, prefix, nh) in installs {
            primary.install(entry, tag, p(prefix), nh);
            replica.install(entry, tag, p(prefix), nh);
        }
        assert_eq!(primary.diff(&replica), vec![]);
        assert_eq!(replica.diff(&primary), vec![]);
    }

    #[test]
    fn divergent_replica_is_detected_and_reported() {
        let mb = Entry::FromMb(MiddleboxId(3));
        let mut primary = ShadowSwitch::new();
        primary.install(IN, T, p("10.0.0.0/8"), NH1); // default
        primary.install(IN, T, p("10.1.0.0/24"), NH2);
        primary.install(mb, T, p("10.4.0.0/23"), NH2); // replica will drop this
                                                       // A deliberately divergent replica: its log replay lost one
                                                       // record, invented another, and flipped a next hop.
        let mut replica = ShadowSwitch::new();
        replica.install(IN, T, p("10.0.0.0/8"), NH1); // default agrees
        replica.install(IN, T, p("10.1.0.0/24"), NH3); // flipped hop
        replica.install(IN, T, p("10.9.0.0/24"), NH2); // invented rule
        let report = primary.diff(&replica);
        assert_eq!(
            report,
            vec![
                Divergence {
                    entry: IN,
                    tag: T,
                    prefix: Some(p("10.1.0.0/24")),
                    kind: DivergenceKind::Mismatch {
                        expected: NH2,
                        found: NH3
                    },
                },
                Divergence {
                    entry: IN,
                    tag: T,
                    prefix: Some(p("10.9.0.0/24")),
                    kind: DivergenceKind::Extra { found: NH2 },
                },
                // the mb install landed as the tag's Type 2 default
                Divergence {
                    entry: mb,
                    tag: T,
                    prefix: None,
                    kind: DivergenceKind::Missing { expected: NH2 },
                },
            ],
            "every divergence must be surfaced, not silently absorbed"
        );
        // The report is directional: from the replica's point of view
        // the missing/extra roles swap.
        let reverse = replica.diff(&primary);
        assert_eq!(reverse.len(), 3);
        assert!(reverse
            .iter()
            .any(|d| matches!(d.kind, DivergenceKind::Extra { found: NH2 }) && d.entry == mb));
    }

    #[test]
    fn default_rule_divergence_is_reported() {
        let mut primary = ShadowSwitch::new();
        primary.install(IN, T, p("10.0.0.0/8"), NH1);
        let replica = ShadowSwitch::new(); // never saw the install
        assert_eq!(
            primary.diff(&replica),
            vec![Divergence {
                entry: IN,
                tag: T,
                prefix: None,
                kind: DivergenceKind::Missing { expected: NH1 },
            }]
        );
    }

    #[test]
    fn network_diff_attributes_divergence_to_switch() {
        let mut primary = ShadowTables::new(3);
        let mut replica = ShadowTables::new(3);
        for t in [&mut primary, &mut replica] {
            t.switch_mut(SwitchId(0))
                .install(IN, T, p("10.0.0.0/23"), NH1);
        }
        primary
            .switch_mut(SwitchId(2))
            .install(IN, T, p("10.0.8.0/23"), NH2);
        let report = primary.diff(&replica);
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].0, SwitchId(2));
        assert_eq!(report[0].1.kind, DivergenceKind::Missing { expected: NH2 });
        // A replica that lost a whole switch diverges on every rule of
        // that switch, not just on the shared ones.
        let short = ShadowTables::new(1);
        let mut shorter = ShadowTables::new(1);
        shorter
            .switch_mut(SwitchId(0))
            .install(IN, T, p("10.0.0.0/23"), NH1);
        let report = primary.diff(&short);
        assert_eq!(report.len(), 2, "switch 0 default + switch 2 default");
        assert!(primary
            .diff(&shorter)
            .iter()
            .all(|(id, _)| *id == SwitchId(2)));
    }

    #[test]
    fn shadow_tables_indexing() {
        let mut t = ShadowTables::new(3);
        assert_eq!(t.len(), 3);
        t.switch_mut(SwitchId(1))
            .install(IN, T, p("10.0.0.0/23"), NH1);
        assert_eq!(t.rule_counts(), vec![0, 1, 0]);
        assert_eq!(t.switch(SwitchId(1)).rule_count(), 1);
    }
}
