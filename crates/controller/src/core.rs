//! The central controller façade.
//!
//! Ties the pieces together: subscriber/UE state, per-UE classifier
//! compilation (sent to local agents on attach, §4.2), policy-path
//! installation through Algorithm 1 (§3.2) with middlebox *instance*
//! selection (§2.2: "the controller ... automatically select\[s\]
//! middlebox instances and network paths that minimize latency and
//! load"), and the lowering of shadow deltas into concrete rule
//! operations for the data plane.

use std::collections::HashMap;

use softcell_policy::clause::{AccessControl, ClauseId};
use softcell_policy::{AppClassifier, QosClass, SubscriberAttributes, UeClassifier};
use softcell_topology::{PolicyPath, ShortestPaths, Topology};
use softcell_types::{
    AddressingScheme, BaseStationId, Error, Ipv4Prefix, MiddleboxId, MiddleboxKind, PolicyTag,
    PortEmbedding, PortNo, Result, SimTime, SwitchId, UeId, UeImsi,
};

use crate::install::{Direction, PathInstaller, PolicyPathPlan, TagPolicy};
use crate::ops::{lower_delta, RuleOp};
use crate::state::{ControllerState, UeRecord};

/// How a policy-path request was satisfied — the sharded controller's
/// telemetry and cache accounting are derived from this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitTier {
    /// Already installed: served from the `(clause, station)` cache.
    Cached,
    /// An optimistic plan computed outside the sequencer validated
    /// against current state and was committed as-is.
    Fast,
    /// An optimistic plan was offered but had gone stale (or did not
    /// match the engine's mode); the path was re-planned under the
    /// ticket.
    Replanned,
    /// No plan was offered; the ordinary sequential path ran.
    Unplanned,
}

/// How the controller picks a concrete middlebox instance for each kind
/// in a clause's chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstanceSelection {
    /// Greedy nearest instance from the current path cursor (minimizes
    /// path stretch — the production default).
    Nearest,
    /// Round-robin across instances of the kind (load balancing).
    RoundRobin,
    /// Uniformly random instance (the paper's §6.3 simulation
    /// methodology: "m randomly chosen middlebox instances").
    Random {
        /// Deterministic seed.
        seed: u64,
    },
}

/// Static controller configuration.
#[derive(Clone, Copy, Debug)]
pub struct ControllerConfig {
    /// LocIP layout.
    pub scheme: AddressingScheme,
    /// Tag-in-port layout.
    pub ports: PortEmbedding,
    /// Tag selection tunables.
    pub tag_policy: TagPolicy,
    /// Middlebox instance selection.
    pub selection: InstanceSelection,
    /// DHCP pool for permanent UE addresses.
    pub permanent_pool: Ipv4Prefix,
    /// Install uplink rules too (the end-to-end mode); rule-counting
    /// experiments install downlink only, like the paper's Fig. 3 view.
    pub bidirectional: bool,
}

impl ControllerConfig {
    /// A ready-to-use configuration for end-to-end simulation.
    pub fn simulation() -> Self {
        ControllerConfig {
            scheme: AddressingScheme::default_scheme(),
            ports: PortEmbedding::default_embedding(),
            tag_policy: TagPolicy {
                capacity: 1024, // the Fig. 4 embodiment: 10 tag bits
                ..TagPolicy::default()
            },
            selection: InstanceSelection::Nearest,
            permanent_pool: Ipv4Prefix::from_bits(0x6440_0000, 10), // 100.64/10
            bidirectional: true,
        }
    }
}

/// Everything the local agent needs after an attach (§4.2: "the
/// controller computes the packet classifiers based on the service
/// policy, the UE's subscriber attributes, and the current policy tags").
#[derive(Clone, Debug)]
pub struct AttachGrant {
    /// The controller-side UE record (permanent IP, location).
    pub record: UeRecord,
    /// The policy specialized to this subscriber.
    pub classifier: UeClassifier,
}

/// The tags realizing one (clause, base station) policy path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathTags {
    /// Tag the access-edge classifier embeds in the uplink source port.
    pub uplink_entry: PolicyTag,
    /// Tag the packet carries when it exits the gateway (what the
    /// Internet echoes back).
    pub uplink_exit: PolicyTag,
    /// Tag on the packet when it reaches the access switch again on the
    /// downlink (after any downlink swaps) — what the delivery microflow
    /// entry must match.
    pub downlink_final: PolicyTag,
    /// The access switch's output port for the first hop of the uplink
    /// path (the microflow rule's forward target): either the fabric
    /// link towards the second hop or a middlebox port on the access
    /// switch itself.
    pub access_out_port: PortNo,
    /// QoS class of the governing clause, if any.
    pub qos: Option<QosClass>,
}

/// The central SoftCell controller.
pub struct CentralController<'t> {
    topo: &'t Topology,
    cfg: ControllerConfig,
    state: ControllerState,
    apps: AppClassifier,
    installer: PathInstaller<'t>,
    paths: ShortestPaths<'t>,
    /// Installed policy paths by (clause, origin station).
    installed: HashMap<(ClauseId, BaseStationId), PathTags>,
    /// Installed mobile-to-mobile paths by (clause, from, to) — §7.
    m2m: HashMap<(ClauseId, BaseStationId, BaseStationId), PathTags>,
    /// The routed m2m path objects (offline recompute replays them).
    routed_m2m: HashMap<(ClauseId, BaseStationId, BaseStationId), PolicyPath>,
    /// The routed path objects (mobility shortcuts need them).
    routed: HashMap<(ClauseId, BaseStationId), PolicyPath>,
    rr_counters: HashMap<MiddleboxKind, usize>,
    rng: u64,
    /// Rule operations awaiting application to the physical network.
    pending_ops: Vec<RuleOp>,
    /// Mobility bookkeeping (tunnels, transitions — see [`crate::mobility`]).
    mobility: crate::mobility::MobilityManager,
}

impl<'t> CentralController<'t> {
    /// Creates a controller over a topology.
    pub fn new(
        topo: &'t Topology,
        cfg: ControllerConfig,
        policy: softcell_policy::ServicePolicy,
    ) -> Self {
        let seed = match cfg.selection {
            InstanceSelection::Random { seed } => seed | 1,
            _ => 1,
        };
        CentralController {
            topo,
            cfg,
            state: ControllerState::new(policy, cfg.permanent_pool),
            apps: AppClassifier::default(),
            installer: PathInstaller::new(topo, cfg.scheme, cfg.tag_policy),
            paths: ShortestPaths::new(topo),
            installed: HashMap::new(),
            m2m: HashMap::new(),
            routed_m2m: HashMap::new(),
            routed: HashMap::new(),
            rr_counters: HashMap::new(),
            rng: seed,
            pending_ops: Vec::new(),
            mobility: crate::mobility::MobilityManager::default(),
        }
    }

    /// The topology this controller manages.
    pub fn topology(&self) -> &'t Topology {
        self.topo
    }

    /// The configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Read access to controller state (for replicas and tests).
    pub fn state(&self) -> &ControllerState {
        &self.state
    }

    /// Mutable state (failover rebuild and subscriber provisioning).
    pub fn state_mut(&mut self) -> &mut ControllerState {
        &mut self.state
    }

    /// The application classifier in use.
    pub fn apps(&self) -> &AppClassifier {
        &self.apps
    }

    /// The path installer (rule counts, tags in use).
    pub fn installer(&self) -> &PathInstaller<'t> {
        &self.installer
    }

    /// Mutable installer access (tunnel tag allocation).
    pub fn installer_mut(&mut self) -> &mut PathInstaller<'t> {
        &mut self.installer
    }

    /// The shortest-path cache (mobility meet-point searches).
    pub fn paths_mut(&mut self) -> &mut ShortestPaths<'t> {
        &mut self.paths
    }

    /// Mobility bookkeeping.
    pub fn mobility(&self) -> &crate::mobility::MobilityManager {
        &self.mobility
    }

    /// Mutable mobility bookkeeping.
    pub fn mobility_mut(&mut self) -> &mut crate::mobility::MobilityManager {
        &mut self.mobility
    }

    /// Provisions a subscriber (HSS-style).
    pub fn put_subscriber(&mut self, attrs: SubscriberAttributes) {
        self.state.put_subscriber(attrs);
    }

    /// Drains the rule operations produced since the last drain. The
    /// simulator applies them to the physical switches.
    ///
    /// # Ordering invariant
    ///
    /// Ops come out in **insertion order**, and for any single switch
    /// the drained stream preserves the order in which the controller
    /// queued that switch's ops. This per-switch ordering is what the
    /// batched installation path relies on: [`crate::ops::batch_by_switch`]
    /// groups a drain into barrier-delimited per-switch batches, and a
    /// barrier at each batch boundary is then *sufficient* for
    /// consistency — dependent ops (an install superseding a remove, a
    /// tunnel leg before its launch rule on the same switch) always
    /// target the same switch and stay ordered inside its batch, while
    /// ops for different switches touch disjoint state and never need a
    /// cross-switch fence. `tests/drain_order.rs` holds the regression
    /// test for this invariant.
    pub fn drain_ops(&mut self) -> Vec<RuleOp> {
        std::mem::take(&mut self.pending_ops)
    }

    /// Drains the pending ops as barrier-delimited per-switch batches
    /// (see [`drain_ops`](Self::drain_ops) for the ordering invariant
    /// making this safe).
    pub fn drain_op_batches(&mut self) -> Vec<crate::ops::SwitchBatch> {
        crate::ops::batch_by_switch(self.drain_ops())
    }

    /// Handles a UE attach reported by a local agent (which has already
    /// assigned the local `ue_id`). Returns the grant the agent caches.
    pub fn attach_ue(
        &mut self,
        imsi: UeImsi,
        bs: BaseStationId,
        ue_id: UeId,
        now: SimTime,
    ) -> Result<AttachGrant> {
        self.attach_ue_with_ip(imsi, bs, ue_id, now, None)
    }

    /// [`attach_ue`](Self::attach_ue) with an externally allocated
    /// permanent address (the sharded controller's per-shard address
    /// ranges; `None` uses the state's own pool).
    pub fn attach_ue_with_ip(
        &mut self,
        imsi: UeImsi,
        bs: BaseStationId,
        ue_id: UeId,
        now: SimTime,
        permanent_ip: Option<std::net::Ipv4Addr>,
    ) -> Result<AttachGrant> {
        let record = self
            .state
            .attach_with_ip(imsi, bs, ue_id, now, permanent_ip)?;
        let attrs = self.state.subscriber(imsi)?;
        let classifier = UeClassifier::compile(&self.state.policy, &self.apps, attrs);
        Ok(AttachGrant { record, classifier })
    }

    /// Detaches a UE. Any in-flight mobility transition is aborted: the
    /// per-UE anchor rules come down with the UE (its flows are dead).
    pub fn detach_ue(&mut self, imsi: UeImsi) -> Result<UeRecord> {
        let teardown = self.abort_transition(imsi);
        self.pending_ops.extend(teardown);
        self.state.detach(imsi)
    }

    /// Returns the tags for a (clause, base station) policy path,
    /// installing it first if needed — the local agent calls this when
    /// its tag cache misses (§4.2: "the local agent only contacts the
    /// controller if no policy tag exists for this flow").
    pub fn request_policy_path(&mut self, bs: BaseStationId, clause: ClauseId) -> Result<PathTags> {
        self.request_policy_path_planned(bs, clause, None)
            .map(|(tags, _)| tags)
    }

    /// [`request_policy_path`](Self::request_policy_path), optionally
    /// seeded with an optimistic plan computed outside the sequencer.
    /// A still-current plan commits directly (the fast tier) — byte-
    /// identical to re-planning here, because planning is pure and the
    /// plan's version stamps prove nothing it read has changed. A stale
    /// or mode-mismatched plan is discarded and the sequential path
    /// re-plans under the caller's exclusivity (the fallback tier).
    ///
    /// The fast tier is gated on [`InstanceSelection::Nearest`]: it is
    /// the only selection mode that is a pure function of the topology
    /// (round-robin and random advance engine-private cursors, which an
    /// outside planner cannot model).
    pub fn request_policy_path_planned(
        &mut self,
        bs: BaseStationId,
        clause: ClauseId,
        planned: Option<&PolicyPathPlan>,
    ) -> Result<(PathTags, CommitTier)> {
        if let Some(tags) = self.installed.get(&(clause, bs)) {
            return Ok((*tags, CommitTier::Cached));
        }
        let clause_def = self
            .state
            .policy
            .clause(clause)
            .ok_or_else(|| Error::NotFound(format!("clause {clause:?}")))?;
        if clause_def.action.access == AccessControl::Deny {
            return Err(Error::InvalidState(format!(
                "clause {clause:?} denies traffic; no path to install"
            )));
        }
        let qos = clause_def.action.qos;
        let chain = clause_def.action.chain.clone();

        if let Some(plan) = planned {
            if self.cfg.selection == InstanceSelection::Nearest
                && plan.path.origin == bs
                && plan.matches_mode(self.cfg.bidirectional)
                && self.installer.plan_is_current(&plan.stamps)
            {
                let path = plan.path.clone();
                let tags = self.apply_planned(plan)?;
                let access_out_port = self.access_out_port(&path)?;
                let tags = PathTags {
                    qos,
                    access_out_port,
                    ..tags
                };
                self.installed.insert((clause, bs), tags);
                self.routed.insert((clause, bs), path);
                return Ok((tags, CommitTier::Fast));
            }
        }
        let tier = if planned.is_some() {
            CommitTier::Replanned
        } else {
            CommitTier::Unplanned
        };

        let instances = self.select_instances(bs, &chain)?;
        let gateway = self.topo.default_gateway().switch;
        let path = self.paths.route_policy_path(bs, &instances, gateway)?;

        let tags = self.install(&path)?;
        let access_out_port = self.access_out_port(&path)?;
        let tags = PathTags {
            qos,
            access_out_port,
            ..tags
        };
        self.installed.insert((clause, bs), tags);
        self.routed.insert((clause, bs), path);
        Ok((tags, tier))
    }

    /// Commits a validated optimistic plan, mirroring [`Self::install`]
    /// exactly: uplink rules lowered first, then the downlink (whose
    /// planned entry tag is the uplink's planned exit).
    fn apply_planned(&mut self, plan: &PolicyPathPlan) -> Result<PathTags> {
        let bidirectional = plan.uplink.is_some();
        let (uplink_entry, uplink_exit) = if let Some(up) = &plan.uplink {
            let rep = self.installer.apply_path_plan(up);
            self.lower_last(Direction::Uplink)?;
            (rep.entry_tag(), rep.exit_tag())
        } else {
            (PolicyTag(0), PolicyTag(0))
        };
        let down = self.installer.apply_path_plan(&plan.downlink);
        self.lower_last(Direction::Downlink)?;
        Ok(PathTags {
            uplink_entry: if bidirectional {
                uplink_entry
            } else {
                down.entry_tag()
            },
            uplink_exit: if bidirectional {
                uplink_exit
            } else {
                down.entry_tag()
            },
            downlink_final: down.exit_tag(),
            access_out_port: PortNo(0), // filled by the caller
            qos: None,
        })
    }

    /// The routed policy path of an installed (clause, station) pair.
    pub fn routed_path(&self, bs: BaseStationId, clause: ClauseId) -> Option<&PolicyPath> {
        self.routed.get(&(clause, bs))
    }

    /// Installs a path (downlink always; uplink too in bidirectional
    /// mode), lowering deltas into pending rule operations.
    fn install(&mut self, path: &PolicyPath) -> Result<PathTags> {
        let (uplink_entry, uplink_exit) = if self.cfg.bidirectional {
            let up = self.installer.install_path(path, Direction::Uplink)?;
            self.lower_last(Direction::Uplink)?;
            (up.entry_tag(), up.exit_tag())
        } else {
            (PolicyTag(0), PolicyTag(0))
        };

        let down = if self.cfg.bidirectional {
            self.installer
                .install_path_forced(path, Direction::Downlink, uplink_exit)?
        } else {
            self.installer.install_path(path, Direction::Downlink)?
        };
        self.lower_last(Direction::Downlink)?;

        Ok(PathTags {
            uplink_entry: if self.cfg.bidirectional {
                uplink_entry
            } else {
                down.entry_tag()
            },
            uplink_exit: if self.cfg.bidirectional {
                uplink_exit
            } else {
                down.entry_tag()
            },
            downlink_final: down.exit_tag(),
            access_out_port: PortNo(0), // filled by the caller
            qos: None,
        })
    }

    /// Returns the tags for a mobile-to-mobile policy path (paper §7:
    /// "when X and Y are in the same cellular core network, SoftCell
    /// establishes a direct path between them without detouring via a
    /// gateway switch"). The path runs access(from) → middlebox chain →
    /// access(to); the classification state is embedded in the
    /// *destination* fields (the sender's access switch rewrites the
    /// destination to the peer's LocIP with the tag in the port), so the
    /// fabric forwards it with ordinary downlink-direction rules.
    pub fn request_m2m_path(
        &mut self,
        from: BaseStationId,
        to: BaseStationId,
        clause: ClauseId,
    ) -> Result<PathTags> {
        if let Some(tags) = self.m2m.get(&(clause, from, to)) {
            return Ok(*tags);
        }
        let clause_def = self
            .state
            .policy
            .clause(clause)
            .ok_or_else(|| Error::NotFound(format!("clause {clause:?}")))?;
        if clause_def.action.access == AccessControl::Deny {
            return Err(Error::InvalidState(format!(
                "clause {clause:?} denies traffic; no path to install"
            )));
        }
        let qos = clause_def.action.qos;
        let chain = clause_def.action.chain.clone();
        let instances = self.select_instances(from, &chain)?;

        // Route with the *peer* as the path origin and the sender's
        // access switch as the terminal: installing the Downlink
        // direction then yields rules from the sender towards the peer,
        // traversing the chain in the sender's order.
        let reversed: Vec<MiddleboxId> = instances.into_iter().rev().collect();
        let from_access = self.topo.base_station(from).access_switch;
        let path = self.paths.route_policy_path(to, &reversed, from_access)?;
        if path.hops.last().and_then(|h| h.mb_after).is_some() {
            return Err(Error::InvalidState(
                "m2m chains ending in a middlebox on the sender's access switch                  are not supported"
                    .into(),
            ));
        }

        let report = self.installer.install_path(&path, Direction::Downlink)?;
        self.lower_last(Direction::Downlink)?;

        // the sender-side out port: towards the hop before its access
        // switch in the (to-rooted) path
        let access_out_port = if path.hops.len() >= 2 {
            let next = path.hops[path.hops.len() - 2].switch;
            self.topo
                .port_towards(from_access, next)
                .ok_or_else(|| Error::NotFound(format!("{from_access} unlinked from {next}")))?
        } else {
            return Err(Error::InvalidState("degenerate m2m path".into()));
        };

        let tags = PathTags {
            uplink_entry: report.entry_tag(),
            uplink_exit: report.entry_tag(),
            downlink_final: report.exit_tag(),
            access_out_port,
            qos,
        };
        self.m2m.insert((clause, from, to), tags);
        self.routed_m2m.insert((clause, from, to), path);
        Ok(tags)
    }

    /// All routed Internet-bound policy paths (offline recompute input).
    pub(crate) fn routed_entries(
        &self,
    ) -> impl Iterator<Item = ((ClauseId, BaseStationId), &PolicyPath)> {
        self.routed.iter().map(|(k, v)| (*k, v))
    }

    /// All routed m2m policy paths (offline recompute input).
    pub(crate) fn m2m_entries(
        &self,
    ) -> impl Iterator<Item = ((ClauseId, BaseStationId, BaseStationId), &PolicyPath)> {
        self.routed_m2m.iter().map(|(k, v)| (*k, v))
    }

    /// Swaps in a freshly recomputed installer and the re-tagged path
    /// records; queues the migration operations.
    pub(crate) fn adopt_reoptimized(
        &mut self,
        fresh: PathInstaller<'t>,
        internet: Vec<((ClauseId, BaseStationId), PathTags, PolicyPath)>,
        m2m: Vec<(
            (ClauseId, BaseStationId, BaseStationId),
            crate::install::InstallReport,
            PolicyPath,
        )>,
        ops: Vec<RuleOp>,
    ) -> Result<()> {
        self.installer = fresh;
        self.pending_ops.extend(ops);
        self.installed.clear();
        for ((clause, bs), mut tags, path) in internet {
            tags.access_out_port = self.access_out_port(&path)?;
            tags.qos = self.state.policy.clause(clause).and_then(|c| c.action.qos);
            self.installed.insert((clause, bs), tags);
        }
        self.m2m.clear();
        for ((clause, from, to), report, path) in m2m {
            let from_access = self.topo.base_station(from).access_switch;
            let next = path.hops[path.hops.len() - 2].switch;
            let access_out_port = self
                .topo
                .port_towards(from_access, next)
                .ok_or_else(|| Error::NotFound(format!("{from_access} unlinked from {next}")))?;
            let qos = self.state.policy.clause(clause).and_then(|c| c.action.qos);
            self.m2m.insert(
                (clause, from, to),
                PathTags {
                    uplink_entry: report.entry_tag(),
                    uplink_exit: report.entry_tag(),
                    downlink_final: report.exit_tag(),
                    access_out_port,
                    qos,
                },
            );
        }
        Ok(())
    }

    /// The access switch's out-port for a path's first uplink step.
    fn access_out_port(&self, path: &PolicyPath) -> Result<PortNo> {
        let first = &path.hops[0];
        if let Some(mb) = first.mb_after {
            return Ok(self.topo.middlebox(mb).port);
        }
        let next = path.hops[1].switch;
        self.topo
            .port_towards(first.switch, next)
            .ok_or_else(|| Error::NotFound(format!("{} has no link to {next}", first.switch)))
    }

    fn lower_last(&mut self, dir: Direction) -> Result<()> {
        let carrier = self.cfg.scheme.carrier();
        for (sw, delta) in self.installer.last_deltas() {
            self.pending_ops.push(lower_delta(
                self.topo,
                &self.cfg.ports,
                carrier,
                dir,
                *sw,
                delta,
            )?);
        }
        Ok(())
    }

    /// Picks concrete instances for a chain of kinds, walking the path
    /// cursor forward (paths are routed access → ... → gateway).
    fn select_instances(
        &mut self,
        bs: BaseStationId,
        chain: &[MiddleboxKind],
    ) -> Result<Vec<MiddleboxId>> {
        if self.cfg.selection == InstanceSelection::Nearest {
            // shared with the sharded workers' optimistic planners, so
            // an outside plan picks exactly the instances the engine
            // would
            return select_nearest_instances(self.topo, &mut self.paths, bs, chain);
        }
        let mut out = Vec::with_capacity(chain.len());
        for &kind in chain {
            let instances = self.topo.instances_of(kind);
            if instances.is_empty() {
                return Err(Error::NoPath(format!("no instance of {kind} deployed")));
            }
            let chosen = match self.cfg.selection {
                InstanceSelection::Nearest => unreachable!("handled above"),
                InstanceSelection::RoundRobin => {
                    let c = self.rr_counters.entry(kind).or_insert(0);
                    let mb = instances[*c % instances.len()];
                    *c += 1;
                    mb
                }
                InstanceSelection::Random { .. } => {
                    // xorshift64*: deterministic given the seed
                    let mut x = self.rng;
                    x ^= x >> 12;
                    x ^= x << 25;
                    x ^= x >> 27;
                    self.rng = x;
                    let r = x.wrapping_mul(0x2545F4914F6CDD1D);
                    instances[(r % instances.len() as u64) as usize]
                }
            };
            out.push(chosen);
        }
        Ok(out)
    }
}

/// Greedy nearest-instance selection: walks the path cursor forward from
/// the station's access switch, picking the closest instance of each
/// kind. A pure function of the topology and BFS distances — the engine
/// and the sharded workers' optimistic planners both call this, which is
/// what lets a plan computed outside the sequencer name exactly the
/// instances the engine would have picked.
pub(crate) fn select_nearest_instances(
    topo: &Topology,
    paths: &mut ShortestPaths<'_>,
    bs: BaseStationId,
    chain: &[MiddleboxKind],
) -> Result<Vec<MiddleboxId>> {
    let mut cursor: SwitchId = topo.base_station(bs).access_switch;
    let mut out = Vec::with_capacity(chain.len());
    for &kind in chain {
        let instances = topo.instances_of(kind);
        if instances.is_empty() {
            return Err(Error::NoPath(format!("no instance of {kind} deployed")));
        }
        let mut best: Option<(u32, MiddleboxId)> = None;
        for &mb in instances {
            let host = topo.middlebox(mb).switch;
            if let Some(d) = paths.distance(cursor, host) {
                if best.map(|(bd, _)| d < bd).unwrap_or(true) {
                    best = Some((d, mb));
                }
            }
        }
        let chosen = best
            .ok_or_else(|| Error::NoPath(format!("no reachable instance of {kind}")))?
            .1;
        cursor = topo.middlebox(chosen).switch;
        out.push(chosen);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use softcell_policy::ServicePolicy;
    use softcell_topology::small_topology;

    fn controller(topo: &Topology) -> CentralController<'_> {
        let mut c = CentralController::new(
            topo,
            ControllerConfig::simulation(),
            ServicePolicy::example_carrier_a(1),
        );
        for i in 0..8 {
            c.put_subscriber(SubscriberAttributes::default_home(UeImsi(i)));
        }
        c
    }

    #[test]
    fn attach_grants_classifier_and_record() {
        let topo = small_topology();
        let mut c = controller(&topo);
        let g = c
            .attach_ue(UeImsi(0), BaseStationId(0), UeId(1), SimTime::ZERO)
            .unwrap();
        assert_eq!(g.record.bs, BaseStationId(0));
        assert!(!g.classifier.entries().is_empty());
        // unknown subscriber is refused
        assert!(c
            .attach_ue(UeImsi(77), BaseStationId(0), UeId(2), SimTime::ZERO)
            .is_err());
    }

    #[test]
    fn path_request_is_cached() {
        let topo = small_topology();
        let mut c = controller(&topo);
        // clause 5 in priority order = the catch-all (firewall)
        let catch_all = ClauseId(5);
        let t1 = c.request_policy_path(BaseStationId(0), catch_all).unwrap();
        let ops1 = c.drain_ops();
        assert!(!ops1.is_empty(), "first request installs rules");
        let t2 = c.request_policy_path(BaseStationId(0), catch_all).unwrap();
        assert_eq!(t1, t2);
        assert!(c.drain_ops().is_empty(), "cached request installs nothing");
        assert!(c.routed_path(BaseStationId(0), catch_all).is_some());
    }

    #[test]
    fn deny_clause_has_no_path() {
        let topo = small_topology();
        let mut c = controller(&topo);
        // clause index 1 = the deny clause (priority 5)
        assert!(c
            .request_policy_path(BaseStationId(0), ClauseId(1))
            .is_err());
    }

    #[test]
    fn qos_clause_reports_its_class() {
        let topo = small_topology();
        let mut c = controller(&topo);
        // clause index 4 = fleet tracking with LOW_LATENCY
        let tags = c
            .request_policy_path(BaseStationId(0), ClauseId(4))
            .unwrap();
        assert_eq!(tags.qos, Some(QosClass::LOW_LATENCY));
    }

    #[test]
    fn nearest_selection_prefers_close_instances() {
        let topo = small_topology();
        let mut c = controller(&topo);
        // echo canceller lives on agg1 (adjacent to bs0/bs1 access)
        let mbs = c
            .select_instances(BaseStationId(0), &[MiddleboxKind::EchoCanceller])
            .unwrap();
        assert_eq!(topo.middlebox(mbs[0]).switch, SwitchId(3));
    }

    #[test]
    fn round_robin_cycles_instances() {
        let topo = small_topology();
        let mut cfg = ControllerConfig::simulation();
        cfg.selection = InstanceSelection::RoundRobin;
        let mut c = CentralController::new(&topo, cfg, ServicePolicy::example_carrier_a(1));
        // only one firewall instance in the small topology: cycling is a
        // fixed point; this exercises the counter path
        let a = c
            .select_instances(BaseStationId(0), &[MiddleboxKind::Firewall])
            .unwrap();
        let b = c
            .select_instances(BaseStationId(0), &[MiddleboxKind::Firewall])
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn random_selection_is_deterministic_per_seed() {
        let topo = small_topology();
        let mut cfg = ControllerConfig::simulation();
        cfg.selection = InstanceSelection::Random { seed: 9 };
        let mut c1 = CentralController::new(&topo, cfg, ServicePolicy::example_carrier_a(1));
        let mut c2 = CentralController::new(&topo, cfg, ServicePolicy::example_carrier_a(1));
        for _ in 0..5 {
            assert_eq!(
                c1.select_instances(BaseStationId(0), &[MiddleboxKind::Firewall])
                    .unwrap(),
                c2.select_instances(BaseStationId(0), &[MiddleboxKind::Firewall])
                    .unwrap()
            );
        }
    }

    #[test]
    fn bidirectional_install_produces_consistent_tags() {
        let topo = small_topology();
        let mut c = controller(&topo);
        let tags = c
            .request_policy_path(BaseStationId(2), ClauseId(5))
            .unwrap();
        // with no downlink swaps the echoed tag is delivered unchanged
        assert_eq!(tags.uplink_exit, tags.downlink_final);
    }

    #[test]
    fn missing_middlebox_kind_denies_path() {
        let topo = small_topology();
        let mut c = controller(&topo);
        assert!(c
            .select_instances(BaseStationId(0), &[MiddleboxKind::LawfulIntercept])
            .is_err());
    }
}
