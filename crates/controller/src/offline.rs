//! Offline recomputation of the forwarding state (paper §3.2).
//!
//! "Our online algorithm is optimal if each policy path is processed one
//! at a time. For extremely constrained environments, we can couple the
//! online algorithm with an offline algorithm that would regularly
//! recompute the optimal forwarding entries."
//!
//! The online installer's results depend on arrival order: interleaved
//! clauses fragment tag reuse and sibling merges. The offline pass
//! replays every live policy path into a *fresh* installer in
//! chain-grouped, station-sorted order — the order that maximizes
//! chain-index hits and lets contiguous station prefixes merge as they
//! arrive — and emits a migration (full removals of the old rule set,
//! installs of the new one).
//!
//! This also closes the dynamic-removal story: dropping a policy path is
//! "forget it, recompute" — exactly the paper's suggested division of
//! labour between the online and offline algorithms.
//!
//! The migration is **not hitless**: new tags replace old ones, so the
//! caller must flush agent tag caches afterwards and let old microflow
//! entries drain (their fabric rules are gone; stale packets drop, which
//! is the fail-safe side of per-packet consistency). A hitless variant
//! would phase the two rule sets through
//! [`crate::update::TwoPhaseUpdate`].

use softcell_topology::PolicyPath;
use softcell_types::Result;

use crate::core::{CentralController, PathTags};
use crate::install::{Direction, PathInstaller, TagPolicy};
use crate::ops::{lower_delta, RuleOp};
use crate::shadow::ShadowDelta;

/// Before/after accounting of one offline pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OfflineOutcome {
    /// Total rules (both directions) before the recompute.
    pub rules_before: usize,
    /// Total rules after.
    pub rules_after: usize,
    /// Tags allocated before.
    pub tags_before: usize,
    /// Tags allocated after.
    pub tags_after: usize,
    /// Policy paths replayed (Internet-bound, counted once per
    /// direction pair) plus m2m paths.
    pub paths_replayed: usize,
}

impl<'t> CentralController<'t> {
    /// Recomputes every installed policy path from scratch in
    /// chain-grouped order, swaps in the fresh rule set, and queues the
    /// migration operations (removals of all old rules, installs of the
    /// new ones) for [`CentralController::drain_ops`].
    ///
    /// Local agents must refetch policy tags afterwards (their cached
    /// [`PathTags`] name retired tags); see
    /// `SimWorld::apply_reoptimization` for the full choreography.
    pub fn reoptimize_paths(&mut self) -> Result<OfflineOutcome> {
        let cfg = *self.config();
        let carrier = cfg.scheme.carrier();

        // ---- collect the live intents, chain-grouped ----------------
        let mut internet: Vec<(softcell_policy::clause::ClauseId, _, PolicyPath)> = self
            .routed_entries()
            .map(|((clause, bs), path)| (clause, bs, path.clone()))
            .collect();
        // group same-clause paths together, stations in numeric order:
        // adjacent prefixes arrive consecutively and merge immediately
        internet.sort_by_key(|(clause, bs, _)| (*clause, *bs));
        let m2m: Vec<(_, PolicyPath)> = self
            .m2m_entries()
            .map(|(k, path)| (k, path.clone()))
            .collect();

        let old_rules: usize = [Direction::Uplink, Direction::Downlink]
            .iter()
            .map(|d| {
                self.installer()
                    .shadows(*d)
                    .rule_counts()
                    .iter()
                    .sum::<usize>()
            })
            .sum();
        let old_tags = self.installer().tags_in_use();

        // ---- removals: every rule the old shadows hold ---------------
        let mut ops: Vec<RuleOp> = Vec::new();
        for dir in [Direction::Uplink, Direction::Downlink] {
            let shadows = self.installer().shadows(dir);
            for idx in 0..shadows.len() {
                let sw = softcell_types::SwitchId(idx as u32);
                for (entry, tag, prefix, _nh) in shadows.switch(sw).iter_rules() {
                    let delta = match prefix {
                        Some(prefix) => ShadowDelta::RemovePrefix { entry, tag, prefix },
                        None => {
                            // a default has no Remove delta form; lower
                            // the matcher via the Install form and flip
                            ShadowDelta::SetDefault {
                                entry,
                                tag,
                                nh: _nh,
                            }
                        }
                    };
                    let op = lower_delta(self.topology(), &cfg.ports, carrier, dir, sw, &delta)?;
                    let matcher = match op {
                        RuleOp::Install { matcher, .. } => matcher,
                        RuleOp::Remove { matcher, .. } => matcher,
                    };
                    ops.push(RuleOp::Remove {
                        switch: sw,
                        matcher,
                    });
                }
            }
        }

        // ---- fresh installer, replay in grouped order ----------------
        let mut fresh =
            PathInstaller::new(self.topology(), cfg.scheme, TagPolicy { ..cfg.tag_policy });
        let mut new_internet_tags = Vec::with_capacity(internet.len());
        let mut replayed = 0usize;
        for (clause, bs, path) in &internet {
            let tags = install_pair(&mut fresh, path, cfg.bidirectional, &mut ops, self, carrier)?;
            new_internet_tags.push(((*clause, *bs), tags, path.clone()));
            replayed += 1;
        }
        let mut new_m2m_tags = Vec::with_capacity(m2m.len());
        for (key, path) in &m2m {
            let report = fresh.install_path(path, Direction::Downlink)?;
            for (sw, delta) in fresh.last_deltas() {
                ops.push(lower_delta(
                    self.topology(),
                    &cfg.ports,
                    carrier,
                    Direction::Downlink,
                    *sw,
                    delta,
                )?);
            }
            new_m2m_tags.push((*key, report, path.clone()));
            replayed += 1;
        }

        let new_rules: usize = [Direction::Uplink, Direction::Downlink]
            .iter()
            .map(|d| fresh.shadows(*d).rule_counts().iter().sum::<usize>())
            .sum();
        let new_tags = fresh.tags_in_use();

        // Only migrate when the recompute actually wins — order effects
        // can occasionally favour the organic arrival order, and a
        // migration that isn't an improvement is pure churn.
        if new_rules >= old_rules {
            return Ok(OfflineOutcome {
                rules_before: old_rules,
                rules_after: old_rules,
                tags_before: old_tags,
                tags_after: old_tags,
                paths_replayed: replayed,
            });
        }

        // ---- swap in the fresh state ---------------------------------
        self.adopt_reoptimized(fresh, new_internet_tags, new_m2m_tags, ops)?;

        Ok(OfflineOutcome {
            rules_before: old_rules,
            rules_after: new_rules,
            tags_before: old_tags,
            tags_after: new_tags,
            paths_replayed: replayed,
        })
    }
}

/// Installs one Internet-bound path pair (uplink + forced downlink, or
/// downlink only), appending the lowered ops.
fn install_pair(
    fresh: &mut PathInstaller<'_>,
    path: &PolicyPath,
    bidirectional: bool,
    ops: &mut Vec<RuleOp>,
    ctl: &CentralController<'_>,
    carrier: softcell_types::Ipv4Prefix,
) -> Result<PathTags> {
    let cfg = ctl.config();
    let (entry, exit) = if bidirectional {
        let up = fresh.install_path(path, Direction::Uplink)?;
        for (sw, delta) in fresh.last_deltas() {
            ops.push(lower_delta(
                ctl.topology(),
                &cfg.ports,
                carrier,
                Direction::Uplink,
                *sw,
                delta,
            )?);
        }
        (up.entry_tag(), up.exit_tag())
    } else {
        (softcell_types::PolicyTag(0), softcell_types::PolicyTag(0))
    };
    let down = if bidirectional {
        fresh.install_path_forced(path, Direction::Downlink, exit)?
    } else {
        fresh.install_path(path, Direction::Downlink)?
    };
    for (sw, delta) in fresh.last_deltas() {
        ops.push(lower_delta(
            ctl.topology(),
            &cfg.ports,
            carrier,
            Direction::Downlink,
            *sw,
            delta,
        )?);
    }
    Ok(PathTags {
        uplink_entry: if bidirectional {
            entry
        } else {
            down.entry_tag()
        },
        uplink_exit: if bidirectional {
            exit
        } else {
            down.entry_tag()
        },
        downlink_final: down.exit_tag(),
        access_out_port: softcell_types::PortNo(0), // recomputed by adopt
        qos: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::ControllerConfig;
    use softcell_policy::clause::ClauseId;
    use softcell_policy::{ServicePolicy, SubscriberAttributes};
    use softcell_topology::small_topology;
    use softcell_types::{BaseStationId, UeImsi};

    #[test]
    fn reoptimize_never_increases_rules() {
        let topo = small_topology();
        let mut ctl = CentralController::new(
            &topo,
            ControllerConfig::simulation(),
            ServicePolicy::example_carrier_a(1),
        );
        for i in 0..4 {
            ctl.put_subscriber(SubscriberAttributes::default_home(UeImsi(i)));
        }
        // pessimal order: interleave clauses across stations
        for clause in [5u16, 3, 4] {
            for bs in [3u32, 0, 2, 1] {
                ctl.request_policy_path(BaseStationId(bs), ClauseId(clause))
                    .unwrap();
            }
        }
        ctl.drain_ops();

        let outcome = ctl.reoptimize_paths().unwrap();
        assert_eq!(outcome.paths_replayed, 12);
        assert!(
            outcome.rules_after <= outcome.rules_before,
            "offline pass must not be worse: {} -> {}",
            outcome.rules_before,
            outcome.rules_after
        );
        // whether or not a migration happened, cached path requests keep
        // working without reinstalling
        let _ = ctl.drain_ops();
        let t = ctl
            .request_policy_path(BaseStationId(0), ClauseId(5))
            .unwrap();
        assert!(ctl.drain_ops().is_empty(), "cached after reopt");
        let _ = t;
    }

    #[test]
    fn reoptimize_is_idempotent() {
        let topo = small_topology();
        let mut ctl = CentralController::new(
            &topo,
            ControllerConfig::simulation(),
            ServicePolicy::example_carrier_a(1),
        );
        for i in 0..2 {
            ctl.put_subscriber(SubscriberAttributes::default_home(UeImsi(i)));
        }
        for bs in 0..4u32 {
            ctl.request_policy_path(BaseStationId(bs), ClauseId(5))
                .unwrap();
        }
        let first = ctl.reoptimize_paths().unwrap();
        let second = ctl.reoptimize_paths().unwrap();
        assert_eq!(second.rules_before, first.rules_after);
        assert_eq!(second.rules_after, first.rules_after, "fixed point");
    }
}
