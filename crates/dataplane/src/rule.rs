//! Flow rules and actions.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

use softcell_types::PortNo;

use crate::matcher::Match;

/// A rule identifier, unique within one switch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct RuleId(pub u64);

/// Which transport port field an action rewrites (the tag lives in the
/// source port on the uplink and the destination port on the downlink).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PortField {
    /// Source port.
    Src,
    /// Destination port.
    Dst,
}

/// What a matching rule does with the packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Action {
    /// Forward out a port.
    Forward(PortNo),
    /// Rewrite source address/port (access-edge uplink embedding) then
    /// forward.
    RewriteSrcForward {
        /// New source address (the LocIP).
        addr: Ipv4Addr,
        /// New source port (tag | flow slot).
        port: u16,
        /// Output port.
        out: PortNo,
    },
    /// Rewrite destination address/port (access-edge downlink delivery)
    /// then forward.
    RewriteDstForward {
        /// New destination address (the UE's permanent address).
        addr: Ipv4Addr,
        /// New destination port (the UE's original source port).
        port: u16,
        /// Output port.
        out: PortNo,
    },
    /// Mark the DSCP field (QoS action of a service policy) then forward.
    SetDscpForward {
        /// DSCP value to set.
        dscp: u8,
        /// Output port.
        out: PortNo,
    },
    /// Rewrite the tag bits of a transport port, then forward — the
    /// loop-disambiguation tag swap (paper §3.2). The new bits are
    /// `(port & !mask) | value`.
    RewritePortBitsForward {
        /// Which port field carries the tag in this direction.
        field: PortField,
        /// The tag bits to write.
        value: u16,
        /// The tag mask.
        mask: u16,
        /// Output port.
        out: PortNo,
    },
    /// Punt to the local agent / controller (packet-in).
    ToController,
    /// Drop (access-control action).
    Drop,
}

impl Action {
    /// The output port, if this action forwards.
    pub fn out_port(&self) -> Option<PortNo> {
        match self {
            Action::Forward(p)
            | Action::RewriteSrcForward { out: p, .. }
            | Action::RewriteDstForward { out: p, .. }
            | Action::SetDscpForward { out: p, .. }
            | Action::RewritePortBitsForward { out: p, .. } => Some(*p),
            Action::ToController | Action::Drop => None,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Forward(p) => write!(f, "forward({p})"),
            Action::RewriteSrcForward { addr, port, out } => {
                write!(f, "rewrite_src({addr}:{port})->forward({out})")
            }
            Action::RewriteDstForward { addr, port, out } => {
                write!(f, "rewrite_dst({addr}:{port})->forward({out})")
            }
            Action::SetDscpForward { dscp, out } => {
                write!(f, "set_dscp({dscp})->forward({out})")
            }
            Action::RewritePortBitsForward {
                field,
                value,
                mask,
                out,
            } => {
                write!(
                    f,
                    "swap_tag({field:?},{value:#06x}/{mask:#06x})->forward({out})"
                )
            }
            Action::ToController => write!(f, "to_controller"),
            Action::Drop => write!(f, "drop"),
        }
    }
}

/// A prioritized flow rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRule {
    /// Identifier assigned by the table at install time.
    pub id: RuleId,
    /// Numeric priority; higher wins. Ties break towards the
    /// earlier-installed rule.
    pub priority: u16,
    /// The wildcard match.
    pub matcher: Match,
    /// The action on match.
    pub action: Action,
}

impl fmt::Display for FlowRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>5}] {} -> {}",
            self.priority, self.matcher, self.action
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_port_extraction() {
        assert_eq!(Action::Forward(PortNo(3)).out_port(), Some(PortNo(3)));
        assert_eq!(
            Action::SetDscpForward {
                dscp: 46,
                out: PortNo(1)
            }
            .out_port(),
            Some(PortNo(1))
        );
        assert_eq!(Action::Drop.out_port(), None);
        assert_eq!(Action::ToController.out_port(), None);
    }

    #[test]
    fn display_formats() {
        let r = FlowRule {
            id: RuleId(1),
            priority: 100,
            matcher: Match::ANY,
            action: Action::Forward(PortNo(2)),
        };
        assert!(r.to_string().contains("any -> forward(p2)"));
        assert_eq!(Action::Drop.to_string(), "drop");
    }
}
