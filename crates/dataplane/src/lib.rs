//! The SoftCell data plane: a software model of the switches.
//!
//! SoftCell assumes commodity switches that can "perform arbitrary
//! wildcard matching on IP addresses and TCP/UDP port numbers" (paper
//! §2.1). This crate models exactly that device:
//!
//! * [`matcher`] — OpenFlow-style match structures over the fields
//!   SoftCell uses (input port, src/dst prefix, masked src/dst port,
//!   protocol, consistent-update version), with the paper's three rule
//!   *types* derivable from a match's shape: Type 1 `tag+prefix` (TCAM),
//!   Type 2 `tag` only (exact match), Type 3 `prefix` only (LPM) — §7.
//! * [`rule`] — prioritized flow rules and their actions (forward,
//!   rewrite-and-forward for the access edge, DSCP marking for QoS,
//!   punt-to-controller, drop).
//! * [`table`] — the priority-ordered flow table with counters and
//!   per-type occupancy statistics (the quantity Figure 7 measures).
//! * [`microflow`] — the exact-match five-tuple table access switches use
//!   (Open vSwitch holds ~100K microflows, §2.1); entries perform the
//!   LocIP/tag rewrite of §4.1.
//! * [`switch`] — a complete switch: role, ports, microflow table +
//!   flow table, and the lookup pipeline tying them together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matcher;
mod metrics;
pub mod microflow;
pub mod rule;
pub mod switch;
pub mod table;

pub use matcher::{LookupKey, Match, RuleType};
pub use microflow::{MicroflowAction, MicroflowEntry, MicroflowTable};
pub use rule::{Action, FlowRule, PortField, RuleId};
pub use switch::{ForwardDecision, Switch};
pub use table::{FlowTable, TableStats};
