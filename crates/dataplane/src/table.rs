//! The priority-ordered flow table.
//!
//! One logical table holds all three §7 entry types; priority bands keep
//! Type 1 > Type 2 > Type 3 exactly as the paper's multi-table layout
//! would. [`TableStats`] reports per-type occupancy — the scarce resource
//! Figure 7 measures is TCAM (Type 1) entries, while Type 2/3 can live in
//! cheaper exact-match/LPM memories.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use softcell_types::{Error, Result};

use crate::matcher::{LookupKey, Match, RuleType};
use crate::rule::{Action, FlowRule, RuleId};

/// A switch flow table: rules in priority order, with match counters.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FlowTable {
    /// Rules sorted by descending priority; ties preserve install order.
    rules: Vec<FlowRule>,
    next_id: u64,
    counters: HashMap<RuleId, u64>,
    capacity: Option<usize>,
}

/// Occupancy statistics by rule type.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableStats {
    /// Type 1 (tag+prefix, TCAM) entries.
    pub tag_and_prefix: usize,
    /// Type 2 (tag only, exact match) entries.
    pub tag_only: usize,
    /// Type 3 (prefix only, LPM) entries.
    pub prefix_only: usize,
    /// Everything else.
    pub other: usize,
}

impl TableStats {
    /// Total entries.
    pub fn total(&self) -> usize {
        self.tag_and_prefix + self.tag_only + self.prefix_only + self.other
    }
}

impl FlowTable {
    /// An unbounded table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// A table that rejects installs beyond `capacity` entries — models
    /// the few-thousand-entry TCAM budget of commodity switches (§1).
    pub fn with_capacity(capacity: usize) -> Self {
        FlowTable {
            capacity: Some(capacity),
            ..FlowTable::default()
        }
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Installs a rule, returning its id. Fails when at capacity.
    pub fn install(&mut self, priority: u16, matcher: Match, action: Action) -> Result<RuleId> {
        if let Some(cap) = self.capacity {
            if self.rules.len() >= cap {
                return Err(Error::Exhausted(format!("flow table full ({cap} entries)")));
            }
        }
        let id = RuleId(self.next_id);
        self.next_id += 1;
        let rule = FlowRule {
            id,
            priority,
            matcher,
            action,
        };
        // insert after the last rule with priority >= ours (stable ties)
        let pos = self.rules.partition_point(|r| r.priority >= priority);
        self.rules.insert(pos, rule);
        let m = crate::metrics::metrics();
        m.rule_installs.inc();
        m.table_occupancy_hwm.record_max(self.rules.len() as u64);
        Ok(id)
    }

    /// Removes a rule by id. Returns the removed rule.
    pub fn remove(&mut self, id: RuleId) -> Result<FlowRule> {
        let pos = self
            .rules
            .iter()
            .position(|r| r.id == id)
            .ok_or_else(|| Error::NotFound(format!("rule {id:?}")))?;
        self.counters.remove(&id);
        crate::metrics::metrics().rule_removals.inc();
        Ok(self.rules.remove(pos))
    }

    /// Removes every rule whose matcher satisfies `pred`; returns count.
    pub fn remove_where(&mut self, mut pred: impl FnMut(&FlowRule) -> bool) -> usize {
        let before = self.rules.len();
        let counters = &mut self.counters;
        self.rules.retain(|r| {
            let gone = pred(r);
            if gone {
                counters.remove(&r.id);
            }
            !gone
        });
        let removed = before - self.rules.len();
        crate::metrics::metrics().rule_removals.add(removed as u64);
        removed
    }

    /// Finds the highest-priority matching rule without bumping counters.
    pub fn peek(&self, key: &LookupKey) -> Option<&FlowRule> {
        self.rules.iter().find(|r| r.matcher.matches(key))
    }

    /// Looks up a packet, bumping the winning rule's counter.
    pub fn lookup(&mut self, key: &LookupKey) -> Option<FlowRule> {
        let rule = *self.rules.iter().find(|r| r.matcher.matches(key))?;
        *self.counters.entry(rule.id).or_insert(0) += 1;
        Some(rule)
    }

    /// A rule's match counter.
    pub fn counter(&self, id: RuleId) -> u64 {
        self.counters.get(&id).copied().unwrap_or(0)
    }

    /// Iterates rules in priority order.
    pub fn iter(&self) -> impl Iterator<Item = &FlowRule> {
        self.rules.iter()
    }

    /// Finds an installed rule by exact matcher equality.
    pub fn find_by_match(&self, matcher: &Match) -> Option<&FlowRule> {
        self.rules.iter().find(|r| &r.matcher == matcher)
    }

    /// Mutable handle to a rule (to repoint its action during
    /// aggregation). The rule keeps its priority slot.
    pub fn rule_mut(&mut self, id: RuleId) -> Option<&mut FlowRule> {
        self.rules.iter_mut().find(|r| r.id == id)
    }

    /// Per-type occupancy.
    pub fn stats(&self) -> TableStats {
        let mut s = TableStats::default();
        for r in &self.rules {
            match RuleType::of(&r.matcher) {
                RuleType::TagAndPrefix => s.tag_and_prefix += 1,
                RuleType::TagOnly => s.tag_only += 1,
                RuleType::PrefixOnly => s.prefix_only += 1,
                RuleType::Other => s.other += 1,
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{conventional_priority, Direction};
    use softcell_packet::{build_flow_packet, FiveTuple, HeaderView, Protocol};
    use softcell_types::{Ipv4Prefix, PolicyTag, PortEmbedding, PortNo};
    use std::net::Ipv4Addr;

    fn key_to(dst: Ipv4Addr, dst_port: u16) -> LookupKey {
        let t = FiveTuple {
            src: Ipv4Addr::new(198, 51, 100, 1),
            dst,
            src_port: 80,
            dst_port,
            proto: Protocol::Tcp,
        };
        let buf = build_flow_packet(t, 64, 0, &[]);
        LookupKey {
            in_port: PortNo(1),
            view: HeaderView::parse(&buf).unwrap(),
            version: 0,
        }
    }

    #[test]
    fn higher_priority_wins() {
        let mut t = FlowTable::new();
        t.install(10, Match::ANY, Action::Drop).unwrap();
        t.install(20, Match::ANY, Action::Forward(PortNo(2)))
            .unwrap();
        let k = key_to(Ipv4Addr::new(10, 0, 0, 1), 80);
        assert_eq!(t.lookup(&k).unwrap().action, Action::Forward(PortNo(2)));
    }

    #[test]
    fn ties_break_to_earlier_install() {
        let mut t = FlowTable::new();
        let first = t.install(10, Match::ANY, Action::Drop).unwrap();
        t.install(10, Match::ANY, Action::ToController).unwrap();
        let k = key_to(Ipv4Addr::new(10, 0, 0, 1), 80);
        assert_eq!(t.lookup(&k).unwrap().id, first);
    }

    #[test]
    fn type_priority_bands_give_paper_semantics() {
        // Install a Type 3 (prefix), Type 2 (tag), Type 1 (tag+prefix) for
        // overlapping traffic and check §7 resolution order.
        let e = PortEmbedding::default_embedding();
        let pref: Ipv4Prefix = "10.0.0.0/23".parse().unwrap();
        let mut t = FlowTable::new();
        let m3 = Match::prefix(Direction::Downlink, pref);
        let m2 = Match::tag(Direction::Downlink, PolicyTag(4), &e);
        let m1 = Match::tag_and_prefix(Direction::Downlink, PolicyTag(4), pref, &e);
        t.install(conventional_priority(&m3), m3, Action::Forward(PortNo(3)))
            .unwrap();
        t.install(conventional_priority(&m2), m2, Action::Forward(PortNo(2)))
            .unwrap();
        t.install(conventional_priority(&m1), m1, Action::Forward(PortNo(1)))
            .unwrap();

        let tagged_port = e.encode(PolicyTag(4), 0).unwrap();
        // matches all three → Type 1 wins
        let k = key_to(Ipv4Addr::new(10, 0, 0, 5), tagged_port);
        assert_eq!(t.lookup(&k).unwrap().action, Action::Forward(PortNo(1)));
        // tag matches, prefix doesn't → Type 2
        let k = key_to(Ipv4Addr::new(10, 0, 2, 5), tagged_port);
        assert_eq!(t.lookup(&k).unwrap().action, Action::Forward(PortNo(2)));
        // prefix matches, tag doesn't → Type 3
        let other_port = e.encode(PolicyTag(9), 0).unwrap();
        let k = key_to(Ipv4Addr::new(10, 0, 0, 5), other_port);
        assert_eq!(t.lookup(&k).unwrap().action, Action::Forward(PortNo(3)));
    }

    #[test]
    fn lpm_within_type3() {
        let mut t = FlowTable::new();
        let short = Match::prefix(Direction::Downlink, "10.0.0.0/16".parse().unwrap());
        let long = Match::prefix(Direction::Downlink, "10.0.0.0/24".parse().unwrap());
        t.install(
            conventional_priority(&short),
            short,
            Action::Forward(PortNo(1)),
        )
        .unwrap();
        t.install(
            conventional_priority(&long),
            long,
            Action::Forward(PortNo(2)),
        )
        .unwrap();
        let k = key_to(Ipv4Addr::new(10, 0, 0, 9), 80);
        assert_eq!(t.lookup(&k).unwrap().action, Action::Forward(PortNo(2)));
        let k = key_to(Ipv4Addr::new(10, 0, 5, 9), 80);
        assert_eq!(t.lookup(&k).unwrap().action, Action::Forward(PortNo(1)));
    }

    #[test]
    fn counters_count_hits() {
        let mut t = FlowTable::new();
        let id = t.install(10, Match::ANY, Action::Drop).unwrap();
        let k = key_to(Ipv4Addr::new(1, 1, 1, 1), 80);
        assert_eq!(t.counter(id), 0);
        t.lookup(&k);
        t.lookup(&k);
        assert_eq!(t.counter(id), 2);
        t.peek(&k);
        assert_eq!(t.counter(id), 2, "peek must not bump counters");
    }

    #[test]
    fn remove_and_remove_where() {
        let mut t = FlowTable::new();
        let a = t.install(10, Match::ANY, Action::Drop).unwrap();
        let m = Match::prefix(Direction::Downlink, "10.0.0.0/8".parse().unwrap());
        t.install(20, m, Action::Forward(PortNo(1))).unwrap();
        assert_eq!(t.len(), 2);
        t.remove(a).unwrap();
        assert!(t.remove(a).is_err());
        assert_eq!(t.remove_where(|r| r.matcher.location().is_some()), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut t = FlowTable::with_capacity(2);
        t.install(1, Match::ANY, Action::Drop).unwrap();
        t.install(1, Match::ANY, Action::Drop).unwrap();
        assert!(t.install(1, Match::ANY, Action::Drop).is_err());
        // freeing space allows installs again
        let id = t.iter().next().unwrap().id;
        t.remove(id).unwrap();
        assert!(t.install(1, Match::ANY, Action::Drop).is_ok());
    }

    #[test]
    fn stats_by_type() {
        let e = PortEmbedding::default_embedding();
        let pref: Ipv4Prefix = "10.0.0.0/23".parse().unwrap();
        let mut t = FlowTable::new();
        t.install(
            1,
            Match::tag_and_prefix(Direction::Downlink, PolicyTag(1), pref, &e),
            Action::Drop,
        )
        .unwrap();
        t.install(
            1,
            Match::tag(Direction::Downlink, PolicyTag(1), &e),
            Action::Drop,
        )
        .unwrap();
        t.install(1, Match::prefix(Direction::Downlink, pref), Action::Drop)
            .unwrap();
        t.install(1, Match::ANY, Action::Drop).unwrap();
        let s = t.stats();
        assert_eq!(
            (s.tag_and_prefix, s.tag_only, s.prefix_only, s.other),
            (1, 1, 1, 1)
        );
        assert_eq!(s.total(), 4);
    }

    #[test]
    fn find_by_match_and_rule_mut() {
        let mut t = FlowTable::new();
        let m = Match::prefix(Direction::Downlink, "10.0.0.0/8".parse().unwrap());
        let id = t.install(5, m, Action::Forward(PortNo(1))).unwrap();
        assert_eq!(t.find_by_match(&m).unwrap().id, id);
        t.rule_mut(id).unwrap().action = Action::Forward(PortNo(9));
        assert_eq!(
            t.find_by_match(&m).unwrap().action,
            Action::Forward(PortNo(9))
        );
    }
}
