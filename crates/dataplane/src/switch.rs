//! A complete switch: lookup pipeline over microflow + flow tables.
//!
//! The pipeline order models SoftCell's edge/core split:
//!
//! 1. **microflow table** (exact five-tuple) — populated by the local
//!    agent on access switches; performs the §4.1 rewrites;
//! 2. **flow table** (prioritized wildcard rules) — the fabric rules
//!    Algorithm 1 installs;
//! 3. **miss** — access switches punt to the local agent (packet-in),
//!    core switches drop.
//!
//! `process` applies the winning action to the packet bytes in place
//! (rewrites, DSCP marking, TTL decrement) and returns where the packet
//! goes next, so the simulator's per-hop loop is a single call.

use serde::{Deserialize, Serialize};

use softcell_packet::{HeaderView, Ipv4Packet};
use softcell_types::{Error, PortNo, Result, SimDuration, SimTime, SwitchId};

use crate::matcher::LookupKey;
use crate::microflow::{MicroflowAction, MicroflowTable};
use crate::rule::Action;
use crate::table::FlowTable;

/// Where a processed packet goes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ForwardDecision {
    /// Send out this port.
    Out(PortNo),
    /// Punt to the local agent / controller.
    ToController,
    /// Drop the packet.
    Drop,
}

/// Whether a switch runs a microflow table (access edge) or not (core).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PipelineKind {
    /// Access switch: microflow table first, table-miss punts to agent.
    Access,
    /// Fabric switch: flow table only, table-miss drops.
    Fabric,
}

/// A switch data plane.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Switch {
    /// This switch's identity.
    pub id: SwitchId,
    /// Pipeline flavour.
    pub kind: PipelineKind,
    /// The exact-match microflow table (used on access switches).
    pub microflow: MicroflowTable,
    /// The wildcard flow table.
    pub table: FlowTable,
    /// The configuration version this switch stamps on ingress traffic
    /// (consistent updates, §3.2 / Reitblatt et al.).
    pub ingress_version: u32,
    /// How long a microflow entry stays after its last packet.
    pub microflow_idle: SimDuration,
}

impl Switch {
    /// Creates an access switch (microflow pipeline, punt on miss).
    pub fn access(id: SwitchId) -> Self {
        Switch {
            id,
            kind: PipelineKind::Access,
            microflow: MicroflowTable::new(),
            table: FlowTable::new(),
            ingress_version: 0,
            microflow_idle: SimDuration::from_secs(30),
        }
    }

    /// Creates a fabric (aggregation/core/gateway) switch.
    pub fn fabric(id: SwitchId) -> Self {
        Switch {
            id,
            kind: PipelineKind::Fabric,
            microflow: MicroflowTable::new(),
            table: FlowTable::new(),
            ingress_version: 0,
            microflow_idle: SimDuration::from_secs(30),
        }
    }

    /// Processes a packet: looks up the pipeline, applies the action to
    /// the bytes in place, and says where it goes. `version` is the
    /// consistent-update stamp riding with the packet (assigned at
    /// ingress from [`Switch::ingress_version`]).
    pub fn process(
        &mut self,
        buffer: &mut [u8],
        in_port: PortNo,
        version: u32,
        now: SimTime,
    ) -> Result<ForwardDecision> {
        let view = HeaderView::parse(buffer)?;

        // 1. microflow table (access pipeline only)
        if self.kind == PipelineKind::Access {
            if let Some(action) = self.microflow.lookup(&view.tuple, now, self.microflow_idle) {
                return apply_microflow(buffer, action);
            }
        }

        // 2. wildcard flow table
        let key = LookupKey {
            in_port,
            view,
            version,
        };
        if let Some(rule) = self.table.lookup(&key) {
            return apply_rule(buffer, rule.action);
        }

        // 3. miss
        Ok(match self.kind {
            PipelineKind::Access => ForwardDecision::ToController,
            PipelineKind::Fabric => ForwardDecision::Drop,
        })
    }

    /// Decrements the packet's TTL in place; `Drop` when exhausted. The
    /// simulator calls this once per switch hop — it is what turns a
    /// forwarding loop from an infinite walk into a dropped packet.
    pub fn decrement_ttl(buffer: &mut [u8]) -> Result<ForwardDecision> {
        let mut ip = Ipv4Packet::new_checked(&mut buffer[..])?;
        match ip.decrement_ttl() {
            Some(_) => {
                ip.fill_checksum();
                Ok(ForwardDecision::Out(PortNo(0))) // placeholder: caller keeps port
            }
            None => Ok(ForwardDecision::Drop),
        }
    }
}

fn apply_microflow(buffer: &mut [u8], action: MicroflowAction) -> Result<ForwardDecision> {
    match action {
        MicroflowAction::RewriteSrc {
            addr,
            port,
            out,
            dscp,
        } => {
            rewrite_src(buffer, addr, port)?;
            if let Some(d) = dscp {
                let mut ip = Ipv4Packet::new_checked(&mut buffer[..])?;
                ip.set_dscp(d);
                ip.fill_checksum();
            }
            Ok(ForwardDecision::Out(out))
        }
        MicroflowAction::RewriteDst { addr, port, out } => {
            rewrite_dst(buffer, addr, port)?;
            Ok(ForwardDecision::Out(out))
        }
        MicroflowAction::Forward(out) => Ok(ForwardDecision::Out(out)),
        MicroflowAction::Drop => Ok(ForwardDecision::Drop),
    }
}

fn apply_rule(buffer: &mut [u8], action: Action) -> Result<ForwardDecision> {
    match action {
        Action::Forward(out) => Ok(ForwardDecision::Out(out)),
        Action::RewriteSrcForward { addr, port, out } => {
            rewrite_src(buffer, addr, port)?;
            Ok(ForwardDecision::Out(out))
        }
        Action::RewriteDstForward { addr, port, out } => {
            rewrite_dst(buffer, addr, port)?;
            Ok(ForwardDecision::Out(out))
        }
        Action::SetDscpForward { dscp, out } => {
            let mut ip = Ipv4Packet::new_checked(&mut buffer[..])?;
            ip.set_dscp(dscp);
            ip.fill_checksum();
            Ok(ForwardDecision::Out(out))
        }
        Action::RewritePortBitsForward {
            field,
            value,
            mask,
            out,
        } => {
            rewrite_port_bits(buffer, field, value, mask)?;
            Ok(ForwardDecision::Out(out))
        }
        Action::ToController => Ok(ForwardDecision::ToController),
        Action::Drop => Ok(ForwardDecision::Drop),
    }
}

fn rewrite_src(buffer: &mut [u8], addr: std::net::Ipv4Addr, port: u16) -> Result<()> {
    use softcell_packet::{Protocol, TcpSegment, UdpDatagram};
    let mut ip = Ipv4Packet::new_checked(&mut buffer[..])?;
    ip.set_src_addr(addr);
    match Protocol::from_number(ip.protocol())? {
        Protocol::Tcp => TcpSegment::new_checked(ip.payload_mut())?.set_src_port(port),
        Protocol::Udp => UdpDatagram::new_checked(ip.payload_mut())?.set_src_port(port),
    }
    ip.fill_checksum();
    Ok(())
}

fn rewrite_port_bits(
    buffer: &mut [u8],
    field: crate::rule::PortField,
    value: u16,
    mask: u16,
) -> Result<()> {
    use softcell_packet::{Protocol, TcpSegment, UdpDatagram};
    let mut ip = Ipv4Packet::new_checked(&mut buffer[..])?;
    let proto = Protocol::from_number(ip.protocol())?;
    let payload = ip.payload_mut();
    match (proto, field) {
        (Protocol::Tcp, crate::rule::PortField::Src) => {
            let mut seg = TcpSegment::new_checked(payload)?;
            let port = (seg.src_port() & !mask) | (value & mask);
            seg.set_src_port(port);
        }
        (Protocol::Tcp, crate::rule::PortField::Dst) => {
            let mut seg = TcpSegment::new_checked(payload)?;
            let port = (seg.dst_port() & !mask) | (value & mask);
            seg.set_dst_port(port);
        }
        (Protocol::Udp, crate::rule::PortField::Src) => {
            let mut dg = UdpDatagram::new_checked(payload)?;
            let port = (dg.src_port() & !mask) | (value & mask);
            dg.set_src_port(port);
        }
        (Protocol::Udp, crate::rule::PortField::Dst) => {
            let mut dg = UdpDatagram::new_checked(payload)?;
            let port = (dg.dst_port() & !mask) | (value & mask);
            dg.set_dst_port(port);
        }
    }
    ip.fill_checksum();
    Ok(())
}

fn rewrite_dst(buffer: &mut [u8], addr: std::net::Ipv4Addr, port: u16) -> Result<()> {
    use softcell_packet::{Protocol, TcpSegment, UdpDatagram};
    let mut ip = Ipv4Packet::new_checked(&mut buffer[..])?;
    ip.set_dst_addr(addr);
    match Protocol::from_number(ip.protocol())? {
        Protocol::Tcp => TcpSegment::new_checked(ip.payload_mut())?.set_dst_port(port),
        Protocol::Udp => UdpDatagram::new_checked(ip.payload_mut())?.set_dst_port(port),
    }
    ip.fill_checksum();
    Ok(())
}

/// Guards against `process` being called with a buffer that is not a
/// packet at all (defensive: sim bugs should fail loudly, not corrupt).
pub fn validate_packet(buffer: &[u8]) -> Result<()> {
    if buffer.len() < 20 {
        return Err(Error::Malformed(format!(
            "{}-byte buffer cannot be a packet",
            buffer.len()
        )));
    }
    HeaderView::parse(buffer).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{conventional_priority, Direction, Match};
    use softcell_packet::{build_flow_packet, FiveTuple, Protocol};
    use softcell_types::{Ipv4Prefix, PolicyTag, PortEmbedding};
    use std::net::Ipv4Addr;

    fn uplink_buf(sp: u16) -> Vec<u8> {
        build_flow_packet(
            FiveTuple {
                src: Ipv4Addr::new(100, 64, 0, 1),
                dst: Ipv4Addr::new(8, 8, 8, 8),
                src_port: sp,
                dst_port: 443,
                proto: Protocol::Tcp,
            },
            64,
            0,
            b"x",
        )
    }

    #[test]
    fn access_miss_punts_fabric_miss_drops() {
        let mut acc = Switch::access(SwitchId(0));
        let mut core = Switch::fabric(SwitchId(1));
        let mut buf = uplink_buf(1000);
        assert_eq!(
            acc.process(&mut buf, PortNo(1), 0, SimTime::ZERO).unwrap(),
            ForwardDecision::ToController
        );
        assert_eq!(
            core.process(&mut buf, PortNo(1), 0, SimTime::ZERO).unwrap(),
            ForwardDecision::Drop
        );
    }

    #[test]
    fn microflow_rewrites_and_forwards() {
        let mut acc = Switch::access(SwitchId(0));
        let mut buf = uplink_buf(1000);
        let view = HeaderView::parse(&buf).unwrap();
        acc.microflow
            .install(
                view.tuple,
                MicroflowAction::RewriteSrc {
                    addr: Ipv4Addr::new(10, 0, 0, 10),
                    port: 0x0900,
                    out: PortNo(2),
                    dscp: Some(46),
                },
                SimTime::from_secs(30),
            )
            .unwrap();
        let d = acc.process(&mut buf, PortNo(1), 0, SimTime::ZERO).unwrap();
        assert_eq!(d, ForwardDecision::Out(PortNo(2)));
        let after = HeaderView::parse(&buf).unwrap();
        assert_eq!(after.src(), Ipv4Addr::new(10, 0, 0, 10));
        assert_eq!(after.src_port(), 0x0900);
        assert_eq!(after.dscp, 46, "QoS marking applied at the edge");
        assert!(Ipv4Packet::new_checked(&buf[..]).unwrap().verify_checksum());
    }

    #[test]
    fn fabric_matches_tag_rules() {
        let e = PortEmbedding::default_embedding();
        let mut core = Switch::fabric(SwitchId(1));
        let m = Match::tag(Direction::Uplink, PolicyTag(3), &e);
        core.table
            .install(conventional_priority(&m), m, Action::Forward(PortNo(4)))
            .unwrap();
        let mut buf = uplink_buf(e.encode(PolicyTag(3), 2).unwrap());
        assert_eq!(
            core.process(&mut buf, PortNo(1), 0, SimTime::ZERO).unwrap(),
            ForwardDecision::Out(PortNo(4))
        );
        let mut other = uplink_buf(e.encode(PolicyTag(4), 2).unwrap());
        assert_eq!(
            core.process(&mut other, PortNo(1), 0, SimTime::ZERO)
                .unwrap(),
            ForwardDecision::Drop
        );
    }

    #[test]
    fn dscp_action_marks_packet() {
        let mut core = Switch::fabric(SwitchId(1));
        let pref: Ipv4Prefix = "100.64.0.0/10".parse().unwrap();
        let m = Match::prefix(Direction::Uplink, pref);
        core.table
            .install(
                conventional_priority(&m),
                m,
                Action::SetDscpForward {
                    dscp: 46,
                    out: PortNo(2),
                },
            )
            .unwrap();
        let mut buf = uplink_buf(1000);
        core.process(&mut buf, PortNo(1), 0, SimTime::ZERO).unwrap();
        assert_eq!(Ipv4Packet::new_checked(&buf[..]).unwrap().dscp(), 46);
    }

    #[test]
    fn version_gated_rules() {
        // Two versions of a rule coexist; the packet's stamp decides.
        let mut core = Switch::fabric(SwitchId(1));
        let m_old = Match::ANY.with_version(1);
        let m_new = Match::ANY.with_version(2);
        core.table
            .install(10, m_old, Action::Forward(PortNo(1)))
            .unwrap();
        core.table
            .install(10, m_new, Action::Forward(PortNo(2)))
            .unwrap();
        let mut buf = uplink_buf(1000);
        assert_eq!(
            core.process(&mut buf, PortNo(1), 1, SimTime::ZERO).unwrap(),
            ForwardDecision::Out(PortNo(1))
        );
        assert_eq!(
            core.process(&mut buf, PortNo(1), 2, SimTime::ZERO).unwrap(),
            ForwardDecision::Out(PortNo(2))
        );
    }

    #[test]
    fn tag_swap_rewrites_port_bits() {
        let e = PortEmbedding::default_embedding();
        let mut core = Switch::fabric(SwitchId(1));
        let (old_val, mask) = e.tag_match(PolicyTag(3));
        let (new_val, _) = e.tag_match(PolicyTag(7));
        let m = Match {
            src_port: Some((old_val, mask)),
            ..Match::ANY
        };
        core.table
            .install(
                100,
                m,
                Action::RewritePortBitsForward {
                    field: crate::rule::PortField::Src,
                    value: new_val,
                    mask,
                    out: PortNo(5),
                },
            )
            .unwrap();
        let mut buf = uplink_buf(e.encode(PolicyTag(3), 9).unwrap());
        let d = core.process(&mut buf, PortNo(1), 0, SimTime::ZERO).unwrap();
        assert_eq!(d, ForwardDecision::Out(PortNo(5)));
        let view = HeaderView::parse(&buf).unwrap();
        let (tag, slot) = e.decode(view.src_port());
        assert_eq!(tag, PolicyTag(7), "tag swapped");
        assert_eq!(slot, 9, "flow slot preserved");
    }

    #[test]
    fn process_rejects_garbage() {
        let mut core = Switch::fabric(SwitchId(1));
        let mut junk = vec![0u8; 10];
        assert!(core
            .process(&mut junk, PortNo(1), 0, SimTime::ZERO)
            .is_err());
        assert!(validate_packet(&junk).is_err());
    }
}
