//! Process-global telemetry handles for the data plane.
//!
//! Tables are plain values (`Clone + Serialize`), cloned freely by the
//! simulator and the sharded oracle, so they cannot carry `Arc`-backed
//! metric handles themselves. Instead every table instance feeds one
//! process-wide set of counters on [`Registry::global`]: totals across
//! all switches, plus high-water-mark gauges for occupancy.

use std::sync::{Arc, OnceLock};

use softcell_telemetry::{Counter, Gauge, Registry};

/// Interned handles, created once on first table mutation.
pub(crate) struct DataplaneMetrics {
    /// Flow-table rules installed (all switches, all rule types).
    pub rule_installs: Arc<Counter>,
    /// Flow-table rules removed (by id or predicate).
    pub rule_removals: Arc<Counter>,
    /// Largest single flow table seen (entries).
    pub table_occupancy_hwm: Arc<Gauge>,
    /// Microflow entries installed.
    pub microflow_installs: Arc<Counter>,
    /// Microflow entries evicted to make room in a full bounded table.
    pub microflow_evictions: Arc<Counter>,
    /// Microflow entries expired past their idle deadline.
    pub microflow_expirations: Arc<Counter>,
    /// Largest single microflow table seen (entries).
    pub microflow_occupancy_hwm: Arc<Gauge>,
}

pub(crate) fn metrics() -> &'static DataplaneMetrics {
    static METRICS: OnceLock<DataplaneMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = Registry::global();
        DataplaneMetrics {
            rule_installs: r.counter("softcell_dataplane_rule_installs_total"),
            rule_removals: r.counter("softcell_dataplane_rule_removals_total"),
            table_occupancy_hwm: r.gauge("softcell_dataplane_table_occupancy_hwm"),
            microflow_installs: r.counter("softcell_dataplane_microflow_installs_total"),
            microflow_evictions: r.counter("softcell_dataplane_microflow_evictions_total"),
            microflow_expirations: r.counter("softcell_dataplane_microflow_expirations_total"),
            microflow_occupancy_hwm: r.gauge("softcell_dataplane_microflow_occupancy_hwm"),
        }
    })
}
