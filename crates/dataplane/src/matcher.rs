//! Match structures and the three SoftCell rule types.
//!
//! A [`Match`] wildcards any subset of: input port, source/destination IP
//! prefix, masked source/destination transport port, protocol and
//! consistent-update version. SoftCell's policy tags live in the high bits
//! of a transport port (uplink: source port; downlink: destination port —
//! return traffic mirrors the embedding, paper §4.1), so "match on tag"
//! compiles to a masked port match via
//! [`PortEmbedding::tag_match`](softcell_types::PortEmbedding::tag_match).
//!
//! The paper's §7 classifies core-switch entries into three types with
//! decreasing priority — Type 1 `tag+prefix` (needs TCAM), Type 2 `tag`
//! only (exact match), Type 3 `prefix` only (LPM). [`RuleType`] derives
//! the type from a match's shape so tables can report how much of each
//! (scarce) memory technology a rule set would consume.

use serde::{Deserialize, Serialize};
use std::fmt;

use softcell_packet::{HeaderView, Protocol};
use softcell_types::{Ipv4Prefix, PolicyTag, PortEmbedding, PortNo};

/// Direction of the fields a rule matches on. Uplink rules classify on
/// *source* fields (the access edge embedded state there); downlink rules
/// classify on *destination* fields (the Internet echoed the state back).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Direction {
    /// UE → Internet: match source address/port.
    Uplink,
    /// Internet → UE: match destination address/port.
    Downlink,
}

/// A masked 16-bit match: `port & mask == value`.
pub type PortMask = (u16, u16);

/// An OpenFlow-style wildcard match.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct Match {
    /// Input port the packet arrived on (middlebox return traffic is
    /// identified this way, paper §3.1 footnote).
    pub in_port: Option<PortNo>,
    /// Source IP prefix.
    pub src_prefix: Option<Ipv4Prefix>,
    /// Destination IP prefix.
    pub dst_prefix: Option<Ipv4Prefix>,
    /// Masked source-port match.
    pub src_port: Option<PortMask>,
    /// Masked destination-port match.
    pub dst_port: Option<PortMask>,
    /// Transport protocol.
    pub proto: Option<Protocol>,
    /// Consistent-update version stamp (Reitblatt-style two-phase
    /// updates; packets are stamped at the ingress edge).
    pub version: Option<u32>,
}

/// Everything a lookup provides to the pipeline.
#[derive(Clone, Copy, Debug)]
pub struct LookupKey {
    /// Port the packet arrived on.
    pub in_port: PortNo,
    /// Parsed packet headers.
    pub view: HeaderView,
    /// The configuration version stamped on the packet at ingress.
    pub version: u32,
}

impl Match {
    /// The match that fires on everything.
    pub const ANY: Match = Match {
        in_port: None,
        src_prefix: None,
        dst_prefix: None,
        src_port: None,
        dst_port: None,
        proto: None,
        version: None,
    };

    /// A tag-only match in the given direction.
    pub fn tag(dir: Direction, tag: PolicyTag, ports: &PortEmbedding) -> Match {
        let pm = Some(ports.tag_match(tag));
        match dir {
            Direction::Uplink => Match {
                src_port: pm,
                ..Match::ANY
            },
            Direction::Downlink => Match {
                dst_port: pm,
                ..Match::ANY
            },
        }
    }

    /// A prefix-only match (location routing) in the given direction.
    pub fn prefix(dir: Direction, prefix: Ipv4Prefix) -> Match {
        match dir {
            Direction::Uplink => Match {
                src_prefix: Some(prefix),
                ..Match::ANY
            },
            Direction::Downlink => Match {
                dst_prefix: Some(prefix),
                ..Match::ANY
            },
        }
    }

    /// A tag+prefix match (the multi-dimensional Type 1 entry).
    pub fn tag_and_prefix(
        dir: Direction,
        tag: PolicyTag,
        prefix: Ipv4Prefix,
        ports: &PortEmbedding,
    ) -> Match {
        let mut m = Match::tag(dir, tag, ports);
        match dir {
            Direction::Uplink => m.src_prefix = Some(prefix),
            Direction::Downlink => m.dst_prefix = Some(prefix),
        }
        m
    }

    /// Restricts a match to a given input port (middlebox return leg).
    pub fn from_port(mut self, in_port: PortNo) -> Match {
        self.in_port = Some(in_port);
        self
    }

    /// Restricts a match to a consistent-update version.
    pub fn with_version(mut self, version: u32) -> Match {
        self.version = Some(version);
        self
    }

    /// Whether this match fires on the lookup key.
    pub fn matches(&self, key: &LookupKey) -> bool {
        if let Some(p) = self.in_port {
            if p != key.in_port {
                return false;
            }
        }
        if let Some(v) = self.version {
            if v != key.version {
                return false;
            }
        }
        if let Some(pr) = self.proto {
            if pr != key.view.tuple.proto {
                return false;
            }
        }
        if let Some(pref) = self.src_prefix {
            if !pref.contains(key.view.src()) {
                return false;
            }
        }
        if let Some(pref) = self.dst_prefix {
            if !pref.contains(key.view.dst()) {
                return false;
            }
        }
        if let Some((value, mask)) = self.src_port {
            if key.view.src_port() & mask != value {
                return false;
            }
        }
        if let Some((value, mask)) = self.dst_port {
            if key.view.dst_port() & mask != value {
                return false;
            }
        }
        true
    }

    /// The IP prefix this match constrains (whichever direction), if any.
    pub fn location(&self) -> Option<Ipv4Prefix> {
        self.src_prefix.or(self.dst_prefix)
    }

    /// Whether the match constrains a transport port (i.e. carries a tag).
    pub fn has_tag(&self) -> bool {
        self.src_port.is_some() || self.dst_port.is_some()
    }

    /// The direction implied by the constrained fields, if unambiguous.
    pub fn direction(&self) -> Option<Direction> {
        let up = self.src_prefix.is_some() || self.src_port.is_some();
        let down = self.dst_prefix.is_some() || self.dst_port.is_some();
        match (up, down) {
            (true, false) => Some(Direction::Uplink),
            (false, true) => Some(Direction::Downlink),
            _ => None,
        }
    }
}

impl fmt::Display for Match {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(p) = self.in_port {
            parts.push(format!("in_port={p}"));
        }
        if let Some(p) = self.src_prefix {
            parts.push(format!("src={p}"));
        }
        if let Some(p) = self.dst_prefix {
            parts.push(format!("dst={p}"));
        }
        if let Some((v, m)) = self.src_port {
            parts.push(format!("src_port={v:#06x}/{m:#06x}"));
        }
        if let Some((v, m)) = self.dst_port {
            parts.push(format!("dst_port={v:#06x}/{m:#06x}"));
        }
        if let Some(p) = self.proto {
            parts.push(format!("proto={p}"));
        }
        if let Some(v) = self.version {
            parts.push(format!("ver={v}"));
        }
        if parts.is_empty() {
            write!(f, "any")
        } else {
            write!(f, "{}", parts.join(","))
        }
    }
}

/// The paper's three entry types (§7), derived from a match's shape.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum RuleType {
    /// Tag + prefix: needs TCAM. Highest priority class.
    TagAndPrefix,
    /// Tag only: exact-match memory.
    TagOnly,
    /// Prefix only: LPM memory. Lowest priority class.
    PrefixOnly,
    /// Anything else (microflow-ish or exotic) — counted separately.
    Other,
}

impl RuleType {
    /// Classifies a match.
    pub fn of(m: &Match) -> RuleType {
        match (m.has_tag(), m.location().is_some()) {
            (true, true) => RuleType::TagAndPrefix,
            (true, false) => RuleType::TagOnly,
            (false, true) => RuleType::PrefixOnly,
            (false, false) => RuleType::Other,
        }
    }

    /// The conventional priority band for this type, matching the §7
    /// ordering (Type 1 > Type 2 > Type 3). Within the LPM band, longer
    /// prefixes get higher priority (standard LPM behaviour).
    pub fn base_priority(&self) -> u16 {
        match self {
            RuleType::TagAndPrefix => 30_000,
            RuleType::TagOnly => 20_000,
            RuleType::PrefixOnly => 10_000,
            RuleType::Other => 1_000,
        }
    }
}

/// Priority bump for input-port-qualified rules. An in-port qualifier
/// marks a more specific forwarding *context* (middlebox return legs,
/// loop disambiguation — paper §3.1/§3.2), so a qualified rule must beat
/// every unqualified policy rule of any type: a returning packet that
/// still matched its unqualified to-middlebox rule would bounce into the
/// middlebox forever. 25 000 places the lowest qualified band (Type 3 +
/// bump = 35 000) above the highest unqualified one (Type 1 + /32 =
/// 30 032).
pub const QUALIFIED_BUMP: u16 = 25_000;

/// The conventional priority for a match: its type band plus the prefix
/// length (so LPM falls out of straight priority ordering), plus the
/// input-port qualification bump.
pub fn conventional_priority(m: &Match) -> u16 {
    let ty = RuleType::of(m);
    let len = m.location().map(|p| p.len() as u16).unwrap_or(0);
    let inport_bump = if m.in_port.is_some() {
        QUALIFIED_BUMP
    } else {
        0
    };
    ty.base_priority() + len + inport_bump
}

#[cfg(test)]
mod tests {
    use super::*;
    use softcell_packet::{build_flow_packet, FiveTuple};
    use std::net::Ipv4Addr;

    fn ports() -> PortEmbedding {
        PortEmbedding::default_embedding()
    }

    fn key(src: Ipv4Addr, dst: Ipv4Addr, sp: u16, dp: u16, in_port: u16) -> LookupKey {
        let t = FiveTuple {
            src,
            dst,
            src_port: sp,
            dst_port: dp,
            proto: Protocol::Tcp,
        };
        let buf = build_flow_packet(t, 64, 0, &[]);
        LookupKey {
            in_port: PortNo(in_port),
            view: HeaderView::parse(&buf).unwrap(),
            version: 0,
        }
    }

    #[test]
    fn any_matches_everything() {
        let k = key(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            1,
            2,
            3,
        );
        assert!(Match::ANY.matches(&k));
    }

    #[test]
    fn downlink_tag_matches_embedded_dst_port() {
        let e = ports();
        let tag = PolicyTag(5);
        let m = Match::tag(Direction::Downlink, tag, &e);
        let embedded = e.encode(tag, 9).unwrap();
        let k = key(
            Ipv4Addr::new(9, 9, 9, 9),
            Ipv4Addr::new(10, 0, 0, 1),
            80,
            embedded,
            1,
        );
        assert!(m.matches(&k));
        let other = e.encode(PolicyTag(6), 9).unwrap();
        let k2 = key(
            Ipv4Addr::new(9, 9, 9, 9),
            Ipv4Addr::new(10, 0, 0, 1),
            80,
            other,
            1,
        );
        assert!(!m.matches(&k2));
    }

    #[test]
    fn uplink_prefix_matches_src() {
        let pref: Ipv4Prefix = "10.0.0.0/23".parse().unwrap();
        let m = Match::prefix(Direction::Uplink, pref);
        let hit = key(
            Ipv4Addr::new(10, 0, 1, 200),
            Ipv4Addr::new(8, 8, 8, 8),
            1,
            2,
            1,
        );
        let miss = key(
            Ipv4Addr::new(10, 0, 2, 1),
            Ipv4Addr::new(8, 8, 8, 8),
            1,
            2,
            1,
        );
        assert!(m.matches(&hit));
        assert!(!m.matches(&miss));
    }

    #[test]
    fn in_port_and_version_qualify() {
        let m = Match::ANY.from_port(PortNo(7)).with_version(3);
        let mut k = key(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1,
            2,
            7,
        );
        assert!(!m.matches(&k), "version 0 != 3");
        k.version = 3;
        assert!(m.matches(&k));
        k.in_port = PortNo(8);
        assert!(!m.matches(&k));
    }

    #[test]
    fn rule_type_classification() {
        let e = ports();
        let pref: Ipv4Prefix = "10.0.0.0/23".parse().unwrap();
        assert_eq!(
            RuleType::of(&Match::tag_and_prefix(
                Direction::Downlink,
                PolicyTag(1),
                pref,
                &e
            )),
            RuleType::TagAndPrefix
        );
        assert_eq!(
            RuleType::of(&Match::tag(Direction::Uplink, PolicyTag(1), &e)),
            RuleType::TagOnly
        );
        assert_eq!(
            RuleType::of(&Match::prefix(Direction::Downlink, pref)),
            RuleType::PrefixOnly
        );
        assert_eq!(RuleType::of(&Match::ANY), RuleType::Other);
    }

    #[test]
    fn priority_bands_respect_type_order() {
        let e = ports();
        let pref: Ipv4Prefix = "10.0.0.0/23".parse().unwrap();
        let t1 = conventional_priority(&Match::tag_and_prefix(
            Direction::Downlink,
            PolicyTag(1),
            pref,
            &e,
        ));
        let t2 = conventional_priority(&Match::tag(Direction::Downlink, PolicyTag(1), &e));
        let t3 = conventional_priority(&Match::prefix(Direction::Downlink, pref));
        assert!(t1 > t2 && t2 > t3, "Type1 > Type2 > Type3 (§7)");
        // LPM inside Type 3: longer prefix wins
        let t3_short = conventional_priority(&Match::prefix(
            Direction::Downlink,
            "10.0.0.0/16".parse().unwrap(),
        ));
        assert!(t3 > t3_short);
    }

    #[test]
    fn qualified_rules_beat_all_unqualified_policy_rules() {
        let e = ports();
        let pref: Ipv4Prefix = "10.0.0.0/23".parse().unwrap();
        // weakest qualified rule: Type 3, /0-ish short prefix, in-port
        let weakest_qualified = conventional_priority(
            &Match::prefix(Direction::Downlink, "10.0.0.0/8".parse().unwrap()).from_port(PortNo(4)),
        );
        // strongest unqualified rule: Type 1 with a /32
        let strongest_unqualified = conventional_priority(&Match::tag_and_prefix(
            Direction::Downlink,
            PolicyTag(1),
            "10.0.0.1/32".parse().unwrap(),
            &e,
        ));
        assert!(
            weakest_qualified > strongest_unqualified,
            "middlebox return legs must shadow to-middlebox rules"
        );
        let _ = pref;
    }

    #[test]
    fn direction_inference() {
        let e = ports();
        let pref: Ipv4Prefix = "10.0.0.0/23".parse().unwrap();
        assert_eq!(
            Match::prefix(Direction::Uplink, pref).direction(),
            Some(Direction::Uplink)
        );
        assert_eq!(
            Match::tag(Direction::Downlink, PolicyTag(0), &e).direction(),
            Some(Direction::Downlink)
        );
        assert_eq!(Match::ANY.direction(), None);
    }

    #[test]
    fn display_is_readable() {
        let e = ports();
        let m = Match::tag_and_prefix(
            Direction::Downlink,
            PolicyTag(1),
            "10.0.0.0/23".parse().unwrap(),
            &e,
        )
        .from_port(PortNo(2));
        let s = m.to_string();
        assert!(s.contains("dst=10.0.0.0/23"));
        assert!(s.contains("in_port=p2"));
        assert_eq!(Match::ANY.to_string(), "any");
    }
}
