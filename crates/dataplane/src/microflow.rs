//! The access-switch microflow table.
//!
//! Access switches are software switches (Open vSwitch class) that hold
//! one exact-match entry per microflow — "a base station has at most 1000
//! UEs with (say) 10 flows each, resulting in 10,000 microflows — easily
//! supported in a software switch" (paper §4.1). An uplink entry performs
//! the LocIP/tag rewrite; a downlink entry restores the UE's permanent
//! address. Entries carry an idle deadline so the local agent can expire
//! completed flows.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

use softcell_types::{Error, PortNo, Result, SimTime};

use softcell_packet::FiveTuple;

/// What a microflow entry does to its packets.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MicroflowAction {
    /// Uplink: rewrite source to (LocIP, embedded port), optionally mark
    /// the DSCP field (the clause's QoS action), and forward.
    RewriteSrc {
        /// The LocIP.
        addr: Ipv4Addr,
        /// The embedded source port (tag | flow slot).
        port: u16,
        /// Fabric-facing output port.
        out: PortNo,
        /// QoS marking to apply (paper §2.2 service actions).
        dscp: Option<u8>,
    },
    /// Downlink: rewrite destination to the UE's permanent endpoint and
    /// deliver towards the radio.
    RewriteDst {
        /// The permanent UE address.
        addr: Ipv4Addr,
        /// The UE's original source port.
        port: u16,
        /// Radio-facing output port.
        out: PortNo,
    },
    /// Forward unchanged (e.g. tunnel legs between base stations).
    Forward(PortNo),
    /// Drop (access control decided at classification time).
    Drop,
}

/// One microflow entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicroflowEntry {
    /// The action.
    pub action: MicroflowAction,
    /// Packets matched so far.
    pub packets: u64,
    /// Entry expires if idle past this instant.
    pub idle_deadline: SimTime,
}

/// An exact-match five-tuple table.
///
/// When capacity-bounded and full, installing a new tuple evicts the
/// entry whose idle deadline is soonest (the flow closest to expiring
/// anyway) rather than failing — a handoff burst at a crowded station
/// must not drop the moving UE's flows. Evictions are counted.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MicroflowTable {
    entries: HashMap<FiveTuple, MicroflowEntry>,
    capacity: Option<usize>,
    evictions: u64,
}

impl MicroflowTable {
    /// An unbounded table.
    pub fn new() -> Self {
        MicroflowTable::default()
    }

    /// A capacity-bounded table (software switches hold ~100K microflows,
    /// paper §2.1).
    pub fn with_capacity(capacity: usize) -> Self {
        MicroflowTable {
            capacity: Some(capacity),
            ..Default::default()
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Installs (or replaces) the entry for a five-tuple. A full bounded
    /// table evicts its idle-soonest entry to make room (see the type
    /// docs); only a zero-capacity table can still fail.
    pub fn install(
        &mut self,
        tuple: FiveTuple,
        action: MicroflowAction,
        idle_deadline: SimTime,
    ) -> Result<()> {
        if let Some(cap) = self.capacity {
            if self.entries.len() >= cap && !self.entries.contains_key(&tuple) {
                let victim = self
                    .entries
                    .iter()
                    .min_by_key(|(t, e)| {
                        // deterministic tie-break on the tuple itself so
                        // replayed simulations evict identically
                        (
                            e.idle_deadline,
                            t.src,
                            t.dst,
                            t.src_port,
                            t.dst_port,
                            t.proto.number(),
                        )
                    })
                    .map(|(t, _)| *t);
                let Some(victim) = victim else {
                    return Err(Error::Exhausted(format!(
                        "microflow table full ({cap} entries)"
                    )));
                };
                self.entries.remove(&victim);
                self.evictions += 1;
                crate::metrics::metrics().microflow_evictions.inc();
            }
        }
        self.entries.insert(
            tuple,
            MicroflowEntry {
                action,
                packets: 0,
                idle_deadline,
            },
        );
        let m = crate::metrics::metrics();
        m.microflow_installs.inc();
        m.microflow_occupancy_hwm
            .record_max(self.entries.len() as u64);
        Ok(())
    }

    /// Entries evicted to make room since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up a packet's five-tuple, bumping counters and refreshing the
    /// idle deadline by `idle_extend` from `now`.
    pub fn lookup(
        &mut self,
        tuple: &FiveTuple,
        now: SimTime,
        idle_extend: softcell_types::SimDuration,
    ) -> Option<MicroflowAction> {
        let e = self.entries.get_mut(tuple)?;
        e.packets += 1;
        e.idle_deadline = now + idle_extend;
        Some(e.action)
    }

    /// Read-only lookup.
    pub fn peek(&self, tuple: &FiveTuple) -> Option<&MicroflowEntry> {
        self.entries.get(tuple)
    }

    /// Removes one entry.
    pub fn remove(&mut self, tuple: &FiveTuple) -> Option<MicroflowEntry> {
        self.entries.remove(tuple)
    }

    /// Expires idle entries; returns the expired five-tuples (the local
    /// agent tells the controller so shortcut paths can be torn down,
    /// paper §5.1).
    pub fn expire_idle(&mut self, now: SimTime) -> Vec<FiveTuple> {
        let dead: Vec<FiveTuple> = self
            .entries
            .iter()
            .filter(|(_, e)| e.idle_deadline <= now)
            .map(|(t, _)| *t)
            .collect();
        for t in &dead {
            self.entries.remove(t);
        }
        crate::metrics::metrics()
            .microflow_expirations
            .add(dead.len() as u64);
        dead
    }

    /// Iterates all entries — used when copying rules to a new access
    /// switch during handoff (paper §5.1).
    pub fn iter(&self) -> impl Iterator<Item = (&FiveTuple, &MicroflowEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softcell_packet::Protocol;
    use softcell_types::SimDuration;

    fn tuple(port: u16) -> FiveTuple {
        FiveTuple {
            src: Ipv4Addr::new(100, 64, 0, 1),
            dst: Ipv4Addr::new(8, 8, 8, 8),
            src_port: port,
            dst_port: 443,
            proto: Protocol::Tcp,
        }
    }

    fn act() -> MicroflowAction {
        MicroflowAction::RewriteSrc {
            addr: Ipv4Addr::new(10, 0, 0, 10),
            port: 0x0805,
            out: PortNo(1),
            dscp: None,
        }
    }

    #[test]
    fn install_lookup_counts_and_refreshes() {
        let mut t = MicroflowTable::new();
        t.install(tuple(1000), act(), SimTime::from_secs(5))
            .unwrap();
        let got = t
            .lookup(
                &tuple(1000),
                SimTime::from_secs(3),
                SimDuration::from_secs(10),
            )
            .unwrap();
        assert_eq!(got, act());
        let e = t.peek(&tuple(1000)).unwrap();
        assert_eq!(e.packets, 1);
        assert_eq!(e.idle_deadline, SimTime::from_secs(13));
        assert!(t
            .lookup(&tuple(2000), SimTime::ZERO, SimDuration::ZERO)
            .is_none());
    }

    #[test]
    fn expire_removes_only_idle_entries() {
        let mut t = MicroflowTable::new();
        t.install(tuple(1), act(), SimTime::from_secs(5)).unwrap();
        t.install(tuple(2), act(), SimTime::from_secs(50)).unwrap();
        let dead = t.expire_idle(SimTime::from_secs(10));
        assert_eq!(dead, vec![tuple(1)]);
        assert_eq!(t.len(), 1);
        assert!(t.peek(&tuple(2)).is_some());
    }

    #[test]
    fn capacity_enforced_but_replace_allowed() {
        let mut t = MicroflowTable::with_capacity(1);
        t.install(tuple(1), act(), SimTime::ZERO).unwrap();
        // replacing the existing tuple is not a growth and evicts nothing
        t.install(tuple(1), MicroflowAction::Drop, SimTime::ZERO)
            .unwrap();
        assert_eq!(t.peek(&tuple(1)).unwrap().action, MicroflowAction::Drop);
        assert_eq!(t.len(), 1);
        assert_eq!(t.evictions(), 0);
    }

    #[test]
    fn full_table_evicts_idle_soonest_entry() {
        let mut t = MicroflowTable::with_capacity(2);
        t.install(tuple(1), act(), SimTime::from_secs(30)).unwrap();
        t.install(tuple(2), act(), SimTime::from_secs(10)).unwrap();
        assert_eq!(t.evictions(), 0);
        // full: the new entry displaces tuple(2), whose deadline is soonest
        t.install(tuple(3), act(), SimTime::from_secs(60)).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.evictions(), 1);
        assert!(t.peek(&tuple(2)).is_none(), "idle-soonest entry evicted");
        assert!(t.peek(&tuple(1)).is_some());
        assert!(t.peek(&tuple(3)).is_some());
        // a zero-capacity table still refuses outright
        let mut z = MicroflowTable::with_capacity(0);
        assert!(z.install(tuple(9), act(), SimTime::ZERO).is_err());
    }

    #[test]
    fn remove_returns_entry() {
        let mut t = MicroflowTable::new();
        t.install(tuple(7), act(), SimTime::ZERO).unwrap();
        assert!(t.remove(&tuple(7)).is_some());
        assert!(t.remove(&tuple(7)).is_none());
        assert!(t.is_empty());
    }
}
