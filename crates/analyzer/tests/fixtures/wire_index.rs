// Fixture: slice indexing in scope. Attribute brackets, `vec!`, and
// array-type/array-literal brackets must not be flagged.
#[derive(Debug)]
struct Wrapper(Vec<u8>);

fn decode(buf: &[u8]) -> u8 {
    let v = vec![0u8; 4];
    let arr: [u8; 2] = [0, 1];
    let first = buf[0];
    first + v[1] + arr[0]
}
