// Manually paired span bookkeeping: both calls must be flagged — the
// tracer's spans are RAII guards, and a hand-rolled start/end pair can
// leak an open span on any early return.
fn leaky(t: &Tracer) {
    let id = t.span_start("queue_wait");
    do_work();
    t.span_end(id);
}

// Declaring helpers with these names is not a call site.
fn span_start(kind: &str) -> u64 {
    0
}

#[test]
fn tests_may_do_anything() {
    let id = span_start("x");
    span_end(id);
}
