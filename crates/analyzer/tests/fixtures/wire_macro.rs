// Fixture: panic-family macros in scope; debug_assert! compiles out
// of release builds and is sanctioned for encoder-side invariants.
fn decode(buf: &[u8]) -> u8 {
    debug_assert!(!buf.is_empty());
    if buf.is_empty() {
        panic!("empty frame");
    }
    assert_eq!(buf.len(), 12);
    0
}
