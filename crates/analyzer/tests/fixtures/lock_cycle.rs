// Fixture: two functions acquire a_lock/b_lock in opposite orders.
// Expected: an order violation at the inner acquisition in g() and a
// cycle report, both on line 16.
struct S;

impl S {
    fn f(&self) {
        let a = self.a_lock.lock();
        let b = self.b_lock.lock();
        drop(b);
        drop(a);
    }

    fn g(&self) {
        let b = self.b_lock.lock();
        let a = self.a_lock.lock();
        drop(a);
        drop(b);
    }
}
