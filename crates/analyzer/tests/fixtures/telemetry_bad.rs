// Fixture: metric naming and suffix violations — camelCase name,
// counter without `_total`, gauge carrying `_total`.
fn register(r: &Registry) {
    let a = r.counter("softcell_BadName_total");
    let b = r.counter("softcell_foo_ns");
    let c = r.gauge("softcell_things_total");
    use_all(a, b, c);
}
