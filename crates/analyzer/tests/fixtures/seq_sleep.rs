// Fixture: sleeping and taking another lock while the sequencer guard
// is live. The engine→a_lock nesting is declared, so lock-order stays
// quiet — but seq-block fires on both lines 9 and 10.
struct S;

impl S {
    fn f(&self) {
        let mut engine = self.coord.engine.lock();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let a = self.a_lock.lock();
        drop(a);
        drop(engine);
    }
}
