// Fixture: a suppression without `-- reason` does not suppress, and
// is itself reported.
fn decode(buf: &[u8]) -> u8 {
    buf.first().copied().unwrap() // softcell-lint: allow(wire-panic)
}
