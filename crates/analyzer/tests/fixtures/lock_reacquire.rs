// Fixture: re-acquiring a guard already held (self-deadlock with a
// non-reentrant mutex). Expected: one finding on line 8 (the inner acquisition).
struct S;

impl S {
    fn f(&self) {
        let a = self.a_lock.lock();
        let b = self.a_lock.lock();
        drop(b);
        drop(a);
    }
}
