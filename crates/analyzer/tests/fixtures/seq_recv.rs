// Fixture: blocking channel recv while the engine (sequencer) guard
// is live. Expected: one seq-block finding on line 8.
struct S;

impl S {
    fn f(&self, rx: &Receiver<u32>) {
        let mut engine = self.coord.engine.lock();
        let x = rx.recv();
        engine.apply(x);
    }
}
