// Fixture: Ordering::Relaxed in a handshake module is flagged;
// SeqCst passes; test code is exempt.
use std::sync::atomic::{AtomicU64, Ordering};

fn handshake(seq: &AtomicU64) -> u64 {
    seq.store(1, Ordering::SeqCst);
    seq.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(seq: &AtomicU64) -> u64 {
        seq.load(Ordering::Relaxed)
    }
}
