// Fixture: unwrap/expect inside a configured wire scope; the helper
// below is outside the scope and exempt.
fn decode(buf: &[u8]) -> u32 {
    let n = buf.len().checked_sub(4).unwrap();
    let x = parse(buf).expect("valid");
    x + n as u32
}

fn helper(buf: &[u8]) -> u32 {
    buf.first().copied().unwrap() as u32
}
