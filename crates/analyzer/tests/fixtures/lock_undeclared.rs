// Fixture: nesting two locks absent from the declared order.
// Expected: one undeclared-nesting finding on line 8.
struct S;

impl S {
    fn f(&self) {
        let c = self.c_lock.lock();
        let d = self.d_lock.lock();
        drop(d);
        drop(c);
    }
}
