// Fixture: reasoned suppressions silence findings, in both the
// standalone-line and trailing-comment forms.
use std::sync::atomic::{AtomicU64, Ordering};

fn decode(buf: &[u8]) -> u8 {
    // softcell-lint: allow(wire-panic) -- length validated by caller
    let b = buf[0];
    let c = buf.first().copied().unwrap(); // softcell-lint: allow(wire-panic) -- trailing form demo
    b + c
}

fn handshake(seq: &AtomicU64) -> u64 {
    // softcell-lint: allow(atomics-order) -- pure counter, fixture
    seq.load(Ordering::Relaxed)
}
