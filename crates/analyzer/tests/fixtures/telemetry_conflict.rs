// Fixture: one name registered as two kinds. The histogram site gets
// both a kind-conflict finding and a suffix finding.
fn register(r: &Registry) {
    let c = r.counter("softcell_x_total");
    let h = r.histogram("softcell_x_total");
    use_both(c, h);
}
