// Fixture: regression corpus — nothing here may produce a finding.
// try_recv under the sequencer guard (the rendezvous idiom), blocking
// after drop(engine), back-to-back temporary guards, unwrap_or[_else],
// vec!/attribute brackets, and SeqCst atomics.
use std::sync::atomic::{AtomicU64, Ordering};

struct S;

impl S {
    fn pump(&self) {
        let mut engine = self.coord.engine.lock();
        while let Ok(m) = self.rx.try_recv() {
            engine.apply(m);
        }
        drop(engine);
        let d = self.rx.recv();
        consume(d);
    }

    fn twice(&self) {
        self.stats.lock().push(1);
        self.stats.lock().push(2);
    }
}

fn decode(buf: &[u8]) -> u8 {
    let v: Vec<u8> = vec![0u8; 4];
    let n = buf.first().copied().unwrap_or(0);
    let m = buf.get(1).copied().unwrap_or_else(|| 0);
    n + m + v.len() as u8
}

fn handshake(seq: &AtomicU64) -> u64 {
    seq.load(Ordering::SeqCst)
}

// RAII tracing idioms: guard-scoped spans and the single-call
// cross-thread record are the sanctioned forms, not paired calls.
fn traced(tracer: &Tracer, ctx: TraceContext) {
    let mut sp = tracer.span("ticket_wait");
    sp.set_shard(0);
    let _child = tracer.span_in(ctx, "serve_frame");
    tracer.record_span(ctx, "queue_wait", 0, 1, -1, 0);
    let span_start = 7;
    consume(span_start);
}
