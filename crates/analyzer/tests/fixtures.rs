//! The violation-fixture corpus: every check must produce exactly the
//! expected findings, with correct file:line spans, on known-bad
//! snippets — and nothing on the false-positive regression file.

use std::path::PathBuf;

use softcell_analyzer::config::{Config, MetricsManifest, WireScope};
use softcell_analyzer::parse::FileModel;
use softcell_analyzer::{analyze_models, analyze_paths};

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Config mirroring the real manifests' shape, scoped to the corpus:
/// declared order engine → a_lock → b_lock, `engine` is the sequencer,
/// every fixture's `decode` is a wire path, and the atomics audit
/// covers the files that exercise it.
fn fixture_config() -> Config {
    let wire_files = [
        "wire_unwrap.rs",
        "wire_index.rs",
        "wire_macro.rs",
        "suppressed_ok.rs",
        "suppress_no_reason.rs",
        "false_positive.rs",
    ];
    Config {
        lock_order: vec!["engine".into(), "a_lock".into(), "b_lock".into()],
        sequencer_locks: vec!["engine".into()],
        wire_scopes: wire_files
            .iter()
            .map(|f| WireScope {
                file: (*f).to_string(),
                functions: vec!["decode".into()],
            })
            .collect(),
        atomics_files: vec![
            "atomics_relaxed.rs".into(),
            "suppressed_ok.rs".into(),
            "false_positive.rs".into(),
        ],
        metrics_manifest: None,
    }
}

/// Runs one fixture; returns its (check, line, suppressed) findings,
/// dropping global (manifest-level) findings not tied to the file.
fn run(file: &str) -> Vec<(String, u32, bool)> {
    let analysis = analyze_paths(&fixtures_root(), &[file.to_string()], &fixture_config());
    assert_eq!(analysis.files_scanned, 1, "fixture {file} must exist");
    analysis
        .findings
        .iter()
        .filter(|f| f.file == file)
        .map(|f| (f.check.to_string(), f.line, f.suppressed))
        .collect()
}

fn expect(file: &str, want: &[(&str, u32)]) {
    let got = run(file);
    let unsuppressed: Vec<(String, u32)> = got
        .iter()
        .filter(|(_, _, s)| !s)
        .map(|(c, l, _)| (c.clone(), *l))
        .collect();
    let want: Vec<(String, u32)> = want.iter().map(|(c, l)| (c.to_string(), *l)).collect();
    assert_eq!(unsuppressed, want, "fixture {file}: findings mismatch");
}

#[test]
fn lock_cycle_reports_violation_and_cycle() {
    expect("lock_cycle.rs", &[("lock-order", 16), ("lock-order", 16)]);
}

#[test]
fn lock_undeclared_nesting() {
    expect("lock_undeclared.rs", &[("lock-order", 8)]);
}

#[test]
fn lock_reacquisition() {
    expect("lock_reacquire.rs", &[("lock-order", 8)]);
}

#[test]
fn seq_block_on_recv() {
    expect("seq_recv.rs", &[("seq-block", 8)]);
}

#[test]
fn seq_block_on_sleep_and_nested_lock() {
    expect("seq_sleep.rs", &[("seq-block", 9), ("seq-block", 10)]);
}

#[test]
fn wire_unwrap_and_expect_in_scope_only() {
    expect("wire_unwrap.rs", &[("wire-panic", 4), ("wire-panic", 5)]);
}

#[test]
fn wire_indexing_without_bracket_false_positives() {
    expect(
        "wire_index.rs",
        &[("wire-panic", 9), ("wire-panic", 10), ("wire-panic", 10)],
    );
}

#[test]
fn wire_panic_macros_except_debug_assert() {
    expect("wire_macro.rs", &[("wire-panic", 6), ("wire-panic", 8)]);
}

#[test]
fn atomics_relaxed_outside_tests() {
    expect("atomics_relaxed.rs", &[("atomics-order", 7)]);
}

#[test]
fn telemetry_naming_and_suffix() {
    expect(
        "telemetry_bad.rs",
        &[("telemetry", 4), ("telemetry", 5), ("telemetry", 6)],
    );
}

#[test]
fn telemetry_kind_conflict() {
    expect(
        "telemetry_conflict.rs",
        &[("telemetry", 5), ("telemetry", 5)],
    );
}

#[test]
fn reasoned_suppressions_silence_findings() {
    let got = run("suppressed_ok.rs");
    let unsuppressed: Vec<_> = got.iter().filter(|(_, _, s)| !s).collect();
    let suppressed: Vec<_> = got.iter().filter(|(_, _, s)| *s).collect();
    assert!(unsuppressed.is_empty(), "unexpected: {unsuppressed:?}");
    assert_eq!(suppressed.len(), 3, "got: {suppressed:?}");
}

#[test]
fn suppression_without_reason_does_not_suppress() {
    expect(
        "suppress_no_reason.rs",
        &[("suppression", 4), ("wire-panic", 4)],
    );
}

#[test]
fn false_positive_regressions_stay_clean() {
    expect("false_positive.rs", &[]);
}

#[test]
fn span_guard_flags_manual_pairs_only() {
    expect("span_pairs.rs", &[("span-guard", 5), ("span-guard", 7)]);
}

#[test]
fn metrics_manifest_drift_both_directions() {
    let model = FileModel::parse(
        "m.rs",
        "fn f(r: &Registry) { let c = r.counter(\"softcell_fixture_a_total\"); c.inc(); }",
    );
    let cfg = Config {
        metrics_manifest: Some(MetricsManifest {
            counters: vec!["softcell_fixture_gone_total".into()],
            gauges: vec![],
            histograms: vec![],
        }),
        ..Config::default()
    };
    let analysis = analyze_models(&[model], &cfg);
    let msgs: Vec<&str> = analysis
        .unsuppressed()
        .map(|f| {
            assert_eq!(f.check, "telemetry");
            assert_eq!(f.file, "analysis/metrics_manifest.toml");
            f.msg.as_str()
        })
        .collect();
    assert_eq!(msgs.len(), 2, "{msgs:?}");
    assert!(
        msgs.iter()
            .any(|m| m.contains("softcell_fixture_a_total")
                && m.contains("missing from the manifest"))
    );
    assert!(msgs
        .iter()
        .any(|m| m.contains("softcell_fixture_gone_total") && m.contains("no longer registered")));
}
