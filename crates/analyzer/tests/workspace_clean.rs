//! Self-run: the real workspace must analyze clean under the real
//! manifests, and the generated metrics manifest must be fresh. This
//! is the same gate `scripts/ci.sh` runs via the binary; keeping it in
//! `cargo test` means a violation fails the tier-1 suite too.

use std::path::PathBuf;

use softcell_analyzer::{analyze_root, config::Config};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

#[test]
fn real_workspace_has_no_unsuppressed_findings() {
    let root = repo_root();
    let cfg = Config::load(&root).expect("analysis manifests parse");
    assert!(
        !cfg.lock_order.is_empty(),
        "lock_order.toml missing or empty"
    );
    assert!(
        !cfg.wire_scopes.is_empty(),
        "wire_paths.toml missing or empty"
    );
    assert!(
        !cfg.atomics_files.is_empty(),
        "atomics.toml missing or empty"
    );
    assert!(
        cfg.metrics_manifest.is_some(),
        "metrics_manifest.toml missing: run `softcell-analyzer --write-metrics-manifest`"
    );

    let analysis = analyze_root(&root, &cfg);
    assert!(
        analysis.files_scanned > 50,
        "walker found only {} files — broken discovery",
        analysis.files_scanned
    );
    let bad: Vec<String> = analysis.unsuppressed().map(|f| f.render()).collect();
    assert!(
        bad.is_empty(),
        "workspace must analyze clean (manifest drift included):\n{}",
        bad.join("\n")
    );
}
