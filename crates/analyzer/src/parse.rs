//! Function segmentation and suppression-comment parsing.
//!
//! The analyzer works per function: each check walks the token range of
//! one function body, knowing its qualified name (`Type::method` inside
//! an `impl`, bare `name` at module scope) and whether it is test code
//! (`#[test]`, `#[cfg(test)]` on the fn or any enclosing module, or a
//! file under `tests/` / `benches/`).

use crate::lexer::{lex, TokKind, Token};

/// One analyzed source file.
pub struct FileModel {
    /// Path relative to the analysis root, with `/` separators.
    pub path: String,
    pub tokens: Vec<Token>,
    pub funcs: Vec<Func>,
    pub suppressions: Vec<Suppression>,
    /// True for files under `tests/` or `benches/` directories.
    pub file_is_test: bool,
}

/// One `fn` item: `body` is the token index range of its brace-enclosed
/// body, exclusive of the braces themselves.
pub struct Func {
    /// `Type::name` inside an impl block, else just `name`.
    pub qual: String,
    pub body: std::ops::Range<usize>,
    pub is_test: bool,
}

/// An in-source `// softcell-lint: allow(check-a, check-b) -- reason`.
pub struct Suppression {
    /// Line the suppression applies to: the comment's own line for a
    /// trailing comment, the next code line for a standalone comment.
    pub target_line: u32,
    /// Line the comment itself is on (for "missing reason" reports).
    pub comment_line: u32,
    pub checks: Vec<String>,
    pub reason: Option<String>,
}

impl FileModel {
    pub fn parse(path: &str, src: &str) -> FileModel {
        let tokens = lex(src);
        let file_is_test = path.split('/').any(|c| c == "tests" || c == "benches");
        let funcs = segment_functions(&tokens, file_is_test);
        let suppressions = parse_suppressions(src);
        FileModel {
            path: path.to_string(),
            tokens,
            funcs,
            suppressions,
            file_is_test,
        }
    }

    /// Is a finding of `check` at `line` covered by a suppression with
    /// a written reason?
    pub fn is_suppressed(&self, check: &str, line: u32) -> bool {
        self.suppressions.iter().any(|s| {
            s.target_line == line && s.reason.is_some() && s.checks.iter().any(|c| c == check)
        })
    }
}

const LINT_MARK: &str = "softcell-lint:";

fn parse_suppressions(src: &str) -> Vec<Suppression> {
    let lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        let Some(comment_pos) = raw.find("//") else {
            continue;
        };
        let comment = &raw[comment_pos..];
        // Doc comments talk *about* suppressions; only plain `//`
        // comments are suppressions.
        if comment.starts_with("///") || comment.starts_with("//!") {
            continue;
        }
        let Some(mark) = comment.find(LINT_MARK) else {
            continue;
        };
        let rest = comment[mark + LINT_MARK.len()..].trim_start();
        let Some(body) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = body.find(')') else {
            continue;
        };
        let checks: Vec<String> = body[..close]
            .split(',')
            .map(|c| c.trim().to_string())
            .filter(|c| !c.is_empty())
            .collect();
        let after = body[close + 1..].trim_start();
        let reason = after
            .strip_prefix("--")
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty());
        let comment_line = (idx + 1) as u32;
        // Trailing comment covers its own line; a standalone comment
        // line covers the next line that holds code.
        let has_code_before = !raw[..comment_pos].trim().is_empty();
        let target_line = if has_code_before {
            comment_line
        } else {
            let mut t = idx + 1;
            while t < lines.len() {
                let l = lines[t].trim();
                if !l.is_empty() && !l.starts_with("//") {
                    break;
                }
                t += 1;
            }
            (t + 1) as u32
        };
        out.push(Suppression {
            target_line,
            comment_line,
            checks,
            reason,
        });
    }
    out
}

/// Walks the token stream tracking module nesting, `#[cfg(test)]` /
/// `#[test]` attributes, and `impl` blocks, and returns every `fn`
/// with its body range and qualified name.
fn segment_functions(toks: &[Token], file_is_test: bool) -> Vec<Func> {
    struct Scope {
        /// Brace depth at which this scope's `{` opened.
        close_depth: u32,
        impl_type: Option<String>,
        is_test: bool,
    }
    let mut funcs = Vec::new();
    let mut depth = 0u32;
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending_test_attr = false;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('#') => {
                // Attribute: scan balanced brackets, look for test markers.
                if i + 1 < toks.len() && toks[i + 1].is_punct('[') {
                    let (end, is_test_attr) = scan_attr(toks, i + 1);
                    if is_test_attr {
                        pending_test_attr = true;
                    }
                    i = end;
                    continue;
                }
                i += 1;
            }
            TokKind::Punct('{') => {
                depth += 1;
                i += 1;
            }
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                while let Some(top) = scopes.last() {
                    if top.close_depth > depth {
                        scopes.pop();
                    } else {
                        break;
                    }
                }
                i += 1;
            }
            TokKind::Ident(id) if id == "mod" => {
                // `mod name {` opens a scope; `mod name;` does not.
                let mut j = i + 1;
                while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct('{') {
                    let parent_test = scopes.last().map(|s| s.is_test).unwrap_or(false);
                    depth += 1;
                    scopes.push(Scope {
                        close_depth: depth,
                        impl_type: None,
                        is_test: parent_test || pending_test_attr,
                    });
                }
                pending_test_attr = false;
                i = j + 1;
            }
            TokKind::Ident(id) if id == "impl" => {
                let (type_name, body_start) = scan_impl_header(toks, i + 1);
                if let Some(bs) = body_start {
                    let parent_test = scopes.last().map(|s| s.is_test).unwrap_or(false);
                    depth += 1;
                    scopes.push(Scope {
                        close_depth: depth,
                        impl_type: type_name,
                        is_test: parent_test || pending_test_attr,
                    });
                    i = bs + 1;
                } else {
                    i += 1;
                }
                pending_test_attr = false;
            }
            TokKind::Ident(id) if id == "fn" => {
                let name = toks
                    .get(i + 1)
                    .and_then(|t| t.ident())
                    .unwrap_or("<anon>")
                    .to_string();
                // Find the body `{` (or `;` for a bodiless trait decl),
                // skipping parens/brackets in the signature.
                let mut j = i + 2;
                let mut paren = 0i32;
                let mut body_open = None;
                while j < toks.len() {
                    match toks[j].kind {
                        TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
                        TokKind::Punct(')') | TokKind::Punct(']') => paren -= 1,
                        TokKind::Punct('{') if paren == 0 => {
                            body_open = Some(j);
                            break;
                        }
                        TokKind::Punct(';') if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let Some(open) = body_open else {
                    pending_test_attr = false;
                    i = j + 1;
                    continue;
                };
                // Match the body braces without disturbing scope state.
                let mut d = 1i32;
                let mut k = open + 1;
                while k < toks.len() && d > 0 {
                    match toks[k].kind {
                        TokKind::Punct('{') => d += 1,
                        TokKind::Punct('}') => d -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                let enclosing_test = scopes.last().map(|s| s.is_test).unwrap_or(false);
                let qual = match scopes.iter().rev().find_map(|s| s.impl_type.as_ref()) {
                    Some(t) => format!("{t}::{name}"),
                    None => name,
                };
                funcs.push(Func {
                    qual,
                    body: (open + 1)..(k.saturating_sub(1)),
                    is_test: file_is_test || enclosing_test || pending_test_attr,
                });
                pending_test_attr = false;
                i = k;
            }
            TokKind::Ident(id)
                if matches!(id.as_str(), "struct" | "enum" | "static" | "const" | "use") =>
            {
                // Items that clear a pending attribute without opening
                // a tracked scope.
                pending_test_attr = false;
                i += 1;
            }
            _ => i += 1,
        }
    }
    funcs
}

/// Scans `#[...]` starting at the `[`; returns (index after `]`,
/// whether the attribute marks test code).
fn scan_attr(toks: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut j = open;
    let mut is_test = false;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, is_test);
                }
            }
            TokKind::Ident(id) if id == "test" => {
                // Covers `#[test]`, `#[cfg(test)]`, `#[cfg(any(test,…))]`.
                is_test = true;
            }
            _ => {}
        }
        j += 1;
    }
    (j, is_test)
}

/// Parses an impl header after the `impl` keyword: returns the Self
/// type name and the index of the opening `{` (None for `impl Trait
/// for Type;` — which doesn't exist — or EOF weirdness).
fn scan_impl_header(toks: &[Token], start: usize) -> (Option<String>, Option<usize>) {
    let mut j = start;
    let mut names: Vec<(usize, String)> = Vec::new();
    let mut for_at: Option<usize> = None;
    let mut angle = 0i32;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('{') => {
                let name = pick_impl_type(&names, for_at);
                return (name, Some(j));
            }
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Ident(id) if id == "for" && angle <= 0 => for_at = Some(j),
            TokKind::Ident(id)
                if angle <= 0 && !matches!(id.as_str(), "where" | "dyn" | "mut" | "const") =>
            {
                names.push((j, id.clone()));
            }
            TokKind::Punct(';') => return (None, None),
            _ => {}
        }
        j += 1;
    }
    (None, None)
}

fn pick_impl_type(names: &[(usize, String)], for_at: Option<usize>) -> Option<String> {
    match for_at {
        // `impl Trait for Type` — first name after `for`.
        Some(f) => names.iter().find(|(i, _)| *i > f).map(|(_, n)| n.clone()),
        // `impl Type` — first name at angle depth 0.
        None => names.first().map(|(_, n)| n.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualifies_impl_methods_and_marks_tests() {
        let src = r#"
impl Frame {
    fn check(&self) {}
}
fn free() {}
#[cfg(test)]
mod tests {
    fn helper() {}
    #[test]
    fn a_test() {}
}
"#;
        let m = FileModel::parse("crates/x/src/lib.rs", src);
        let by_name: Vec<(&str, bool)> = m
            .funcs
            .iter()
            .map(|f| (f.qual.as_str(), f.is_test))
            .collect();
        assert_eq!(
            by_name,
            vec![
                ("Frame::check", false),
                ("free", false),
                ("helper", true),
                ("a_test", true),
            ]
        );
    }

    #[test]
    fn impl_trait_for_type_uses_the_type() {
        let src =
            "impl<T: AsRef<[u8]>> From<Foo<T>> for Bar<T> { fn from(f: Foo<T>) -> Bar<T> { x } }";
        let m = FileModel::parse("crates/x/src/lib.rs", src);
        assert_eq!(m.funcs[0].qual, "Bar::from");
    }

    #[test]
    fn test_attr_does_not_leak_to_next_fn() {
        let src = "#[test]\nfn t() {}\nfn prod() {}";
        let m = FileModel::parse("crates/x/src/lib.rs", src);
        assert!(m.funcs[0].is_test);
        assert!(!m.funcs[1].is_test);
    }

    #[test]
    fn files_under_tests_are_test_code() {
        let m = FileModel::parse("tests/integration.rs", "fn body() {}");
        assert!(m.funcs[0].is_test);
        assert!(m.file_is_test);
    }

    #[test]
    fn suppression_targets_trailing_and_standalone() {
        // The marker is split so scanning THIS file doesn't read the
        // test data as real suppressions.
        let mark = "softcell-lint:";
        let src = format!(
            "let a = x[0]; // {mark} allow(wire-panic) -- checked above\n\
             // {mark} allow(atomics-order) -- pure counter\n\
             n.fetch_add(1, Ordering::Relaxed);\n\
             y.unwrap(); // {mark} allow(wire-panic)\n"
        );
        let m = FileModel::parse("crates/x/src/lib.rs", &src);
        assert!(m.is_suppressed("wire-panic", 1));
        assert!(m.is_suppressed("atomics-order", 3));
        // Missing `-- reason` does not suppress.
        assert!(!m.is_suppressed("wire-panic", 4));
        assert_eq!(m.suppressions.len(), 3);
        assert!(m.suppressions[2].reason.is_none());
    }
}
