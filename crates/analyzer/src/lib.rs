//! softcell-analyzer: workspace static analysis for the invariants the
//! compiler cannot see (DESIGN.md §12).
//!
//! Five checks, all token-stream passes over a hand-rolled lexer (the
//! build is offline — no `syn`):
//!
//! | check          | invariant                                              |
//! |----------------|--------------------------------------------------------|
//! | `lock-order`   | nested guard acquisitions follow `analysis/lock_order.toml` |
//! | `seq-block`    | nothing blocks while the Algorithm-1 engine guard is live |
//! | `wire-panic`   | decode/serve scopes never panic on attacker input      |
//! | `atomics-order`| no `Ordering::Relaxed` in handshake modules            |
//! | `telemetry`    | metric names: snake_case, suffix-typed, manifested     |
//! | `span-guard`   | tracing spans are RAII, never `span_start`/`span_end` pairs |
//!
//! Suppression: `// softcell-lint: allow(<check>) -- <reason>` on the
//! offending line (or the comment line directly above it). A
//! suppression without a written reason does not suppress — it is
//! itself reported (`suppression`), so every exception in the tree
//! carries its justification.

pub mod checks;
pub mod config;
pub mod lexer;
pub mod parse;
pub mod walk;

use std::path::Path;

use config::{Config, MetricsManifest};
use parse::FileModel;

pub const CHECK_LOCK_ORDER: &str = "lock-order";
pub const CHECK_SEQ_BLOCK: &str = "seq-block";
pub const CHECK_WIRE_PANIC: &str = "wire-panic";
pub const CHECK_ATOMICS: &str = "atomics-order";
pub const CHECK_TELEMETRY: &str = "telemetry";
pub const CHECK_SPAN_GUARD: &str = "span-guard";
pub const CHECK_SUPPRESSION: &str = "suppression";

pub const ALL_CHECKS: &[&str] = &[
    CHECK_LOCK_ORDER,
    CHECK_SEQ_BLOCK,
    CHECK_WIRE_PANIC,
    CHECK_ATOMICS,
    CHECK_TELEMETRY,
    CHECK_SPAN_GUARD,
];

#[derive(Debug, Clone)]
pub struct Finding {
    pub check: &'static str,
    pub file: String,
    pub line: u32,
    pub msg: String,
    /// Set during post-processing when an in-source allow covers it.
    pub suppressed: bool,
}

impl Finding {
    pub fn new(check: &'static str, file: &str, line: u32, msg: String) -> Finding {
        Finding {
            check,
            file: file.to_string(),
            line,
            msg,
            suppressed: false,
        }
    }

    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.check, self.msg)
    }
}

/// Result of one full analysis run.
pub struct Analysis {
    pub findings: Vec<Finding>,
    /// Metric names observed in code, for `--write-metrics-manifest`.
    pub observed_metrics: MetricsManifest,
    pub files_scanned: usize,
}

impl Analysis {
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }
}

/// Analyzes the given relative paths under `root` with `cfg`.
pub fn analyze_paths(root: &Path, rel_paths: &[String], cfg: &Config) -> Analysis {
    let mut models = Vec::new();
    for rel in rel_paths {
        let Ok(src) = std::fs::read_to_string(root.join(rel)) else {
            continue;
        };
        models.push(FileModel::parse(rel, &src));
    }
    analyze_models(&models, cfg)
}

/// Walks `root` and analyzes everything (the CI entry point).
pub fn analyze_root(root: &Path, cfg: &Config) -> Analysis {
    analyze_paths(root, &walk::source_files(root), cfg)
}

pub fn analyze_models(models: &[FileModel], cfg: &Config) -> Analysis {
    let mut findings = Vec::new();
    let mut edges = Vec::new();
    let mut sites = Vec::new();
    for model in models {
        edges.extend(checks::locks::scan_file(model, cfg, &mut findings));
        checks::wire::scan_file(model, cfg, &mut findings);
        checks::atomics::scan_file(model, cfg, &mut findings);
        checks::span_guard::scan_file(model, &mut findings);
        checks::telemetry::collect_sites(model, &mut sites);
        suppression_hygiene(model, &mut findings);
    }
    checks::locks::validate_edges(&edges, cfg, &mut findings);
    let observed_metrics = checks::telemetry::validate(&sites, cfg, &mut findings);

    // Apply in-source suppressions (reasoned allows only).
    for f in &mut findings {
        if f.check == CHECK_SUPPRESSION {
            continue;
        }
        if let Some(model) = models.iter().find(|m| m.path == f.file) {
            if model.is_suppressed(f.check, f.line) {
                f.suppressed = true;
            }
        }
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.check, &a.msg).cmp(&(&b.file, b.line, b.check, &b.msg))
    });
    Analysis {
        findings,
        observed_metrics,
        files_scanned: models.len(),
    }
}

/// Every suppression must name known checks and carry a reason.
fn suppression_hygiene(model: &FileModel, findings: &mut Vec<Finding>) {
    for s in &model.suppressions {
        if s.reason.is_none() {
            findings.push(Finding::new(
                CHECK_SUPPRESSION,
                &model.path,
                s.comment_line,
                "suppression without a reason: write `allow(<check>) -- <why>`".to_string(),
            ));
        }
        for c in &s.checks {
            if !ALL_CHECKS.contains(&c.as_str()) {
                findings.push(Finding::new(
                    CHECK_SUPPRESSION,
                    &model.path,
                    s.comment_line,
                    format!("unknown check `{c}` in suppression"),
                ));
            }
        }
    }
}
