//! A minimal Rust lexer: just enough token structure for per-function
//! stream analysis. No keywords, no multi-char operators — the checks
//! match on identifier/punct sequences, so single-char puncts suffice.
//!
//! The only genuinely fiddly parts of lexing Rust at this fidelity are
//! (a) raw strings (`r#"…"#`), (b) nested block comments, and
//! (c) telling a lifetime `'a` from a char literal `'a'`.

/// One lexical token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokKind,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// Identifier or keyword (the checks treat keywords by name).
    Ident(String),
    /// String literal contents (escapes left as written, quotes stripped).
    Str(String),
    /// Char or byte literal (contents irrelevant to every check).
    CharLit,
    /// Numeric literal (value irrelevant to every check).
    Num,
    /// Lifetime such as `'a` (distinct from `CharLit`).
    Lifetime,
    /// Any single punctuation character.
    Punct(char),
}

impl Token {
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    pub fn str_lit(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Lexes `src` into tokens, discarding comments and whitespace.
/// Unterminated constructs are tolerated (lex to EOF) so the analyzer
/// never panics on malformed input — it is itself on a no-panic path.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start_line = line;
                let (s, ni, nl) = lex_string(b, i + 1, line);
                toks.push(Token {
                    kind: TokKind::Str(s),
                    line: start_line,
                });
                i = ni;
                line = nl;
            }
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                let start_line = line;
                let (kind, ni, nl) = lex_prefixed(b, i, line);
                toks.push(Token {
                    kind,
                    line: start_line,
                });
                i = ni;
                line = nl;
            }
            b'\'' => {
                // Lifetime if followed by ident-start NOT closed by a
                // quote right after one char: `'a` vs `'a'`.
                let is_lifetime = i + 1 < b.len()
                    && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                    && !(i + 2 < b.len() && b[i + 2] == b'\'');
                if is_lifetime {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    toks.push(Token {
                        kind: TokKind::Lifetime,
                        line,
                    });
                    i = j;
                } else {
                    let start_line = line;
                    let mut j = i + 1;
                    while j < b.len() && b[j] != b'\'' {
                        if b[j] == b'\\' {
                            j += 1; // skip escaped char
                        }
                        if j < b.len() && b[j] == b'\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                    toks.push(Token {
                        kind: TokKind::CharLit,
                        line: start_line,
                    });
                    i = (j + 1).min(b.len());
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                toks.push(Token {
                    kind: TokKind::Ident(src[i..j].to_string()),
                    line,
                });
                i = j;
            }
            _ if c.is_ascii_digit() => {
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_' || b[j] == b'.')
                {
                    // Stop before a method call on a literal (`1.max(x)`)
                    // or a range (`0..n`).
                    if b[j] == b'.' && (j + 1 >= b.len() || !b[j + 1].is_ascii_digit()) {
                        break;
                    }
                    j += 1;
                }
                toks.push(Token {
                    kind: TokKind::Num,
                    line,
                });
                i = j;
            }
            _ => {
                toks.push(Token {
                    kind: TokKind::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Is `b[i..]` the start of `r"`, `r#"`, `b"`, `b'`, `br"`, or `br#"`?
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let rest = &b[i..];
    if rest.starts_with(b"r\"") || rest.starts_with(b"r#") {
        return true;
    }
    if rest.starts_with(b"b\"") || rest.starts_with(b"b'") {
        return true;
    }
    if rest.starts_with(b"br\"") || rest.starts_with(b"br#") {
        return true;
    }
    false
}

/// Lexes a plain string body starting just after the opening quote.
/// Returns (contents, index-after-closing-quote, line).
fn lex_string(b: &[u8], mut i: usize, mut line: u32) -> (String, usize, u32) {
    let start = i;
    while i < b.len() && b[i] != b'"' {
        if b[i] == b'\\' {
            i += 1;
        }
        if i < b.len() && b[i] == b'\n' {
            line += 1;
        }
        i += 1;
    }
    let s = String::from_utf8_lossy(&b[start..i.min(b.len())]).into_owned();
    ((s), (i + 1).min(b.len()), line)
}

/// Lexes raw/byte strings and byte chars starting at the `r`/`b` prefix.
fn lex_prefixed(b: &[u8], i: usize, mut line: u32) -> (TokKind, usize, u32) {
    let mut j = i;
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') {
        j += 1;
    }
    if j < b.len() && b[j] == b'\'' {
        // byte char literal b'x'
        j += 1;
        while j < b.len() && b[j] != b'\'' {
            if b[j] == b'\\' {
                j += 1;
            }
            j += 1;
        }
        return (TokKind::CharLit, (j + 1).min(b.len()), line);
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' {
        // `r#ident` raw identifier, or stray prefix: back out, treat
        // the leading letters as an identifier.
        let mut k = i;
        while k < b.len() && (b[k].is_ascii_alphanumeric() || b[k] == b'_') {
            k += 1;
        }
        let s = String::from_utf8_lossy(&b[i..k]).into_owned();
        return (TokKind::Ident(s), k, line);
    }
    j += 1; // past opening quote
    let start = j;
    let closer: Vec<u8> = {
        let mut v = vec![b'"'];
        v.extend(std::iter::repeat_n(b'#', hashes));
        v
    };
    while j < b.len() {
        if b[j] == b'\n' {
            line += 1;
        }
        if b[j] == b'"' && b[j..].starts_with(&closer) {
            let s = String::from_utf8_lossy(&b[start..j]).into_owned();
            return (TokKind::Str(s), j + closer.len(), line);
        }
        j += 1;
    }
    let s = String::from_utf8_lossy(&b[start..]).into_owned();
    (TokKind::Str(s), b.len(), line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn lexes_idents_and_puncts_with_lines() {
        let toks = lex("fn main() {\n    x.lock();\n}");
        assert_eq!(toks[0].kind, TokKind::Ident("fn".into()));
        assert_eq!(toks[0].line, 1);
        let lock = toks.iter().find(|t| t.ident() == Some("lock")).unwrap();
        assert_eq!(lock.line, 2);
    }

    #[test]
    fn strings_hide_their_contents_from_ident_scan() {
        assert_eq!(idents(r#"let s = "lock() unwrap()";"#), vec!["let", "s"]);
    }

    #[test]
    fn raw_strings_and_nested_comments() {
        let src = "let a = r#\"has \"quotes\" inside\"#; /* outer /* inner */ still */ b";
        let toks = lex(src);
        assert!(toks
            .iter()
            .any(|t| t.str_lit() == Some("has \"quotes\" inside")));
        assert!(toks.iter().any(|t| t.ident() == Some("b")));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::CharLit).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let names = idents("let x = 1.max(2); let r = 0..10;");
        assert!(names.contains(&"max".to_string()));
    }
}
