//! Span-guard discipline: tracing spans must be RAII.
//!
//! The tracer's contract is that a span closes when its [`Span`] guard
//! drops — there is no `span_start`/`span_end` pair to forget, so a
//! panic, early `return`, or `?` can never leak an open span. This
//! check flags any *call* to a `span_start` or `span_end` function in
//! non-test code: manually paired span bookkeeping reintroduces exactly
//! the leak the guard design removed. The RAII forms — `span(..)`,
//! `span_in(..)`, `root(..)` — and the single-call cross-thread form
//! `record_span(..)` (one atomic record, nothing left open) stay clean.

use crate::lexer::TokKind;
use crate::parse::FileModel;
use crate::{Finding, CHECK_SPAN_GUARD};

pub fn scan_file(model: &FileModel, findings: &mut Vec<Finding>) {
    for func in &model.funcs {
        if func.is_test {
            continue;
        }
        for i in func.body.clone() {
            let TokKind::Ident(id) = &model.tokens[i].kind else {
                continue;
            };
            if id != "span_start" && id != "span_end" {
                continue;
            }
            // only calls: an identifier immediately followed by `(`
            // (field names or doc text in macros stay clean)
            if !model.tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            // a declaration site (`fn span_start(..)`) is not a call
            if i > func.body.start && model.tokens[i - 1].ident() == Some("fn") {
                continue;
            }
            findings.push(Finding::new(
                CHECK_SPAN_GUARD,
                &model.path,
                model.tokens[i].line,
                format!(
                    "manually paired `{id}(..)`: spans are RAII guards — open with \
                     `tracer.span(..)`/`span_in(..)`/`root(..)` and let the guard drop \
                     (cross-thread waits use the single-call `record_span`)"
                ),
            ));
        }
    }
}
