//! Lock-order and no-blocking-under-sequencer checks.
//!
//! Both run over the same per-function guard-liveness simulation:
//!
//! * an acquisition is a zero-argument `.lock()` / `.read()` /
//!   `.write()` method call; the guard's *name* is the receiver's last
//!   path segment (`self.coord.engine.lock()` → `engine`);
//! * a guard bound by `let [mut] var = <recv>.lock()[.expect(…)];`
//!   lives until its enclosing block closes or `drop(var)`;
//! * any other acquisition is a temporary that lives to the end of the
//!   statement (which, as in real Rust, extends through `if let` /
//!   `match` bodies whose scrutinee holds the guard);
//! * acquiring `B` while `A` is live records the edge `A → B`.
//!
//! Edges are validated against the declared order in
//! `analysis/lock_order.toml`: both names must appear in `order`, the
//! outer strictly before the inner, and re-acquiring a name already
//! held is always flagged. Because `order` is a total order, any cycle
//! necessarily contains a flagged edge; an explicit cycle report is
//! emitted too so the root cause reads directly from CI output.

use std::collections::BTreeMap;

use crate::config::Config;
use crate::lexer::{TokKind, Token};
use crate::parse::FileModel;
use crate::{Finding, CHECK_LOCK_ORDER, CHECK_SEQ_BLOCK};

/// Method names whose zero-arg call takes a guard.
const ACQUIRE: &[&str] = &["lock", "read", "write"];

/// Method names that block the calling thread (any arity).
const BLOCKING_METHODS: &[&str] = &[
    "recv",
    "recv_timeout",
    "recv_deadline",
    "join",
    "wait",
    "wait_timeout",
    "wait_while",
    "park",
    "park_timeout",
];

/// Free/path functions that block (`thread::sleep(d)` etc.).
const BLOCKING_CALLS: &[&str] = &["sleep", "sleep_ms", "park", "park_timeout"];

#[derive(Debug)]
struct Guard {
    name: String,
    /// Binding variable for `drop(var)` tracking (let-bound only).
    var: Option<String>,
    /// Brace depth (relative to body) at acquisition.
    depth: u32,
    /// Temporaries die at the next `;` at their own depth.
    temp: bool,
}

/// An observed nested acquisition.
#[derive(Debug)]
pub struct Edge {
    pub outer: String,
    pub inner: String,
    pub file: String,
    pub line: u32,
}

/// Runs the guard simulation over every function in `model`; returns
/// per-function findings (re-acquisition, blocking-under-sequencer)
/// plus the observed edges for the cross-file order/cycle validation.
pub fn scan_file(model: &FileModel, cfg: &Config, findings: &mut Vec<Finding>) -> Vec<Edge> {
    let mut edges = Vec::new();
    for func in &model.funcs {
        scan_func(model, func.body.clone(), cfg, findings, &mut edges);
    }
    edges
}

fn scan_func(
    model: &FileModel,
    body: std::ops::Range<usize>,
    cfg: &Config,
    findings: &mut Vec<Finding>,
    edges: &mut Vec<Edge>,
) {
    let toks = &model.tokens;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0u32;
    let mut stmt_start = body.start;
    let mut i = body.start;
    while i < body.end {
        match &toks[i].kind {
            TokKind::Punct('{') => {
                depth += 1;
                stmt_start = i + 1;
            }
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                stmt_start = i + 1;
            }
            TokKind::Punct(';') => {
                guards.retain(|g| !(g.temp && g.depth == depth));
                stmt_start = i + 1;
            }
            TokKind::Ident(id) if id == "drop" && is_punct(toks, i + 1, '(') => {
                if let Some(var) = toks.get(i + 2).and_then(|t| t.ident()) {
                    guards.retain(|g| g.var.as_deref() != Some(var));
                }
            }
            TokKind::Ident(id) if is_acquisition(toks, i, id) => {
                let name = receiver_name(toks, i, body.start);
                let line = toks[i].line;
                for g in &guards {
                    if g.name == name {
                        findings.push(Finding::new(
                            CHECK_LOCK_ORDER,
                            &model.path,
                            line,
                            format!("re-acquisition of `{name}` while already held"),
                        ));
                    } else {
                        edges.push(Edge {
                            outer: g.name.clone(),
                            inner: name.clone(),
                            file: model.path.clone(),
                            line,
                        });
                    }
                }
                if sequencer_live(&guards, cfg) {
                    findings.push(Finding::new(
                        CHECK_SEQ_BLOCK,
                        &model.path,
                        line,
                        format!("acquires `{name}` while the sequencer engine guard is live"),
                    ));
                }
                let (let_bound, var) = let_binding(toks, stmt_start, i);
                guards.push(Guard {
                    name,
                    var,
                    depth,
                    temp: !let_bound,
                });
            }
            TokKind::Ident(id) if is_blocking(toks, i, id) && sequencer_live(&guards, cfg) => {
                findings.push(Finding::new(
                    CHECK_SEQ_BLOCK,
                    &model.path,
                    toks[i].line,
                    format!("blocking call `{id}` while the sequencer engine guard is live"),
                ));
            }
            _ => {}
        }
        i += 1;
    }
}

fn is_punct(toks: &[Token], i: usize, c: char) -> bool {
    toks.get(i).map(|t| t.is_punct(c)).unwrap_or(false)
}

/// `.lock()` / `.read()` / `.write()` with no arguments.
fn is_acquisition(toks: &[Token], i: usize, id: &str) -> bool {
    ACQUIRE.contains(&id)
        && i > 0
        && toks[i - 1].is_punct('.')
        && is_punct(toks, i + 1, '(')
        && is_punct(toks, i + 2, ')')
}

/// A blocking method call (`.recv(…)`) or path call (`thread::sleep(…)`).
fn is_blocking(toks: &[Token], i: usize, id: &str) -> bool {
    if !is_punct(toks, i + 1, '(') {
        return false;
    }
    if i > 0 && toks[i - 1].is_punct('.') {
        return BLOCKING_METHODS.contains(&id);
    }
    BLOCKING_CALLS.contains(&id)
}

fn sequencer_live(guards: &[Guard], cfg: &Config) -> bool {
    guards.iter().any(|g| cfg.sequencer_locks.contains(&g.name))
}

/// The receiver's final path segment: the identifier just before the
/// `.` of the acquisition call, or `<expr>` for computed receivers.
fn receiver_name(toks: &[Token], call: usize, lo: usize) -> String {
    if call >= 2 && call - 2 >= lo {
        if let Some(name) = toks[call - 2].ident() {
            return name.to_string();
        }
    }
    "<expr>".to_string()
}

/// Does the statement starting at `stmt_start` bind the acquisition's
/// guard via `let [mut] var = <chain>.lock()[.expect(…)|.unwrap()];`?
/// The guard is only bound when the acquisition (plus result adapters)
/// is the whole right-hand side.
fn let_binding(toks: &[Token], stmt_start: usize, call: usize) -> (bool, Option<String>) {
    let mut j = stmt_start;
    if toks.get(j).and_then(|t| t.ident()) != Some("let") {
        return (false, None);
    }
    j += 1;
    if toks.get(j).and_then(|t| t.ident()) == Some("mut") {
        j += 1;
    }
    let Some(var) = toks.get(j).and_then(|t| t.ident()) else {
        return (false, None); // tuple/struct pattern: treat as temporary
    };
    // After the acquisition's `()`, only guard-preserving adapters may
    // precede the `;` for the binding to hold the guard itself.
    let mut k = call + 3; // past `name ( )`
    loop {
        match toks.get(k).map(|t| &t.kind) {
            Some(TokKind::Punct(';')) => return (true, Some(var.to_string())),
            Some(TokKind::Punct('.')) => {
                let adapter = toks.get(k + 1).and_then(|t| t.ident());
                if !matches!(adapter, Some("expect") | Some("unwrap")) {
                    return (false, None);
                }
                // Skip the adapter's balanced parens.
                let mut d = 0i32;
                let mut m = k + 2;
                while m < toks.len() {
                    match toks[m].kind {
                        TokKind::Punct('(') => d += 1,
                        TokKind::Punct(')') => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    m += 1;
                }
                k = m + 1;
            }
            _ => return (false, None),
        }
    }
}

/// Cross-file validation of observed edges against the declared order.
pub fn validate_edges(edges: &[Edge], cfg: &Config, findings: &mut Vec<Finding>) {
    let pos: BTreeMap<&str, usize> = cfg
        .lock_order
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    for e in edges {
        match (pos.get(e.outer.as_str()), pos.get(e.inner.as_str())) {
            (Some(po), Some(pi)) if po < pi => {}
            (Some(po), Some(pi)) => {
                debug_assert!(po >= pi);
                findings.push(Finding::new(
                    CHECK_LOCK_ORDER,
                    &e.file,
                    e.line,
                    format!(
                        "acquisition `{}` → `{}` violates the declared order in \
                         analysis/lock_order.toml",
                        e.outer, e.inner
                    ),
                ));
            }
            _ => {
                findings.push(Finding::new(
                    CHECK_LOCK_ORDER,
                    &e.file,
                    e.line,
                    format!(
                        "undeclared nesting `{}` → `{}`: declare both in \
                         analysis/lock_order.toml `order`",
                        e.outer, e.inner
                    ),
                ));
            }
        }
    }
    report_cycles(edges, findings);
}

/// DFS cycle detection over the observed edge set; one report per
/// distinct cycle entry point.
fn report_cycles(edges: &[Edge], findings: &mut Vec<Finding>) {
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.outer.as_str()).or_default().push(e);
    }
    let mut reported: Vec<String> = Vec::new();
    for start in adj.keys().copied().collect::<Vec<_>>() {
        let mut stack: Vec<&str> = vec![start];
        let mut path: Vec<&str> = Vec::new();
        dfs(start, &adj, &mut path, &mut reported, findings, edges);
        stack.clear();
    }
}

fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a Edge>>,
    path: &mut Vec<&'a str>,
    reported: &mut Vec<String>,
    findings: &mut Vec<Finding>,
    _edges: &[Edge],
) {
    if let Some(pos) = path.iter().position(|n| *n == node) {
        let mut cycle: Vec<&str> = path[pos..].to_vec();
        cycle.push(node);
        let mut canon = cycle[..cycle.len() - 1].to_vec();
        canon.sort_unstable();
        let key = canon.join(",");
        if !reported.contains(&key) {
            reported.push(key);
            let edge = adj[path[path.len() - 1]]
                .iter()
                .find(|e| e.inner == node)
                .expect("edge on cycle path");
            findings.push(Finding::new(
                CHECK_LOCK_ORDER,
                &edge.file,
                edge.line,
                format!("lock cycle detected: {}", cycle.join(" → ")),
            ));
        }
        return;
    }
    path.push(node);
    if let Some(outs) = adj.get(node) {
        for e in outs {
            dfs(e.inner.as_str(), adj, path, reported, findings, _edges);
        }
    }
    path.pop();
}
