//! Atomics-ordering audit: in cross-thread handshake modules
//! (`analysis/atomics.toml`), any `Ordering::Relaxed` (or a bare
//! imported `Relaxed`) in non-test code is flagged. Relaxed is only
//! legitimate for pure counters that no thread reads to make a
//! happens-before decision — such sites carry an in-place
//! `softcell-lint: allow(atomics-order) -- pure counter …` suppression
//! so the exception is visible in diffs.

use crate::config::Config;
use crate::lexer::TokKind;
use crate::parse::FileModel;
use crate::{Finding, CHECK_ATOMICS};

pub fn scan_file(model: &FileModel, cfg: &Config, findings: &mut Vec<Finding>) {
    if !cfg
        .atomics_files
        .iter()
        .any(|f| model.path == *f || model.path.ends_with(f))
    {
        return;
    }
    for func in &model.funcs {
        if func.is_test {
            continue;
        }
        for i in func.body.clone() {
            if let TokKind::Ident(id) = &model.tokens[i].kind {
                if id == "Relaxed" {
                    findings.push(Finding::new(
                        CHECK_ATOMICS,
                        &model.path,
                        model.tokens[i].line,
                        "Ordering::Relaxed in a cross-thread handshake module: use \
                         Acquire/Release (or suppress as a pure counter)"
                            .to_string(),
                    ));
                }
            }
        }
    }
}
