pub mod atomics;
pub mod locks;
pub mod telemetry;
pub mod wire;
