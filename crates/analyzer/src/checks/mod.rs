pub mod atomics;
pub mod locks;
pub mod span_guard;
pub mod telemetry;
pub mod wire;
