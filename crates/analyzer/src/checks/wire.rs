//! Panic-free wire paths: in configured decode/serve scopes
//! (`analysis/wire_paths.toml`), non-test code may not `unwrap`,
//! `expect`, `panic!`-family, or slice-index. Attacker-controlled
//! frames must surface as `Error::Malformed`, never as a controller
//! abort (the controller is the single point of failure for a metro
//! deployment — DESIGN.md §9/§12).

use crate::config::Config;
use crate::lexer::{TokKind, Token};
use crate::parse::FileModel;
use crate::{Finding, CHECK_WIRE_PANIC};

/// Macros that abort. `debug_assert*` is deliberately absent: it
/// compiles out of release builds and is the sanctioned way to state
/// encoder-side invariants.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Keywords that may directly precede `[` without it being indexing
/// (`let [a, b] = …`, `for x in [..]`, `return [..]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "break", "continue", "move", "as", "ref", "mut",
    "box", "where", "const", "static", "dyn", "impl", "fn", "use", "pub",
];

pub fn scan_file(model: &FileModel, cfg: &Config, findings: &mut Vec<Finding>) {
    let scopes: Vec<_> = cfg
        .wire_scopes
        .iter()
        .filter(|s| s.matches_file(&model.path))
        .collect();
    if scopes.is_empty() {
        return;
    }
    for func in &model.funcs {
        if func.is_test || !scopes.iter().any(|s| s.matches_fn(&func.qual)) {
            continue;
        }
        scan_body(model, &func.qual, func.body.clone(), findings);
    }
}

fn scan_body(
    model: &FileModel,
    qual: &str,
    body: std::ops::Range<usize>,
    findings: &mut Vec<Finding>,
) {
    let toks = &model.tokens;
    for i in body.clone() {
        match &toks[i].kind {
            TokKind::Ident(id)
                if (id == "unwrap" || id == "expect")
                    && i > body.start
                    && toks[i - 1].is_punct('.')
                    && is_punct(toks, i + 1, '(') =>
            {
                findings.push(Finding::new(
                    CHECK_WIRE_PANIC,
                    &model.path,
                    toks[i].line,
                    format!("`{id}()` on the wire path `{qual}`: return Error::Malformed"),
                ));
            }
            TokKind::Ident(id)
                if PANIC_MACROS.contains(&id.as_str()) && is_punct(toks, i + 1, '!') =>
            {
                findings.push(Finding::new(
                    CHECK_WIRE_PANIC,
                    &model.path,
                    toks[i].line,
                    format!("`{id}!` on the wire path `{qual}`"),
                ));
            }
            TokKind::Punct('[') if i > body.start && is_index_expr(&toks[i - 1]) => {
                findings.push(Finding::new(
                    CHECK_WIRE_PANIC,
                    &model.path,
                    toks[i].line,
                    format!("slice indexing on the wire path `{qual}`: use `.get(..)`"),
                ));
            }
            _ => {}
        }
    }
}

fn is_punct(toks: &[Token], i: usize, c: char) -> bool {
    toks.get(i).map(|t| t.is_punct(c)).unwrap_or(false)
}

/// `expr[` is indexing when the previous token ends an expression:
/// a non-keyword identifier, `)`, or `]`. This excludes `#[attr]`,
/// `vec![…]` (previous token `!`), types `&[u8]`, and patterns.
fn is_index_expr(prev: &Token) -> bool {
    match &prev.kind {
        TokKind::Ident(id) => !NON_INDEX_KEYWORDS.contains(&id.as_str()),
        TokKind::Punct(')') | TokKind::Punct(']') => true,
        _ => false,
    }
}
