//! Telemetry discipline: every metric name must be snake_case with the
//! `softcell_` prefix, carry the suffix its kind mandates (`_total`
//! for counters, `_ns`/`_us` for histograms, neither for gauges), be
//! registered as exactly one kind, and appear in the generated
//! `analysis/metrics_manifest.toml` so DESIGN.md §11 cannot drift.
//!
//! Sites are found two ways: Registry/Snapshot method calls with a
//! literal name (`.counter("…")`, kind from the method), and bare
//! string literals matching `softcell_[a-z0-9_]+` (kind inferred from
//! the suffix — this catches tables of names passed through variables,
//! e.g. the sharded stats flush).

use std::collections::BTreeMap;

use crate::config::{Config, MetricsManifest};
use crate::lexer::TokKind;
use crate::parse::FileModel;
use crate::{Finding, CHECK_TELEMETRY};

const MANIFEST_PATH: &str = "analysis/metrics_manifest.toml";

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }

    fn from_method(m: &str) -> Option<Kind> {
        match m {
            "counter" | "counter_with" | "counter_labeled" => Some(Kind::Counter),
            "gauge" | "gauge_with" | "gauge_labeled" => Some(Kind::Gauge),
            "histogram" | "histogram_with" | "histogram_labeled" => Some(Kind::Histogram),
            _ => None,
        }
    }

    fn from_suffix(name: &str) -> Kind {
        if name.ends_with("_total") {
            Kind::Counter
        } else if name.ends_with("_ns") || name.ends_with("_us") {
            Kind::Histogram
        } else {
            Kind::Gauge
        }
    }
}

#[derive(Debug)]
pub struct Site {
    pub name: String,
    pub kind: Kind,
    pub file: String,
    pub line: u32,
    /// Method-call sites assert their kind; bare literals only infer it.
    pub asserted: bool,
}

/// Collects metric-name sites from one file's non-test functions.
pub fn collect_sites(model: &FileModel, sites: &mut Vec<Site>) {
    let toks = &model.tokens;
    for func in &model.funcs {
        if func.is_test {
            continue;
        }
        let mut consumed_literal = vec![false; func.body.len()];
        let lo = func.body.start;
        for i in func.body.clone() {
            let TokKind::Ident(m) = &toks[i].kind else {
                continue;
            };
            let Some(kind) = Kind::from_method(m) else {
                continue;
            };
            if i == lo
                || !toks[i - 1].is_punct('.')
                || !matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct('(')))
            {
                continue;
            }
            if let Some(TokKind::Str(name)) = toks.get(i + 2).map(|t| &t.kind) {
                sites.push(Site {
                    name: name.clone(),
                    kind,
                    file: model.path.clone(),
                    line: toks[i].line,
                    asserted: true,
                });
                consumed_literal[i + 2 - lo] = true;
            }
        }
        for i in func.body.clone() {
            if consumed_literal[i - lo] {
                continue;
            }
            if let TokKind::Str(s) = &toks[i].kind {
                if is_metric_literal(s) {
                    sites.push(Site {
                        name: s.clone(),
                        kind: Kind::from_suffix(s),
                        file: model.path.clone(),
                        line: toks[i].line,
                        asserted: false,
                    });
                }
            }
        }
    }
}

/// `softcell_` followed by at least one `[a-z0-9_]`, nothing else.
fn is_metric_literal(s: &str) -> bool {
    let Some(rest) = s.strip_prefix("softcell_") else {
        return false;
    };
    !rest.is_empty()
        && rest
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

fn is_snake_case_metric(name: &str) -> bool {
    name.starts_with("softcell_")
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        && !name.ends_with('_')
}

/// Validates the collected sites and the manifest; returns the
/// observed manifest for `--write-metrics-manifest`.
pub fn validate(sites: &[Site], cfg: &Config, findings: &mut Vec<Finding>) -> MetricsManifest {
    // Naming + suffix/kind consistency, per site.
    for s in sites {
        if s.asserted && !is_snake_case_metric(&s.name) {
            findings.push(Finding::new(
                CHECK_TELEMETRY,
                &s.file,
                s.line,
                format!(
                    "metric name `{}` is not snake_case with the `softcell_` prefix",
                    s.name
                ),
            ));
            continue;
        }
        if s.asserted && s.kind != Kind::from_suffix(&s.name) {
            findings.push(Finding::new(
                CHECK_TELEMETRY,
                &s.file,
                s.line,
                format!(
                    "{} `{}` violates the suffix convention (counters end `_total`, \
                     histograms `_ns`/`_us`, gauges neither)",
                    s.kind.as_str(),
                    s.name
                ),
            ));
        }
    }

    // Kind uniqueness: first site (by file, line) is canonical.
    let mut by_name: BTreeMap<&str, Vec<&Site>> = BTreeMap::new();
    for s in sites {
        by_name.entry(s.name.as_str()).or_default().push(s);
    }
    let mut observed = MetricsManifest::default();
    for (name, mut group) in by_name {
        group.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        let canonical = group
            .iter()
            .find(|s| s.asserted)
            .map(|s| s.kind)
            .unwrap_or(group[0].kind);
        for s in &group {
            if s.kind != canonical {
                findings.push(Finding::new(
                    CHECK_TELEMETRY,
                    &s.file,
                    s.line,
                    format!(
                        "metric `{}` used as {} but registered elsewhere as {}",
                        name,
                        s.kind.as_str(),
                        canonical.as_str()
                    ),
                ));
            }
        }
        if !is_snake_case_metric(name) {
            continue; // already reported; keep the manifest clean
        }
        let bucket = match canonical {
            Kind::Counter => &mut observed.counters,
            Kind::Gauge => &mut observed.gauges,
            Kind::Histogram => &mut observed.histograms,
        };
        if !bucket.contains(&name.to_string()) {
            bucket.push(name.to_string());
        }
    }

    // Manifest drift.
    match &cfg.metrics_manifest {
        None => findings.push(Finding::new(
            CHECK_TELEMETRY,
            MANIFEST_PATH,
            1,
            "metrics manifest missing: run `softcell-analyzer --write-metrics-manifest`"
                .to_string(),
        )),
        Some(declared) => {
            let pairs = [
                ("counter", &observed.counters, &declared.counters),
                ("gauge", &observed.gauges, &declared.gauges),
                ("histogram", &observed.histograms, &declared.histograms),
            ];
            for (kind, obs, decl) in pairs {
                for name in obs {
                    if !decl.contains(name) {
                        findings.push(Finding::new(
                            CHECK_TELEMETRY,
                            MANIFEST_PATH,
                            1,
                            format!(
                                "{kind} `{name}` is registered in code but missing from the \
                                 manifest: run `softcell-analyzer --write-metrics-manifest`"
                            ),
                        ));
                    }
                }
                for name in decl {
                    if !obs.contains(name) {
                        findings.push(Finding::new(
                            CHECK_TELEMETRY,
                            MANIFEST_PATH,
                            1,
                            format!(
                                "{kind} `{name}` is in the manifest but no longer registered \
                                 in code: run `softcell-analyzer --write-metrics-manifest`"
                            ),
                        ));
                    }
                }
            }
        }
    }
    observed
}

/// Renders the observed manifest in the format `Config::load` parses.
pub fn render_manifest(m: &MetricsManifest) -> String {
    let mut out = String::new();
    out.push_str(
        "# Generated by `softcell-analyzer --write-metrics-manifest`; do not edit.\n\
         # Every metric name registered in non-test code, by kind. CI fails on\n\
         # drift between this file and the code (DESIGN.md \u{a7}11, \u{a7}12).\n",
    );
    let mut section = |title: &str, names: &[String]| {
        out.push_str(&format!("\n[{title}]\nnames = [\n"));
        let mut sorted = names.to_vec();
        sorted.sort();
        for n in sorted {
            out.push_str(&format!("    \"{n}\",\n"));
        }
        out.push_str("]\n");
    };
    section("counters", &m.counters);
    section("gauges", &m.gauges);
    section("histograms", &m.histograms);
    out
}
