//! Source discovery: every `.rs` file under `crates/`, `src/`, and
//! `tests/` of the analysis root, deterministic order. `target/`
//! build output and the analyzer's own violation-fixture corpus
//! (`tests/fixtures/`) are skipped; `shims/` sits outside the walked
//! roots by construction.

use std::path::{Path, PathBuf};

pub const WALK_ROOTS: &[&str] = &["crates", "src", "tests"];

/// Relative (slash-separated) paths of every analyzable source file.
pub fn source_files(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    for sub in WALK_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk_dir(root, &dir, &mut out);
        }
    }
    out.sort();
    out
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || is_fixture_dir(&path) {
                continue;
            }
            walk_dir(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

/// `…/tests/fixtures` holds deliberately-bad snippets.
fn is_fixture_dir(path: &Path) -> bool {
    let mut comps = path.components().rev();
    let last = comps.next().map(|c| c.as_os_str() == "fixtures");
    let prev = comps.next().map(|c| c.as_os_str() == "tests");
    last == Some(true) && prev == Some(true)
}
